"""Storage service protocol.

Both storage backends used in the paper's deployment — the campus cluster's
dedicated storage node and Amazon S3 — are modeled behind one byte-range
interface: keys map to immutable blobs, reads may address a sub-range
(S3 range GETs; ``pread`` on the storage node). The runtime's slaves only
ever use this interface, which is what lets the same slave code retrieve
local and remote chunks.
"""

from __future__ import annotations

import abc
from typing import Iterable

from ..errors import StorageError

__all__ = ["StorageService", "validate_range"]


def validate_range(total: int, offset: int, length: int | None) -> int:
    """Clamp-check a byte range against a blob size; returns actual length.

    Raises :class:`StorageError` for negative offsets/lengths or ranges
    starting beyond the blob.
    """
    if offset < 0:
        raise StorageError(f"negative read offset {offset}")
    if offset > total:
        raise StorageError(f"read offset {offset} beyond object size {total}")
    if length is None:
        return total - offset
    if length < 0:
        raise StorageError(f"negative read length {length}")
    return min(length, total - offset)


class StorageService(abc.ABC):
    """Keyed blob storage with byte-range reads.

    :meth:`read_range` is the **single abstract read signature**: every
    backend implements exactly ``read_range(key, offset, nbytes)`` and
    every consumer on the data path (the resilient
    :class:`~repro.storage.retrieval.ChunkRetriever`, the
    :class:`~repro.resilience.FaultInjector`) programs only against it.
    :meth:`get` remains as a concrete convenience for whole/open-ended
    reads and resolves onto ``read_range``.
    """

    @abc.abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key``, replacing any existing blob."""

    @abc.abstractmethod
    def read_range(self, key: str, offset: int, nbytes: int) -> bytes:
        """Read exactly the byte range ``[offset, offset + nbytes)``.

        ``nbytes`` is clamped to the blob's end (a range starting before
        the end but extending past it returns the available suffix).
        Raises :class:`~repro.errors.ObjectNotFoundError` for unknown
        keys and :class:`~repro.errors.StorageError` for invalid ranges.
        """

    def get(self, key: str, offset: int = 0, length: int | None = None) -> bytes:
        """Read ``length`` bytes (or to the end) starting at ``offset``.

        Convenience over :meth:`read_range`; an open-ended read resolves
        the length from :meth:`size` first.
        """
        if length is None:
            length = validate_range(self.size(key), offset, None)
        return self.read_range(key, offset, length)

    #: True when :meth:`read_view` aliases the stored blob instead of
    #: copying — the reader uses this to account reads as zero-copy.
    zero_copy_views: bool = False

    def read_view(self, key: str, offset: int, nbytes: int) -> memoryview:
        """Read a byte range as a read-only ``memoryview``.

        Backends that hold blobs in memory override this to return a view
        *aliasing* the stored bytes (no copy) and set
        :attr:`zero_copy_views`; the default resolves onto
        :meth:`read_range` (one copy) so every backend supports the view
        interface.
        """
        return memoryview(self.read_range(key, offset, nbytes))

    @abc.abstractmethod
    def size(self, key: str) -> int:
        """Size in bytes of the blob under ``key``."""

    @abc.abstractmethod
    def exists(self, key: str) -> bool:
        """True when ``key`` holds a blob."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key``; silently ignores unknown keys."""

    @abc.abstractmethod
    def keys(self, prefix: str = "") -> Iterable[str]:
        """All keys starting with ``prefix``, in sorted order."""

    # -- convenience -------------------------------------------------------

    def append_stream(self, key: str, parts: Iterable[bytes]) -> int:
        """Store the concatenation of ``parts``; returns total bytes.

        Default implementation buffers; backends with real append can
        override.
        """
        buf = b"".join(parts)
        self.put(key, buf)
        return len(buf)

    def total_bytes(self, prefix: str = "") -> int:
        """Sum of blob sizes under ``prefix``."""
        return sum(self.size(k) for k in self.keys(prefix))
