"""Storage substrate: the campus storage node (filesystem-backed) and the
S3-like object store, behind one byte-range interface."""

from .base import StorageService, validate_range
from .localfs import LocalStorage
from .objectstore import ObjectStore, RequestStats, TrafficShaper
from .retrieval import ChunkRetriever, RangePlan, plan_ranges

__all__ = [
    "StorageService",
    "validate_range",
    "LocalStorage",
    "ObjectStore",
    "RequestStats",
    "TrafficShaper",
    "ChunkRetriever",
    "RangePlan",
    "plan_ranges",
]
