"""Multi-threaded, fault-tolerant chunk retrieval.

Section III-B: "Each slave retrieves jobs using multiple retrieval threads,
to capitalize on the fast network interconnects." A remote chunk's byte
range is split into ``threads`` sub-ranges fetched concurrently and
reassembled in order. For a shaped object store whose per-connection
bandwidth is the bottleneck, aggregate throughput scales with the number of
connections until the site link saturates — the behaviour the paper
exploits (and which `bench_ablation_retrieval` sweeps).

On top of the parallel split sits the resilience ladder
(:mod:`repro.resilience`, ``docs/RESILIENCE.md``): each sub-range is
retried under a :class:`~repro.resilience.RetryPolicy` (decorrelated-jitter
backoff, optional per-attempt timeout and overall deadline); a sub-range
still running past the hedging threshold is raced against a duplicate
request, first response wins; and a :class:`~repro.resilience.CircuitBreaker`
that has seen enough consecutive endpoint failures degrades the fetch from
N-way parallel to a single sequential stream instead of failing the job.
With ``policy=None`` (the default) none of this machinery is constructed
and the fetch path is the original direct read.
"""

from __future__ import annotations

import queue
import random
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..clock import SYSTEM_CLOCK
from ..errors import StorageError, TransientStorageError
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from ..resilience.circuit import CircuitBreaker
from ..resilience.retry import ResilienceStats, RetryPolicy, retry_call
from .base import StorageService

__all__ = ["RangePlan", "plan_ranges", "ChunkRetriever"]


@dataclass(frozen=True)
class RangePlan:
    """One sub-range of a chunk fetch."""

    offset: int
    length: int


def plan_ranges(offset: int, nbytes: int, parts: int) -> list[RangePlan]:
    """Split ``[offset, offset+nbytes)`` into up to ``parts`` even sub-ranges.

    Every byte is covered exactly once; earlier parts are at most one byte
    larger than later ones. Fewer than ``parts`` ranges are returned when
    the chunk has fewer bytes than parts.
    """
    if nbytes < 0:
        raise StorageError("cannot plan a negative-length retrieval")
    if parts <= 0:
        raise StorageError("retrieval thread count must be positive")
    if nbytes == 0:
        return []
    parts = min(parts, nbytes)
    base, extra = divmod(nbytes, parts)
    plans: list[RangePlan] = []
    cursor = offset
    for i in range(parts):
        length = base + (1 if i < extra else 0)
        plans.append(RangePlan(offset=cursor, length=length))
        cursor += length
    return plans


class ChunkRetriever:
    """Fetches chunk byte ranges from a storage service, possibly in parallel.

    A retriever is cheap to construct per slave; it owns a thread pool only
    while in use (context-managed by the caller or per-call). With a
    ``policy`` it becomes resilient: sub-ranges are retried, hedged, and
    the whole fetch degrades to single-stream while ``breaker`` is open.
    ``stats``/``trace``/``metrics`` record what the machinery did.
    """

    def __init__(
        self,
        store: StorageService,
        threads: int = 4,
        *,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        stats: ResilienceStats | None = None,
        trace: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
        seed: int = 2011,
        clock=None,
    ) -> None:
        if threads <= 0:
            raise StorageError("retrieval thread count must be positive")
        self.store = store
        self.threads = threads
        self.policy = policy
        self.breaker = breaker
        self.stats = stats if stats is not None else ResilienceStats()
        self.trace = trace
        self.seed = seed
        #: Time source for the hedging/timeout race and retry backoff —
        #: :data:`~repro.clock.SYSTEM_CLOCK` in production, a
        #: :class:`~repro.clock.FakeClock` in timing tests.
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self._attempt_hist = (
            metrics.histogram("attempt_seconds") if metrics else None
        )
        self._attempt_counter = (
            metrics.counter("storage_attempts") if metrics else None
        )

    def fetch(
        self, key: str, offset: int, nbytes: int, *, job_id: int = -1,
        file_id: int = -1,
    ) -> bytes:
        """Retrieve ``nbytes`` from ``key`` starting at ``offset``.

        ``job_id``/``file_id`` are optional context stamped onto any
        ``retry``/``hedge`` trace events this fetch emits.
        """
        parallel = self.threads
        if self.breaker is not None and self.breaker.open:
            parallel = 1
        plans = plan_ranges(offset, nbytes, parallel)
        if not plans:
            return b""
        if self.policy is None and len(plans) == 1:
            return self.store.read_range(key, plans[0].offset, plans[0].length)
        if len(plans) == 1:
            parts = [self._fetch_range(key, plans[0], job_id, file_id)]
        else:
            with ThreadPoolExecutor(max_workers=len(plans)) as pool:
                futures = [
                    pool.submit(self._fetch_range, key, p, job_id, file_id)
                    for p in plans
                ]
                parts = [f.result() for f in futures]
        blob = b"".join(parts)
        if len(blob) != nbytes:
            raise StorageError(
                f"short read on {key!r}: wanted {nbytes} bytes, got {len(blob)}"
            )
        return blob

    # -- per-sub-range machinery -------------------------------------------

    def _fetch_range(
        self, key: str, plan: RangePlan, job_id: int, file_id: int
    ) -> bytes:
        policy = self.policy
        if policy is None:
            return self._single_attempt(key, plan)
        if policy.attempt_timeout is None and policy.hedge_after is None:
            # Happy path: no clock to keep on the attempt, so take it
            # inline and pay for the retry machinery (per-range RNG,
            # closures) only once something actually fails.
            try:
                return self._single_attempt(key, plan)
            except TransientStorageError as exc:
                return self._retrying_fetch(key, plan, job_id, file_id, exc)
        return self._retrying_fetch(key, plan, job_id, file_id, None)

    def _retrying_fetch(
        self,
        key: str,
        plan: RangePlan,
        job_id: int,
        file_id: int,
        first_error: TransientStorageError | None,
    ) -> bytes:
        # Deterministic per-range RNG (no shared mutable state between
        # retrieval threads): backoff sequences depend only on the seed
        # and the range identity.
        rng = random.Random(
            (self.seed * 1_000_003)
            ^ zlib.crc32(key.encode())
            ^ (plan.offset << 1)
            ^ plan.length
        )
        # A failure from the inline fast-path attempt is replayed as the
        # first attempt of the loop so retry counting is unchanged.
        pending = [first_error] if first_error is not None else []

        def attempt() -> bytes:
            if pending:
                raise pending.pop()
            return self._attempt(key, plan, job_id, file_id)

        def on_retry(attempt: int, exc: BaseException, backoff: float) -> None:
            self.stats.add("retries")
            if self.trace is not None:
                self.trace.emit(
                    "retry", job_id=job_id, file_id=file_id,
                    detail=f"[{plan.offset},+{plan.length}) attempt {attempt} "
                    f"{type(exc).__name__}; backoff {backoff * 1e3:.1f}ms",
                )

        return retry_call(
            attempt, self.policy, rng, on_retry=on_retry,
            clock=self.clock.monotonic, sleep=self.clock.sleep,
        )

    def _single_attempt(self, key: str, plan: RangePlan) -> bytes:
        """One storage request, instrumented and breaker-accounted."""
        if self._attempt_counter is not None:
            self._attempt_counter.inc()
        started = time.perf_counter()
        try:
            data = self.store.read_range(key, plan.offset, plan.length)
        except BaseException:
            if self._attempt_hist is not None:
                self._attempt_hist.observe(time.perf_counter() - started)
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self._attempt_hist is not None:
            self._attempt_hist.observe(time.perf_counter() - started)
        if self.breaker is not None:
            self.breaker.record_success()
        return data

    def _attempt(
        self, key: str, plan: RangePlan, job_id: int, file_id: int
    ) -> bytes:
        policy = self.policy
        assert policy is not None
        if policy.attempt_timeout is None and policy.hedge_after is None:
            return self._single_attempt(key, plan)
        return self._raced_attempt(key, plan, job_id, file_id)

    def _raced_attempt(
        self, key: str, plan: RangePlan, job_id: int, file_id: int
    ) -> bytes:
        """One (possibly hedged) attempt with a per-attempt timeout.

        The request runs in a daemon thread so the caller can keep a
        clock on it. Past ``hedge_after`` a duplicate request is
        launched; the first success wins and the loser is abandoned
        (best-effort cancellation — its result is discarded). Past
        ``attempt_timeout`` the whole attempt is abandoned and reported
        as transient, handing control back to the retry loop.
        """
        policy = self.policy
        assert policy is not None
        clock = self.clock
        results: "queue.SimpleQueue[tuple[int, BaseException | None, bytes | None]]"
        results = queue.SimpleQueue()
        launched = 0

        def launch() -> None:
            nonlocal launched
            index = launched
            launched += 1

            def runner() -> None:
                try:
                    results.put((index, None, self._single_attempt(key, plan)))
                except BaseException as exc:
                    results.put((index, exc, None))

            clock.spawn(runner, name=f"range-read:{key}:{plan.offset}+{index}")

        launch()
        started = clock.monotonic()
        hedged = False
        failures = 0
        while True:
            elapsed = clock.monotonic() - started
            if policy.attempt_timeout is not None and elapsed >= policy.attempt_timeout:
                self.stats.add("timeouts")
                raise TransientStorageError(
                    f"range read {key!r}[{plan.offset},+{plan.length}) "
                    f"timed out after {policy.attempt_timeout:g}s"
                )
            if not hedged and policy.hedge_after is not None and elapsed >= policy.hedge_after:
                hedged = True
                launch()
                self.stats.add("hedges")
                if self.trace is not None:
                    self.trace.emit(
                        "hedge", job_id=job_id, file_id=file_id,
                        detail=f"[{plan.offset},+{plan.length}) duplicate "
                        f"after {elapsed * 1e3:.1f}ms",
                    )
                continue
            waits = []
            if policy.attempt_timeout is not None:
                waits.append(policy.attempt_timeout - elapsed)
            if not hedged and policy.hedge_after is not None:
                waits.append(policy.hedge_after - elapsed)
            try:
                index, error, data = clock.wait(
                    results, min(waits) if waits else None
                )
            except queue.Empty:
                continue
            if error is None:
                assert data is not None
                if index > 0:
                    self.stats.add("hedge_wins")
                return data
            failures += 1
            if failures >= launched:
                raise error
            # A request is still in flight (the hedge or the primary);
            # keep waiting for it.
