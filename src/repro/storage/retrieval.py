"""Multi-threaded chunk retrieval.

Section III-B: "Each slave retrieves jobs using multiple retrieval threads,
to capitalize on the fast network interconnects." A remote chunk's byte
range is split into ``threads`` sub-ranges fetched concurrently and
reassembled in order. For a shaped object store whose per-connection
bandwidth is the bottleneck, aggregate throughput scales with the number of
connections until the site link saturates — the behaviour the paper
exploits (and which `bench_ablation_retrieval` sweeps).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..errors import StorageError
from .base import StorageService

__all__ = ["RangePlan", "plan_ranges", "ChunkRetriever"]


@dataclass(frozen=True)
class RangePlan:
    """One sub-range of a chunk fetch."""

    offset: int
    length: int


def plan_ranges(offset: int, nbytes: int, parts: int) -> list[RangePlan]:
    """Split ``[offset, offset+nbytes)`` into up to ``parts`` even sub-ranges.

    Every byte is covered exactly once; earlier parts are at most one byte
    larger than later ones. Fewer than ``parts`` ranges are returned when
    the chunk has fewer bytes than parts.
    """
    if nbytes < 0:
        raise StorageError("cannot plan a negative-length retrieval")
    if parts <= 0:
        raise StorageError("retrieval thread count must be positive")
    if nbytes == 0:
        return []
    parts = min(parts, nbytes)
    base, extra = divmod(nbytes, parts)
    plans: list[RangePlan] = []
    cursor = offset
    for i in range(parts):
        length = base + (1 if i < extra else 0)
        plans.append(RangePlan(offset=cursor, length=length))
        cursor += length
    return plans


class ChunkRetriever:
    """Fetches chunk byte ranges from a storage service, possibly in parallel.

    A retriever is cheap to construct per slave; it owns a thread pool only
    while in use (context-managed by the caller or per-call).
    """

    def __init__(self, store: StorageService, threads: int = 4) -> None:
        if threads <= 0:
            raise StorageError("retrieval thread count must be positive")
        self.store = store
        self.threads = threads

    def fetch(self, key: str, offset: int, nbytes: int) -> bytes:
        """Retrieve ``nbytes`` from ``key`` starting at ``offset``."""
        plans = plan_ranges(offset, nbytes, self.threads)
        if not plans:
            return b""
        if len(plans) == 1:
            return self.store.get(key, plans[0].offset, plans[0].length)
        with ThreadPoolExecutor(max_workers=len(plans)) as pool:
            futures = [
                pool.submit(self.store.get, key, p.offset, p.length) for p in plans
            ]
            parts = [f.result() for f in futures]
        blob = b"".join(parts)
        if len(blob) != nbytes:
            raise StorageError(
                f"short read on {key!r}: wanted {nbytes} bytes, got {len(blob)}"
            )
        return blob
