"""An S3-like object store.

The paper stores the cloud-resident fraction of every dataset in Amazon S3
and retrieves it over ranged GETs from multiple connections. This module is
the functional stand-in: a keyed blob store with range reads, GET/PUT
request counters, and an optional traffic shaper that enforces a
per-request latency and a per-connection bandwidth cap in *wall-clock*
time. The shaper is off by default (tests run at memory speed) and exists
so the examples can demonstrate why multi-connection retrieval matters;
the *performance model* of S3 used by the evaluation lives in
:mod:`repro.sim.storagemodel`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ObjectNotFoundError
from .base import StorageService, validate_range

__all__ = ["TrafficShaper", "RequestStats", "ObjectStore"]


@dataclass(frozen=True)
class TrafficShaper:
    """Wall-clock shaping applied to each GET.

    ``request_latency`` models the per-request round trip; ``bandwidth``
    caps the throughput of one connection in bytes/second. Zero disables a
    knob.
    """

    request_latency: float = 0.0
    bandwidth: float = 0.0

    def delay_for(self, nbytes: int) -> float:
        d = self.request_latency
        if self.bandwidth > 0:
            d += nbytes / self.bandwidth
        return d


@dataclass
class RequestStats:
    """Counters the tests and examples inspect."""

    gets: int = 0
    puts: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_get(self, nbytes: int) -> None:
        with self._lock:
            self.gets += 1
            self.bytes_read += nbytes

    def record_put(self, nbytes: int) -> None:
        with self._lock:
            self.puts += 1
            self.bytes_written += nbytes


class ObjectStore(StorageService):
    """In-memory, thread-safe keyed blob store with range GETs."""

    def __init__(self, shaper: TrafficShaper | None = None) -> None:
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.shaper = shaper
        self.stats = RequestStats()

    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            self._blobs[key] = bytes(data)
        self.stats.record_put(len(data))

    def _ranged_get(self, key: str, offset: int, nbytes: int) -> tuple[bytes, int]:
        """Shared GET bookkeeping: resolve the blob, clamp the range,
        apply shaping, count the request. Returns ``(blob, actual)``."""
        with self._lock:
            blob = self._blobs.get(key)
        if blob is None:
            raise ObjectNotFoundError(key)
        actual = validate_range(len(blob), offset, nbytes)
        if self.shaper is not None:
            delay = self.shaper.delay_for(actual)
            if delay > 0:
                time.sleep(delay)
        self.stats.record_get(actual)
        return blob, actual

    def read_range(self, key: str, offset: int, nbytes: int) -> bytes:
        blob, actual = self._ranged_get(key, offset, nbytes)
        return blob[offset : offset + actual]

    #: Blobs are immutable in-memory ``bytes`` — views alias them safely.
    zero_copy_views: bool = True

    def read_view(self, key: str, offset: int, nbytes: int) -> memoryview:
        """Zero-copy range GET: a read-only view over the stored blob.

        ``put`` replaces (never mutates) blobs, so an outstanding view
        keeps its blob alive by reference even after a replacing ``put``
        or ``delete`` — the same aliasing guarantee cached chunks rely on.
        """
        blob, actual = self._ranged_get(key, offset, nbytes)
        return memoryview(blob)[offset : offset + actual]

    def size(self, key: str) -> int:
        with self._lock:
            blob = self._blobs.get(key)
        if blob is None:
            raise ObjectNotFoundError(key)
        return len(blob)

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._blobs

    def delete(self, key: str) -> None:
        with self._lock:
            self._blobs.pop(key, None)

    def keys(self, prefix: str = "") -> Iterable[str]:
        with self._lock:
            return sorted(k for k in self._blobs if k.startswith(prefix))
