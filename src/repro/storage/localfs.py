"""Filesystem-backed storage — the campus cluster's storage node.

Keys are slash-separated relative paths under a root directory. Range reads
use ``seek``/``read`` on the underlying file, which is exactly how the
paper's slaves read chunks off the dedicated SATA-SCSI storage node.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

from ..errors import ObjectNotFoundError, StorageError
from .base import StorageService, validate_range

__all__ = ["LocalStorage"]


class LocalStorage(StorageService):
    """Blob store rooted at a directory on the local filesystem."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or key.startswith("/") or ".." in Path(key).parts:
            raise StorageError(f"invalid storage key {key!r}")
        return self.root / key

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def read_range(self, key: str, offset: int, nbytes: int) -> bytes:
        path = self._path(key)
        if not path.is_file():
            raise ObjectNotFoundError(key)
        total = path.stat().st_size
        actual = validate_range(total, offset, nbytes)
        with path.open("rb") as fh:
            fh.seek(offset)
            return fh.read(actual)

    def size(self, key: str) -> int:
        path = self._path(key)
        if not path.is_file():
            raise ObjectNotFoundError(key)
        return path.stat().st_size

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def delete(self, key: str) -> None:
        path = self._path(key)
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def keys(self, prefix: str = "") -> Iterable[str]:
        out = []
        for path in self.root.rglob("*"):
            if path.is_file() and not path.name.endswith(".tmp"):
                key = path.relative_to(self.root).as_posix()
                if key.startswith(prefix):
                    out.append(key)
        return sorted(out)

    def append_stream(self, key: str, parts: Iterable[bytes]) -> int:
        """Stream parts straight to disk without buffering the whole blob."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        total = 0
        tmp = path.with_suffix(path.suffix + ".tmp")
        with tmp.open("wb") as fh:
            for part in parts:
                fh.write(part)
                total += len(part)
        os.replace(tmp, path)
        return total
