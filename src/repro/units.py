"""Size and time unit helpers used across the library.

All byte quantities in :mod:`repro` are plain integers (bytes) and all times
are floats (seconds). These helpers exist so that configuration code can say
``128 * MB`` instead of ``134217728`` and report code can render quantities
the way the paper does.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB
TB: int = 1024 * GB

#: One million — convenient for element counts quoted in the paper
#: (e.g. "32.1 x 10^9 processed elements").
MILLION: int = 10**6
BILLION: int = 10**9

_SIZE_STEPS = ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB"))


def fmt_bytes(n: int | float) -> str:
    """Render a byte count with a binary-unit suffix.

    >>> fmt_bytes(128 * MB)
    '128.0 MB'
    >>> fmt_bytes(999)
    '999 B'
    """
    if n < 0:
        return "-" + fmt_bytes(-n)
    for step, suffix in _SIZE_STEPS:
        if n >= step:
            return f"{n / step:.1f} {suffix}"
    return f"{int(n)} B"


def fmt_seconds(t: float) -> str:
    """Render a duration in seconds the way the paper's tables do.

    Durations under ten seconds keep millisecond precision (Table II reports
    values like ``0.072``); larger values are rendered with one decimal.

    >>> fmt_seconds(0.0721)
    '0.072'
    >>> fmt_seconds(96.067)
    '96.1'
    """
    if t < 0:
        return "-" + fmt_seconds(-t)
    if t < 10.0:
        return f"{t:.3f}"
    return f"{t:.1f}"


def fmt_rate(bytes_per_second: float) -> str:
    """Render a bandwidth, e.g. ``'850.0 MB/s'``."""
    return fmt_bytes(bytes_per_second) + "/s"


def fmt_percent(fraction: float) -> str:
    """Render a fraction as a percentage with one decimal: ``0.1555 -> '15.6%'``."""
    return f"{fraction * 100.0:.1f}%"


def parse_size(text: str) -> int:
    """Parse a human size string (``'120GB'``, ``'128 MB'``, ``'42'``) to bytes.

    Raises :class:`ValueError` for unknown suffixes or malformed numbers.
    """
    s = text.strip().upper().replace(" ", "")
    suffixes = {"TB": TB, "GB": GB, "MB": MB, "KB": KB, "B": 1}
    for suffix in ("TB", "GB", "MB", "KB", "B"):
        if s.endswith(suffix):
            num = s[: -len(suffix)]
            return int(float(num) * suffixes[suffix])
    return int(float(s))
