"""Serial reference implementations — the correctness oracle.

These are written independently of the Generalized Reduction API (plain
NumPy over the whole dataset in memory) so that agreement with the
distributed runtime is meaningful evidence, not a tautology.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "knn_reference",
    "kmeans_reference",
    "pagerank_reference",
    "wordcount_reference",
    "histogram_reference",
]


def knn_reference(
    ids: np.ndarray, coords: np.ndarray, query: np.ndarray, k: int
) -> list[tuple[float, int]]:
    """Exact k nearest neighbors by full sort, ties broken by id."""
    q = np.asarray(query, dtype=np.float32)
    diffs = np.asarray(coords, dtype=np.float32) - q
    dists = np.einsum("ij,ij->i", diffs, diffs).astype(np.float64)
    order = np.lexsort((np.asarray(ids, dtype=np.int64), dists))[:k]
    return [(float(dists[i]), int(ids[i])) for i in order]


def kmeans_reference(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """One Lloyd iteration; empty clusters keep their previous centroid."""
    pts = np.asarray(points, dtype=np.float32)
    cents = np.asarray(centroids, dtype=np.float32)
    # Full pairwise distances (fine at oracle scale).
    d2 = (
        np.einsum("ij,ij->i", pts, pts)[:, None]
        - 2.0 * pts @ cents.T
        + np.einsum("ij,ij->i", cents, cents)[None, :]
    )
    assign = np.argmin(d2, axis=1)
    out = cents.astype(np.float64).copy()
    for c in range(len(cents)):
        members = pts[assign == c]
        if len(members):
            out[c] = members.astype(np.float64).mean(axis=0)
    return out.astype(np.float32)


def pagerank_reference(
    edges: np.ndarray,
    n_pages: int,
    ranks: np.ndarray | None = None,
    damping: float = 0.85,
    iterations: int = 1,
) -> np.ndarray:
    """Power iteration(s) with uniform dangling-mass redistribution."""
    if ranks is None:
        r = np.full(n_pages, 1.0 / n_pages, dtype=np.float64)
    else:
        r = np.asarray(ranks, dtype=np.float64).copy()
    src = edges[:, 0].astype(np.int64)
    dst = edges[:, 1].astype(np.int64)
    outdeg = np.bincount(src, minlength=n_pages).astype(np.int64)
    has_out = outdeg > 0
    for _ in range(iterations):
        contrib = np.zeros(n_pages, dtype=np.float64)
        contrib[has_out] = r[has_out] / outdeg[has_out]
        acc = np.zeros(n_pages, dtype=np.float64)
        np.add.at(acc, dst, contrib[src])
        dangling = float(r[~has_out].sum())
        r = (1.0 - damping) / n_pages + damping * (acc + dangling / n_pages)
    return r


def wordcount_reference(tokens: np.ndarray) -> dict[int, int]:
    """Token-id frequency table."""
    values, counts = np.unique(np.asarray(tokens).ravel(), return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def histogram_reference(
    values: np.ndarray, bins: int, lo: float, hi: float
) -> np.ndarray:
    """Fixed-range histogram with edge-bin clipping (matches HistogramApp)."""
    vals = np.asarray(values, dtype=np.float64).ravel()
    scaled = (vals - lo) / (hi - lo) * bins
    idx = np.clip(scaled.astype(np.int64), 0, bins - 1)
    out = np.zeros(bins, dtype=np.int64)
    np.add.at(out, idx, 1)
    return out
