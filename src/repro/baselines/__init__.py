"""Baselines: serial correctness oracles and the Map-Reduce comparison
engine from Section III-A's API discussion."""

from .mapreduce import (
    MapReduceEngine,
    MapReduceStats,
    mr_histogram,
    mr_wordcount,
)
from .serial import (
    histogram_reference,
    kmeans_reference,
    knn_reference,
    pagerank_reference,
    wordcount_reference,
)

__all__ = [
    "MapReduceEngine",
    "MapReduceStats",
    "mr_histogram",
    "mr_wordcount",
    "histogram_reference",
    "kmeans_reference",
    "knn_reference",
    "pagerank_reference",
    "wordcount_reference",
]
