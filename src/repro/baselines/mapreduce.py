"""An in-memory Map-Reduce engine — the API baseline of Section III-A.

The paper contrasts Generalized Reduction with Map-Reduce (with and without
the optional ``Combine`` function, Figure 1) and argues that even with a
combiner, intermediate ``(key, value)`` pairs are still *generated* on every
map node, costing memory, sorting, and grouping; Generalized Reduction
fuses the pipeline and never materializes them.

This engine exists to make that comparison measurable: it executes the
classic map → (combine) → shuffle → reduce pipeline and counts

* ``pairs_emitted`` — intermediate pairs produced by map,
* ``pairs_shuffled`` — pairs that crossed the (simulated) shuffle after
  optional combining,
* ``peak_buffer_pairs`` — the largest per-map-task buffer,

which `bench_ablation_api` reports next to the Generalized Reduction
equivalent (whose intermediate pair count is zero by construction).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

__all__ = ["MapReduceStats", "MapReduceEngine", "mr_wordcount", "mr_histogram"]

MapFn = Callable[[Any], Iterable[tuple[Hashable, Any]]]
ReduceFn = Callable[[Hashable, list[Any]], Any]
CombineFn = Callable[[Hashable, list[Any]], Any]


@dataclass
class MapReduceStats:
    """Counters for the intermediate-data argument."""

    map_tasks: int = 0
    pairs_emitted: int = 0
    pairs_shuffled: int = 0
    peak_buffer_pairs: int = 0
    reduce_groups: int = 0

    def observe_buffer(self, size: int) -> None:
        self.peak_buffer_pairs = max(self.peak_buffer_pairs, size)


@dataclass
class MapReduceEngine:
    """Execute map -> (combine) -> shuffle -> reduce over input splits.

    ``num_partitions`` models the reduce-side parallelism; partitioning is
    by ``hash(key) % num_partitions`` as in Hadoop. The engine is
    deliberately faithful to the dataflow (buffer, group, shuffle) rather
    than to any one implementation's performance.
    """

    map_fn: MapFn
    reduce_fn: ReduceFn
    combine_fn: CombineFn | None = None
    num_partitions: int = 4
    stats: MapReduceStats = field(default_factory=MapReduceStats)

    def run(self, splits: Sequence[Any]) -> dict[Hashable, Any]:
        """Run the full pipeline; returns ``{key: reduced value}``."""
        partitions: list[dict[Hashable, list[Any]]] = [
            defaultdict(list) for _ in range(self.num_partitions)
        ]
        for split in splits:
            self.stats.map_tasks += 1
            # Map phase: buffer this task's intermediate pairs, grouped by
            # key (the paper's description of the combine buffer).
            buffer: dict[Hashable, list[Any]] = defaultdict(list)
            pairs = 0
            for key, value in self.map_fn(split):
                buffer[key].append(value)
                pairs += 1
            self.stats.pairs_emitted += pairs
            self.stats.observe_buffer(pairs)
            # Optional combine: collapse each key's values before shuffle.
            if self.combine_fn is not None:
                emitted = {
                    key: [self.combine_fn(key, values)]
                    for key, values in buffer.items()
                }
            else:
                emitted = buffer
            # Shuffle: hash-partition to reducers.
            for key, values in emitted.items():
                self.stats.pairs_shuffled += len(values)
                partitions[hash(key) % self.num_partitions][key].extend(values)
        # Reduce phase.
        result: dict[Hashable, Any] = {}
        for part in partitions:
            for key, values in part.items():
                self.stats.reduce_groups += 1
                result[key] = self.reduce_fn(key, values)
        return result


# --- reference formulations used by tests and the API ablation -------------


def mr_wordcount(
    token_splits: Sequence[Any], *, combine: bool = False
) -> tuple[dict[int, int], MapReduceStats]:
    """Word count as classic Map-Reduce over arrays of token ids."""

    def map_fn(split: Any) -> Iterable[tuple[int, int]]:
        for token in split.ravel().tolist():
            yield int(token), 1

    def reduce_fn(key: Hashable, values: list[int]) -> int:
        return sum(values)

    combine_fn = (lambda key, values: sum(values)) if combine else None
    engine = MapReduceEngine(map_fn, reduce_fn, combine_fn)
    result = engine.run(token_splits)
    return {int(k): int(v) for k, v in result.items()}, engine.stats


def mr_histogram(
    value_splits: Sequence[Any],
    bins: int,
    lo: float,
    hi: float,
    *,
    combine: bool = False,
) -> tuple[dict[int, int], MapReduceStats]:
    """Histogram as Map-Reduce: key = bin index, value = 1."""

    def map_fn(split: Any) -> Iterable[tuple[int, int]]:
        vals = split.ravel()
        scaled = (vals - lo) / (hi - lo) * bins
        for idx in scaled:
            b = int(idx)
            if b < 0:
                b = 0
            elif b >= bins:
                b = bins - 1
            yield b, 1

    def reduce_fn(key: Hashable, values: list[int]) -> int:
        return sum(values)

    combine_fn = (lambda key, values: sum(values)) if combine else None
    engine = MapReduceEngine(map_fn, reduce_fn, combine_fn)
    result = engine.run(value_splits)
    return {int(k): int(v) for k, v in result.items()}, engine.stats
