"""Command-line interface.

`python -m repro <command>` drives the simulator and the harness without
writing any code:

.. code-block:: console

    python -m repro apps                      # list applications
    python -m repro simulate knn env-33/67    # one configuration
    python -m repro figure3 pagerank          # one sub-figure sweep
    python -m repro figure4 kmeans
    python -m repro table1                    # all apps
    python -m repro table2
    python -m repro cost knn                  # dollar costs per env

Every command prints the same report blocks the benches do. ``--scale``
shrinks the dataset (same 960-job structure) for quick looks; ``--seed``
reseeds the jitter models.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .apps import available_apps
from .apps.base import get_profile
from .bench.configs import ENV_NAMES, env_config, figure3_configs
from .bench.cost import price_run
from .bench.experiments import (
    PAPER_APPS,
    mean_hybrid_slowdown,
    run_figure3,
    run_figure4,
)
from .bench.reporting import (
    render_figure3,
    render_figure4,
    render_table,
    render_table1,
    render_table2,
)
from .errors import ConfigurationError, ReproError
from .sim.simulation import simulate
from .units import fmt_seconds

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Framework for Data-Intensive Computing with "
            "Cloud Bursting' (CLUSTER 2011)"
        ),
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset scale factor (1.0 = the paper's 120 GB)",
    )
    parser.add_argument("--seed", type=int, default=2011, help="experiment seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list registered applications")

    p = sub.add_parser("simulate", help="simulate one configuration")
    p.add_argument("app")
    p.add_argument("env", choices=ENV_NAMES)
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON (for scripting)")

    for name in ("figure3", "figure4"):
        p = sub.add_parser(name, help=f"regenerate {name} for one app")
        p.add_argument("app")

    sub.add_parser("table1", help="regenerate Table I (all apps)")
    sub.add_parser("table2", help="regenerate Table II (all apps)")

    p = sub.add_parser("cost", help="price each environment for one app")
    p.add_argument("app")

    sub.add_parser(
        "scorecard", help="run the full evaluation and grade every claim"
    )

    p = sub.add_parser(
        "generate", help="materialize a synthetic dataset + index on disk"
    )
    p.add_argument("app")
    p.add_argument("--out", required=True, help="output directory")
    p.add_argument("--units", type=int, default=65536, help="total data units")
    p.add_argument("--files", type=int, default=8)
    p.add_argument("--chunks-per-file", type=int, default=4)
    p.add_argument("--local-fraction", type=float, default=0.5)

    p = sub.add_parser(
        "run", help="execute an app over a generated dataset (real runtime)"
    )
    p.add_argument("dataset", help="directory produced by `generate`")
    p.add_argument("--local-cores", type=int, default=2)
    p.add_argument("--cloud-cores", type=int, default=2)
    p.add_argument(
        "--cache-bytes", type=int, default=0, metavar="N",
        help="chunk-cache byte budget for cross-site reads (0 = no cache; "
        "iterative passes then refetch nothing already seen)",
    )
    p.add_argument(
        "--prefetch", action="store_true",
        help="overlap each slave's next chunk fetch with its current "
        "reduction (double-buffered pipeline)",
    )
    p.add_argument(
        "--slave-mode", default="thread", choices=("thread", "process"),
        help="slave substrate: 'thread' (in-process, default) or 'process' "
        "(decode + local reduction in worker processes over shared memory "
        "— GIL-free compute for CPU-bound apps)",
    )
    p.add_argument(
        "--iterations", type=int, default=1, metavar="N",
        help="run N passes, feeding each result back through the app's "
        "update() hook (kmeans, pagerank)",
    )
    _add_sync_args(p)
    _add_fault_args(p)
    _add_scale_args(p)

    p = sub.add_parser(
        "trace",
        help="trace a run (simulated, or real with --runtime) and render "
        "a Gantt chart",
    )
    p.add_argument("app")
    p.add_argument("env", nargs="?", choices=ENV_NAMES,
                   help="simulator environment (omit with --runtime)")
    p.add_argument("--runtime", action="store_true",
                   help="trace a real CloudBurstingRuntime run instead of "
                   "the simulator")
    p.add_argument("--units", type=int, default=2048,
                   help="data units for the --runtime dataset")
    p.add_argument("--local-cores", type=int, default=2)
    p.add_argument("--cloud-cores", type=int, default=2)
    p.add_argument("--local-fraction", type=float, default=0.5,
                   help="fraction of --runtime data stored locally")
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--critical-path", action="store_true",
                   help="print the causal critical path through the makespan")
    p.add_argument("--out", metavar="TRACE.jsonl",
                   help="also write the event stream as JSONL")
    p.add_argument("--perfetto", metavar="TRACE.json",
                   help="also write a Perfetto/Chrome trace_event file")

    p = sub.add_parser(
        "report", help="render the run report from a JSONL trace file"
    )
    p.add_argument("trace", help="JSONL file written by `trace --out`")
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--critical-path", action="store_true",
                   help="print the causal critical path through the makespan")
    p.add_argument("--perfetto", metavar="TRACE.json",
                   help="also convert the trace to Perfetto JSON")

    p = sub.add_parser(
        "watch",
        help="execute an app in the real runtime with a live top-style "
        "health feed (pool depth, utilization, cache, ETA)",
    )
    p.add_argument("app")
    p.add_argument("--units", type=int, default=8192,
                   help="data units for the in-memory dataset")
    p.add_argument("--local-cores", type=int, default=2)
    p.add_argument("--cloud-cores", type=int, default=2)
    p.add_argument("--local-fraction", type=float, default=0.5,
                   help="fraction of data stored locally")
    p.add_argument("--interval", type=float, default=0.2, metavar="SECONDS",
                   help="sampling interval for the health feed")
    p.add_argument("--iterations", type=int, default=1, metavar="N",
                   help="run N passes (iterative apps only)")
    _add_scale_args(p)

    p = sub.add_parser(
        "submit",
        help="submit one or more runs to a job service and execute them "
        "in fair-share order (multi-tenant scheduling demo; with "
        "--journal, `repro status`/`repro cancel` see the runs from "
        "other terminals)",
    )
    p.add_argument(
        "apps", nargs="+", metavar="APP",
        help="app registry keys; prefix with 'tenant:' to submit under a "
        "named tenant (e.g. analytics:kmeans adhoc:wordcount)",
    )
    p.add_argument("--units", type=int, default=4096,
                   help="data units for the shared in-memory dataset")
    p.add_argument("--local-cores", type=int, default=2)
    p.add_argument("--cloud-cores", type=int, default=2)
    p.add_argument("--local-fraction", type=float, default=0.5)
    p.add_argument(
        "--weight", action="append", default=[], metavar="TENANT=W",
        help="fair-share weight for a tenant (repeatable; default 1)",
    )
    p.add_argument("--priority", type=int, default=0,
                   help="priority within each tenant (higher first)")
    p.add_argument("--workers", type=int, default=0,
                   help="service dispatcher threads (0 = inline)")
    p.add_argument("--journal", metavar="STATE.json",
                   help="persist run state for `repro status` / "
                   "`repro cancel`")

    p = sub.add_parser(
        "status",
        help="report runs recorded in a service journal file",
    )
    p.add_argument("journal", metavar="STATE.json",
                   help="journal written by `repro submit --journal` or a "
                   "JobService(journal=...)")
    p.add_argument("run_id", nargs="?",
                   help="show one run in detail instead of the table")

    p = sub.add_parser(
        "cancel",
        help="file a cancel request for a queued run in a service journal "
        "(honored at dispatch; running runs are never preempted)",
    )
    p.add_argument("journal", metavar="STATE.json")
    p.add_argument("run_id")

    p = sub.add_parser(
        "multisite", help="simulate an N-site experiment from a JSON config"
    )
    p.add_argument("config", help="path to a multisite JSON document")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")

    p = sub.add_parser("sweep", help="data-skew continuum for one app")
    p.add_argument("app")

    p = sub.add_parser("stealing", help="work stealing on/off for one app")
    p.add_argument("app")

    p = sub.add_parser(
        "iterative", help="project a multi-pass (iterative) workload"
    )
    p.add_argument("app")
    p.add_argument("--env", default="env-50/50", choices=ENV_NAMES)
    p.add_argument("--iterations", type=int, default=10)
    return parser


def _add_sync_args(p: argparse.ArgumentParser) -> None:
    """Global-reduction sync knobs (wire encoding + aggregation topology)."""
    from .core.sync import TOPOLOGIES
    from .core.wire import COMPRESSIONS, ENCODINGS

    p.add_argument(
        "--sync-encoding", default="dense", choices=ENCODINGS,
        help="reduction-object wire encoding (delta needs --iterations > 1 "
        "to pay off; auto picks the cheapest per upload)",
    )
    p.add_argument(
        "--sync-compress", default="none", choices=COMPRESSIONS,
        help="compress reduction-object uploads on the wire",
    )
    p.add_argument(
        "--sync-topology", default="star", choices=TOPOLOGIES,
        help="aggregation shape for cluster uploads (star = everyone to the "
        "head; tree/ring relay through other masters)",
    )
    p.add_argument(
        "--sync-stream", action="store_true",
        help="merge partial reduction objects as they arrive instead of "
        "behind the end-of-pass barrier",
    )
    p.add_argument(
        "--sync-watermark", type=int, default=8, metavar="N",
        help="with --sync-stream, slaves flush a partial every N jobs",
    )


def _add_scale_args(p: argparse.ArgumentParser) -> None:
    """Elastic-bursting knobs shared by commands that execute the runtime."""
    p.add_argument(
        "--autoscale", action="store_true",
        help="grow/shrink the cloud slave fleet mid-run to hit --deadline "
        "and --budget (see docs/SCALING.md)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="with --autoscale, target wall-clock deadline the controller "
        "scales toward",
    )
    p.add_argument(
        "--budget", type=float, default=None, metavar="DOLLARS",
        help="with --autoscale, hard cloud-spend ceiling the controller "
        "never exceeds",
    )
    p.add_argument(
        "--min-slaves", type=int, default=1, metavar="N",
        help="autoscaler floor for the cloud fleet (default 1)",
    )
    p.add_argument(
        "--max-slaves", type=int, default=8, metavar="N",
        help="autoscaler ceiling for the cloud fleet (default 8)",
    )
    p.add_argument(
        "--revoke", metavar="SPEC",
        help="spot-revocation spec for cloud slaves, e.g. "
        "'rate=0.05,seed=7,provision=0.1' (results stay bit-identical; "
        "see docs/SCALING.md for the grammar)",
    )


def _resolve_scale(args: argparse.Namespace):
    """Map the shared scaling flags to ``ScaleOptions | None``."""
    from .options import ScaleOptions

    if not args.autoscale and not args.revoke:
        if args.deadline is not None or args.budget is not None:
            raise ConfigurationError(
                "--deadline/--budget are autoscaler targets; add --autoscale"
            )
        return None
    return ScaleOptions(
        autoscale=args.autoscale,
        deadline=args.deadline,
        budget=args.budget,
        min_slaves=args.min_slaves,
        max_slaves=args.max_slaves,
        revocation=args.revoke,
    )


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    """Resilience knobs shared by commands that execute the real runtime."""
    p.add_argument(
        "--faults", metavar="SPEC",
        help="fault-injection spec, e.g. 'transient=0.1,latency=0.05:0.02,"
        "seed=7' (see docs/RESILIENCE.md for the grammar)",
    )
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max storage attempts per sub-range (default: 4 when --faults "
        "is given, else no retry layer)",
    )
    p.add_argument(
        "--hedge-after", type=float, default=None, metavar="SECONDS",
        help="race a duplicate request against any sub-range read slower "
        "than this (off by default)",
    )


def _cmd_apps(args: argparse.Namespace) -> None:
    rows = []
    for key in available_apps():
        profile = get_profile(key)
        rows.append((key, profile.record_bytes, profile.robj_bytes,
                     profile.description))
    print(render_table(("app", "record B", "robj B", "description"), rows))


def _cmd_simulate(args: argparse.Namespace) -> None:
    config = env_config(args.app, args.env, scale=args.scale, seed=args.seed)
    report = simulate(config)
    if args.json:
        print(report.to_json())
        return
    print(config.describe())
    print(f"makespan: {fmt_seconds(report.makespan)} s")
    print(f"global reduction: {fmt_seconds(report.global_reduction)} s")
    rows = [
        (c.site, c.cores, c.jobs_processed, c.jobs_stolen,
         fmt_seconds(c.mean_processing), fmt_seconds(c.mean_retrieval),
         fmt_seconds(c.sync), fmt_seconds(c.idle))
        for c in report.clusters.values()
    ]
    print(render_table(
        ("cluster", "cores", "jobs", "stolen", "proc", "retr", "sync", "idle"),
        rows,
    ))


def _cmd_figure3(args: argparse.Namespace) -> None:
    run = run_figure3(args.app, scale=args.scale, seed=args.seed)
    print(render_figure3(run))


def _cmd_figure4(args: argparse.Namespace) -> None:
    run = run_figure4(args.app, scale=args.scale, seed=args.seed)
    print(render_figure4(run))


def _cmd_table1(args: argparse.Namespace) -> None:
    runs = {app: run_figure3(app, scale=args.scale, seed=args.seed)
            for app in PAPER_APPS}
    print(render_table1(runs))


def _cmd_table2(args: argparse.Namespace) -> None:
    runs = {app: run_figure3(app, scale=args.scale, seed=args.seed)
            for app in PAPER_APPS}
    print(render_table2(runs))
    mean = mean_hybrid_slowdown(runs) * 100
    print(f"\nAverage hybrid slowdown: {mean:.2f}% (paper: 15.55%)")


def _cmd_cost(args: argparse.Namespace) -> None:
    run = run_figure3(args.app, scale=args.scale, seed=args.seed)
    configs = figure3_configs(args.app, scale=args.scale, seed=args.seed)
    rows = []
    for env in ENV_NAMES:
        cost = price_run(configs[env], run.reports[env])
        rows.append(
            (env, f"{run.reports[env].makespan:.0f}s",
             f"${cost.ec2_compute:.2f}", f"${cost.s3_egress:.2f}",
             f"${cost.cloud_total:.2f}", f"${cost.total:.2f}")
        )
    print(render_table(
        ("env", "makespan", "EC2", "S3 egress", "cloud bill", "total"), rows
    ))


def _cmd_scorecard(args: argparse.Namespace) -> None:
    from .bench.validate import evaluate_claims, render_scorecard

    claims = evaluate_claims(scale=args.scale, seed=args.seed)
    print(render_scorecard(claims))


_DATASET_META = "dataset.json"


def _cmd_generate(args: argparse.Namespace) -> None:
    import json
    from pathlib import Path

    from .apps import make_bundle
    from .config import CLOUD_SITE, DatasetSpec, LOCAL_SITE, PlacementSpec
    from .data.dataset import build_dataset
    from .storage.localfs import LocalStorage

    bundle = make_bundle(args.app, args.units, seed=args.seed)
    record = bundle.schema.record_bytes
    chunks = args.files * args.chunks_per_file
    if args.units % chunks != 0:
        raise ConfigurationError(
            f"--units must be divisible by files*chunks ({chunks})"
        )
    spec = DatasetSpec(
        total_bytes=args.units * record,
        num_files=args.files,
        chunk_bytes=(args.units // chunks) * record,
        record_bytes=record,
    )
    out = Path(args.out)
    stores = {
        LOCAL_SITE: LocalStorage(out / "local"),
        CLOUD_SITE: LocalStorage(out / "cloud"),
    }
    index = build_dataset(
        spec, PlacementSpec(args.local_fraction), bundle.schema,
        bundle.block_fn, stores,
    )
    index.save(out / "index.json")
    (out / _DATASET_META).write_text(
        json.dumps(
            {
                "app": args.app,
                "units": args.units,
                "seed": args.seed,
                "total_bytes": spec.total_bytes,
            },
            indent=2,
        )
    )
    print(f"wrote {spec.num_chunks} chunks ({spec.total_bytes} bytes) to {out}")
    print(f"index: {out / 'index.json'}")


def _resolve_resilience(args: argparse.Namespace):
    """Map the shared fault/retry flags to ``(FaultSpec | None, RetryPolicy | None)``."""
    from .resilience import FaultSpec, RetryPolicy

    spec = FaultSpec.parse(args.faults) if args.faults else None
    if spec is not None and not spec.active:
        spec = None
    policy = None
    if args.retries is not None or args.hedge_after is not None or spec is not None:
        kwargs = {}
        if args.retries is not None:
            kwargs["max_attempts"] = args.retries
        if args.hedge_after is not None:
            kwargs["hedge_after"] = args.hedge_after
        policy = RetryPolicy(**kwargs)
    return spec, policy


def _cmd_run(args: argparse.Namespace) -> None:
    import json
    from pathlib import Path

    import numpy as np

    from .apps import make_bundle
    from .cache import ChunkCache
    from .config import CLOUD_SITE, ComputeSpec, LOCAL_SITE
    from .core.index import DataIndex
    from .core.sync import SyncSpec
    from .resilience import FaultInjector
    from .runtime.driver import CloudBurstingRuntime
    from .storage.localfs import LocalStorage

    root = Path(args.dataset)
    meta_path = root / _DATASET_META
    if not meta_path.is_file():
        raise ConfigurationError(
            f"{root} does not look like a generated dataset (no {_DATASET_META})"
        )
    meta = json.loads(meta_path.read_text())
    bundle = make_bundle(meta["app"], meta["units"], seed=meta["seed"])
    index = DataIndex.load(root / "index.json")
    stores = {
        LOCAL_SITE: LocalStorage(root / "local"),
        CLOUD_SITE: LocalStorage(root / "cloud"),
    }
    spec, policy = _resolve_resilience(args)
    if spec is not None:
        stores = {site: FaultInjector(s, spec) for site, s in stores.items()}
    if args.iterations < 1:
        raise ConfigurationError("--iterations must be at least 1")
    if args.cache_bytes < 0:
        raise ConfigurationError("--cache-bytes must be non-negative")
    cache = ChunkCache(args.cache_bytes) if args.cache_bytes > 0 else None
    sync = SyncSpec(
        topology=args.sync_topology,
        encoding=args.sync_encoding,
        compress=args.sync_compress,
        stream=args.sync_stream,
        watermark=args.sync_watermark,
    )
    scale = _resolve_scale(args)
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=args.local_cores, cloud_cores=args.cloud_cores),
        retry_policy=policy,
        cache=cache,
        prefetch=args.prefetch,
        sync=sync,
        slave_mode=args.slave_mode,
        scale=scale,
    )
    if args.iterations > 1 and not hasattr(bundle.app, "update"):
        raise ConfigurationError(
            f"app {meta['app']!r} has no update() hook; --iterations needs "
            f"an iterative app (kmeans, pagerank)"
        )
    wall = 0.0
    prefetches = 0
    sync_sent = sync_saved = sync_partials = 0
    zero_copy = copied = 0
    added = revoked = 0
    dollars = 0.0
    for i in range(args.iterations):
        result = runtime.run()
        wall += result.telemetry.wall_seconds
        prefetches += result.telemetry.prefetches
        sync_sent += result.telemetry.sync_bytes_sent
        sync_saved += result.telemetry.sync_bytes_saved
        sync_partials += result.telemetry.sync_partial_merges
        zero_copy += result.telemetry.zero_copy_reads
        copied += result.telemetry.bytes_copied
        added += result.telemetry.slaves_added
        revoked += result.telemetry.slaves_revoked
        dollars += result.telemetry.dollars_spent
        if args.iterations > 1:
            bundle.app.update(result.value)  # same contract as run_iterative
    value = result.value
    print(f"app: {meta['app']}  wall: {wall:.3f}s"
          + (f"  passes: {args.iterations}" if args.iterations > 1 else ""))
    if isinstance(value, np.ndarray):
        print(f"result: ndarray shape={value.shape} "
              f"head={np.asarray(value).ravel()[:4]}")
    elif isinstance(value, dict):
        head = sorted(value.items())[:4]
        print(f"result: dict of {len(value)} entries, head={head}")
    else:
        seq = list(value)[:4] if hasattr(value, "__iter__") else value
        print(f"result: {seq}")
    for name, cluster in result.telemetry.clusters.items():
        print(f"{name}: {cluster.jobs} jobs ({cluster.stolen} stolen)")
    t = result.telemetry
    print(
        f"data path ({args.slave_mode} slaves): {zero_copy} zero-copy reads, "
        f"{copied} bytes copied"
    )
    if cache is not None or args.prefetch:
        s = cache.stats if cache is not None else None
        parts = []
        if s is not None:
            parts.append(
                f"cache: {s.hits} hits / {s.misses} misses, "
                f"{s.bytes_saved} bytes saved, {s.evictions} evictions"
            )
        if args.prefetch:
            parts.append(f"prefetches: {prefetches}")
        print("  ".join(parts))
    if not sync.is_default:
        saved_pct = (
            100.0 * sync_saved / (sync_sent + sync_saved)
            if sync_sent + sync_saved else 0.0
        )
        print(
            f"sync: {sync.topology}/{sync.encoding}/{sync.compress} "
            f"sent {sync_sent} wire bytes, saved {sync_saved} "
            f"({saved_pct:.1f}% off dense), "
            f"{sync_partials} streamed partial merges"
        )
    if spec is not None or policy is not None:
        print(
            f"resilience: {t.faults_injected} faults injected, "
            f"{t.retries} retries, {t.hedges} hedges "
            f"({t.hedge_wins} won), {t.timeouts} timeouts, "
            f"{t.circuit_opens} circuit opens"
        )
    if scale is not None:
        targets = []
        if args.deadline is not None:
            targets.append(f"deadline {args.deadline}s")
        if args.budget is not None:
            targets.append(f"budget ${args.budget:.2f}")
        label = f" ({', '.join(targets)})" if targets else ""
        print(
            f"scaling{label}: {added} slaves added, {revoked} revoked, "
            f"${dollars:.4f} cloud spend"
        )


def _export_trace(trace, args: argparse.Namespace) -> None:
    from .obs import write_jsonl, write_perfetto

    if getattr(args, "out", None):
        count = write_jsonl(trace, args.out)
        print(f"\nwrote {count} events to {args.out}")
    if getattr(args, "perfetto", None):
        count = write_perfetto(trace, args.perfetto)
        print(f"\nwrote {count} trace events to {args.perfetto} "
              f"(open in https://ui.perfetto.dev)")


def _cmd_trace(args: argparse.Namespace) -> None:
    from .obs import EventLog, render_gantt, utilization

    if args.runtime:
        _trace_runtime(args)
        return
    if args.env is None:
        raise ConfigurationError(
            "trace needs an environment (or --runtime for a real run)"
        )
    from .sim.simulation import CloudBurstSimulation

    trace = EventLog()
    config = env_config(args.app, args.env, scale=args.scale, seed=args.seed)
    report = CloudBurstSimulation(config, trace=trace).run()
    print(f"{config.describe()}\nmakespan {fmt_seconds(report.makespan)} s, "
          f"{len(trace)} trace events\n")
    print(render_gantt(trace, report.makespan, width=args.width))
    util = utilization(trace, report.makespan)
    mean_idle = sum(u["idle"] for u in util.values()) / len(util)
    print(f"\nmean worker idle fraction: {mean_idle * 100:.1f}%")
    if args.critical_path:
        from .obs import critical_path, render_critical_path

        print()
        print(render_critical_path(critical_path(trace, report.makespan)))
    _export_trace(trace, args)


def _trace_runtime(args: argparse.Namespace) -> None:
    from .apps import make_bundle
    from .config import (
        CLOUD_SITE,
        ComputeSpec,
        DatasetSpec,
        LOCAL_SITE,
        PlacementSpec,
    )
    from .data.dataset import build_dataset
    from .obs import EventLog, MetricsRegistry, render_report
    from .runtime.driver import CloudBurstingRuntime
    from .storage.objectstore import ObjectStore

    files, chunks_per_file = 4, 4
    chunks = files * chunks_per_file
    if args.units % chunks != 0:
        raise ConfigurationError(f"--units must be divisible by {chunks}")
    bundle = make_bundle(args.app, args.units, seed=args.seed)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=args.units * rb,
        num_files=files,
        chunk_bytes=(args.units // chunks) * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(args.local_fraction), bundle.schema,
        bundle.block_fn, stores,
    )
    trace = EventLog()
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=args.local_cores, cloud_cores=args.cloud_cores),
        trace=trace, metrics=MetricsRegistry(), seed=args.seed,
    )
    result = runtime.run()
    print(f"{args.app} (real runtime, {args.units} units, "
          f"{args.local_cores}+{args.cloud_cores} cores): "
          f"wall {result.telemetry.wall_seconds:.3f}s, "
          f"{result.telemetry.total_stolen} jobs stolen\n")
    print(render_report(
        trace, width=args.width, show_critical_path=args.critical_path
    ))
    _export_trace(trace, args)


def _cmd_report(args: argparse.Namespace) -> None:
    from .obs import read_jsonl, render_report, write_perfetto

    trace = read_jsonl(args.trace)
    print(render_report(
        trace, width=args.width, show_critical_path=args.critical_path
    ))
    if args.perfetto:
        count = write_perfetto(trace, args.perfetto)
        print(f"\nwrote {count} trace events to {args.perfetto} "
              f"(open in https://ui.perfetto.dev)")


def _sample_line(sample) -> str:
    """One top-style feed line for a :class:`~repro.obs.live.RunSample`."""
    eta = f"{sample.eta_seconds:6.1f}s" if sample.eta_seconds is not None else "     --"
    return (
        f"{sample.time:7.2f}s  {sample.progress * 100:5.1f}%  "
        f"{sample.jobs_done:>5}/{sample.jobs_total:<5}  "
        f"pool {sample.pool_depth:>4}  run {sample.in_flight:>3}  "
        f"wkr {sample.workers:>3}  "
        f"steal {sample.steals:>3}  util {sample.utilization * 100:5.1f}%  "
        f"cache {sample.cache_hit_ratio * 100:5.1f}%  eta {eta}"
    )


def _cmd_watch(args: argparse.Namespace) -> None:
    from .apps import make_bundle
    from .config import ComputeSpec, DatasetSpec, PlacementSpec
    from .facade import RunConfig
    from .facade import run as run_app
    from .options import MonitorOptions

    files, chunks_per_file = 4, 4
    chunks = files * chunks_per_file
    if args.units % chunks != 0:
        raise ConfigurationError(f"--units must be divisible by {chunks}")
    if args.interval <= 0:
        raise ConfigurationError("--interval must be positive")
    bundle = make_bundle(args.app, args.units, seed=args.seed)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=args.units * rb,
        num_files=files,
        chunk_bytes=(args.units // chunks) * rb,
        record_bytes=rb,
    )
    print(f"{args.app} (real runtime, {args.units} units, "
          f"{args.local_cores}+{args.cloud_cores} cores, "
          f"sampling every {args.interval}s)")
    print(f"{'time':>8}  {'prog':>5}  {'done':>11}  pool       run  "
          f"wkr      steal      util         cache        eta")
    scale = _resolve_scale(args)
    config = RunConfig(
        mode="runtime",
        placement=PlacementSpec(args.local_fraction),
        compute=ComputeSpec(
            local_cores=args.local_cores, cloud_cores=args.cloud_cores
        ),
        seed=args.seed,
        iterations=args.iterations,
        monitor=MonitorOptions(
            interval=args.interval,
            on_sample=lambda sample: print(_sample_line(sample), flush=True),
        ),
        **({"scale": scale} if scale is not None else {}),
    )
    result = run_app(bundle, spec, config)
    t = result.telemetry
    print(f"\ndone: wall {t.wall_seconds:.3f}s, {t.total_jobs} jobs "
          f"({t.total_stolen} stolen), {len(result.samples)} samples"
          + (f", {result.passes} passes" if result.passes > 1 else ""))
    if scale is not None:
        print(f"scaling: {t.slaves_added} slaves added, "
              f"{t.slaves_revoked} revoked, "
              f"${t.dollars_spent:.4f} cloud spend")


def _submit_dataset(args: argparse.Namespace, record_bytes: int):
    """Shared in-memory dataset spec for `submit` (same shape as watch)."""
    from .config import DatasetSpec

    files, chunks_per_file = 4, 4
    chunks = files * chunks_per_file
    if args.units % chunks != 0:
        raise ConfigurationError(f"--units must be divisible by {chunks}")
    return DatasetSpec(
        total_bytes=args.units * record_bytes,
        num_files=files,
        chunk_bytes=(args.units // chunks) * record_bytes,
        record_bytes=record_bytes,
    )


def _cmd_submit(args: argparse.Namespace) -> None:
    from .apps.base import get_profile
    from .config import ComputeSpec, PlacementSpec
    from .facade import RunConfig
    from .service import JobService, TenantSpec

    weights: dict[str, float] = {}
    for item in args.weight:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise ConfigurationError(
                f"--weight takes TENANT=W (e.g. analytics=4), got {item!r}"
            )
        try:
            weights[name] = float(value)
        except ValueError:
            raise ConfigurationError(
                f"--weight {item!r}: {value!r} is not a number"
            ) from None

    submissions = []  # (tenant, app_key)
    for entry in args.apps:
        tenant, sep, app_key = entry.partition(":")
        if not sep:
            tenant, app_key = "default", entry
        submissions.append((tenant, app_key))

    with JobService(workers=args.workers, journal=args.journal) as service:
        for tenant in {t for t, _ in submissions} | set(weights):
            service.register(TenantSpec(tenant, weight=weights.get(tenant, 1.0)))
        handles = []
        for tenant, app_key in submissions:
            config = RunConfig(
                mode="runtime",
                placement=PlacementSpec(args.local_fraction),
                compute=ComputeSpec(
                    local_cores=args.local_cores,
                    cloud_cores=args.cloud_cores,
                ),
                seed=args.seed,
                name=f"{tenant}/{app_key}",
            )
            dataset = _submit_dataset(
                args, get_profile(app_key).record_bytes
            )
            handle = service.submit(
                app_key, dataset, config,
                tenant=tenant, priority=args.priority,
            )
            print(f"submitted {handle.run_id}  tenant={tenant}  app={app_key}")
            handles.append((handle, app_key))
        rows = []
        for handle, app_key in handles:
            try:
                result = handle.result()
                outcome = f"ok ({result.wall_seconds:.3f}s wall)"
            except ReproError as exc:
                outcome = f"failed: {exc}"
            status = handle.status()
            rows.append((handle.run_id, status.tenant, app_key,
                         status.state.value, outcome))
        print()
        print(render_table(
            ("run", "tenant", "app", "state", "outcome"), rows
        ))
        stats = service.stats()
    dispatch = {
        name: t["dispatched"] for name, t in stats["tenants"].items()
    }
    print(f"\ndispatched per tenant: {dispatch}")
    if args.journal:
        print(f"journal: {args.journal} (try `repro status {args.journal}`)")


def _cmd_status(args: argparse.Namespace) -> None:
    from .service import ServiceJournal

    journal = ServiceJournal(args.journal)
    runs = journal.runs()
    if args.run_id is not None:
        run = runs.get(args.run_id)
        if run is None:
            raise ConfigurationError(
                f"run {args.run_id!r} not found in {args.journal}"
            )
        for key in ("tenant", "state", "priority", "app",
                    "submitted_at", "started_at", "finished_at", "error"):
            print(f"{key}: {run.get(key)}")
        return
    if not runs:
        print(f"no runs recorded in {args.journal}")
        return
    rows = [
        (run_id, run["tenant"], run["app"], run["state"],
         run["error"] or "")
        for run_id, run in sorted(runs.items())
    ]
    print(render_table(("run", "tenant", "app", "state", "error"), rows))
    pending = journal.cancel_requests()
    if pending:
        print(f"\noutstanding cancel requests: {sorted(pending)}")


def _cmd_cancel(args: argparse.Namespace) -> None:
    from .service import ServiceJournal

    journal = ServiceJournal(args.journal)
    runs = journal.runs()
    run = runs.get(args.run_id)
    if run is not None and run["state"] not in ("queued", "running"):
        print(f"{args.run_id} is already {run['state']}; nothing to cancel")
        return
    journal.request_cancel(args.run_id)
    print(f"cancel requested for {args.run_id}; the service honors it "
          f"when (and if) the run reaches dispatch")


def _cmd_multisite(args: argparse.Namespace) -> None:
    from pathlib import Path

    from .sim.multisite import MultiSiteSimulation, load_multisite_config

    config = load_multisite_config(Path(args.config).read_text())
    report = MultiSiteSimulation(config).run()
    if args.json:
        print(report.to_json())
        return
    print(f"{config.name}: app={config.app} sites={len(config.sites)} "
          f"head={config.head}")
    print(f"makespan {fmt_seconds(report.makespan)} s, "
          f"global reduction {fmt_seconds(report.global_reduction)} s")
    rows = [
        (c.site, c.cores, c.jobs_processed, c.jobs_stolen,
         fmt_seconds(c.mean_processing), fmt_seconds(c.mean_retrieval),
         fmt_seconds(c.sync))
        for c in report.clusters.values()
    ]
    print(render_table(
        ("site", "cores", "jobs", "stolen", "proc", "retr", "sync"), rows
    ))


def _cmd_sweep(args: argparse.Namespace) -> None:
    from .bench.experiments import run_skew_sweep

    sweep = run_skew_sweep(args.app, scale=args.scale, seed=args.seed)
    rows = []
    for fraction, report in sweep.items():
        stolen = sum(c.jobs_stolen for c in report.clusters.values())
        rows.append(
            (f"{fraction * 100:.0f}% local", fmt_seconds(report.makespan),
             stolen)
        )
    print(f"Data-skew continuum ({args.app}, halved hybrid compute)")
    print(render_table(("placement", "makespan (s)", "stolen"), rows))
    best = min(sweep, key=lambda f: sweep[f].makespan)
    print(f"\nbest placement: {best * 100:.0f}% local "
          f"({fmt_seconds(sweep[best].makespan)} s)")


def _cmd_stealing(args: argparse.Namespace) -> None:
    from .bench.experiments import run_stealing_ablation

    results = run_stealing_ablation(args.app, scale=args.scale, seed=args.seed)
    rows = []
    for env, (with_steal, without) in results.items():
        gain = (without.makespan / with_steal.makespan - 1) * 100
        rows.append(
            (env, fmt_seconds(with_steal.makespan),
             fmt_seconds(without.makespan), f"{gain:+.1f}%")
        )
    print(f"Work stealing on vs off ({args.app})")
    print(render_table(
        ("env", "stealing (s)", "no stealing (s)", "stealing gain"), rows
    ))


def _cmd_iterative(args: argparse.Namespace) -> None:
    from .bench.experiments import run_iterative_projection

    result = run_iterative_projection(
        args.app, args.env, args.iterations, scale=args.scale, seed=args.seed
    )
    print(f"{args.app} x {args.iterations} iterations ({args.env} vs env-local)")
    rows = [
        ("hybrid total", f"{result['hybrid_total']:.0f} s"),
        ("centralized total", f"{result['base_total']:.0f} s"),
        ("cumulative overhead", f"{result['total_overhead']:.0f} s"),
        ("of which robj exchange", f"{result['robj_overhead']:.0f} s"),
    ]
    print(render_table(("quantity", "value"), rows))


_COMMANDS = {
    "apps": _cmd_apps,
    "scorecard": _cmd_scorecard,
    "generate": _cmd_generate,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "watch": _cmd_watch,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "cancel": _cmd_cancel,
    "multisite": _cmd_multisite,
    "sweep": _cmd_sweep,
    "stealing": _cmd_stealing,
    "iterative": _cmd_iterative,
    "simulate": _cmd_simulate,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "cost": _cmd_cost,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
