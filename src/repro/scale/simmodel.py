"""Elastic bursting inside the discrete-event simulators.

:class:`ClusterBurst` is the simulated counterpart of the runtime
driver's autoscale wiring: it owns one cluster's dynamic cloud fleet,
drives the *same* pure :class:`~repro.scale.Autoscaler` the threaded
runtime uses (fed :class:`~repro.obs.live.RunSample` snapshots derived
by the same ``obs.live`` arithmetic), and models the two pieces of
cloud reality the executable runtime cannot: **provision latency** (a
scale-up decision takes ``provision_seconds`` of simulated time before
the new slave joins) and **spot revocation at virtual timestamps**.

Mechanics:

* dynamic slaves are pre-built and parked behind *gate* events; a
  scale-up decision releases a gate after the provision delay, so the
  cluster's ``all_of`` barrier can be assembled up front;
* revocation and retirement ride the :data:`~repro.sim.simnodes.LeaseFn`
  hook: at every job boundary the slave asks whether its instance still
  exists. The revocation schedule is :meth:`RevocationSpec.draw` — a
  pure function of ``(seed, worker_id, job ordinal)``, so the runtime
  and both simulators revoke the same ordinal of the same slave;
* a *provisioner* process samples the run every ``interval`` simulated
  seconds, exactly like the runtime's :class:`~repro.obs.live.RunMonitor`
  subscription, and applies controller decisions;
* once the static crew drains, the cluster process calls :meth:`close`
  (releasing every unprovisioned gate via one shared *closed* event so
  the barrier completes — a fleet that never burst costs nothing) and
  then :meth:`finalize` to shut the cost ledger at the drain timestamp,
  not at the provisioner's next polling tick.

The floor invariant matches :class:`~repro.scale.SpotRevoker`: at least
one cloud slave always survives, so pooled jobs can never strand.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..obs.live import _derive
from .controller import Autoscaler
from .revocation import RevocationSpec

if TYPE_CHECKING:  # avoid options <-> scale import cycle
    from ..options import ScaleOptions

__all__ = ["ClusterBurst"]


class ClusterBurst:
    """Dynamic fleet management for one simulated cloud cluster."""

    def __init__(
        self,
        env,
        master,
        scale: ScaleOptions,
        *,
        initial: int,
        make_slave: Callable[[int], object],
        next_worker_id: int,
        probe: Callable[[], dict],
        trace=None,
    ) -> None:
        self.env = env
        self.master = master
        self.scale = scale
        self.probe = probe
        self.trace = trace
        self.revocation: RevocationSpec | None = scale.revocation_spec
        self.controller: Autoscaler | None = (
            Autoscaler(
                min_slaves=scale.min_slaves,
                max_slaves=scale.max_slaves,
                deadline=scale.deadline,
                budget=scale.budget,
                dollars_per_slave_hour=scale.dollars_per_slave_hour,
                damping=scale.damping,
            )
            if scale.autoscale
            else None
        )
        self.slaves_added = 0
        self.slaves_removed = 0
        self.slaves_revoked = 0
        #: Dynamic slaves that actually joined the run (for reporting).
        self.started: list = []
        self._members: list = []  # every slave ever active, static + dynamic
        self._fleet = initial
        self._retiring: set[int] = set()
        self._gone: set[int] = set()
        self._cancelled: set[int] = set()
        self._closed = env.event()
        # Pre-build the dynamic fleet. Dead slave ids are never reused
        # (matching the runtime), so active revocation needs headroom
        # beyond the plain max_slaves - initial gap.
        headroom = 0
        if self.controller is not None:
            headroom = max(0, scale.max_slaves - initial)
            if self.revocation is not None:
                headroom += scale.max_slaves
        self._spare: list[tuple] = []  # (slave, gate), provisioned FIFO
        for i in range(headroom):
            slave = make_slave(next_worker_id + i)
            slave.lease = self.lease
            self._spare.append((slave, env.event()))
        self.next_worker_id = next_worker_id + headroom

    @property
    def dollars_spent(self) -> float:
        return self.controller.dollars_spent if self.controller else 0.0

    # -- wiring ---------------------------------------------------------------

    def admit(self, slave) -> None:
        """Register a static cloud slave as revocable/retirable."""
        slave.lease = self.lease
        self._members.append(slave)

    def launch(self) -> list:
        """Processes for the cluster's ``all_of`` barrier.

        Returns one gated wrapper per pre-built dynamic slave and starts
        the provisioner (a free-running process, deliberately *outside*
        the barrier so sampling cadence never stretches the makespan).
        """
        procs = [
            self.env.process(
                self._gated(slave, gate), name=f"burst:{slave.worker_id}"
            )
            for slave, gate in self._spare
        ]
        if self.controller is not None:
            self.env.process(
                self._provisioner(), name=f"provisioner:{self.master.name}"
            )
        return procs

    # -- the lease: retirement and revocation at job boundaries ---------------

    def lease(self, worker_id: int, jobs_seen: int) -> bool:
        if worker_id in self._gone:
            return False
        if worker_id in self._retiring:
            self._retiring.discard(worker_id)
            self._gone.add(worker_id)
            self.slaves_removed += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, "scale_down", cluster=self.master.name,
                    worker=worker_id, detail="slave retired",
                )
            return False
        if (
            self.revocation is not None
            and self.revocation.draw(worker_id, jobs_seen)
            and self._fleet > 1  # floor: the last slave always survives
        ):
            self._fleet -= 1
            self._gone.add(worker_id)
            self.slaves_revoked += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, "revocation", cluster=self.master.name,
                    worker=worker_id,
                    detail=f"spot instance revoked after {jobs_seen} jobs",
                )
            return False
        return True

    # -- processes -------------------------------------------------------------

    def _gated(self, slave, gate):
        yield self.env.any_of([gate, self._closed])
        if not gate.triggered or slave.worker_id in self._cancelled:
            return
        yield from slave.run()

    def _provision(self, slave, gate):
        delay = (
            self.revocation.provision_seconds
            if self.revocation is not None
            else 0.0
        )
        yield self.env.timeout(delay)
        if self.master.done:
            # The run ended while the instance was booting: money already
            # accrued for the order, but the slave never joins.
            self._cancelled.add(slave.worker_id)
            return
        self.slaves_added += 1
        self._members.append(slave)
        self.started.append(slave)
        if self.trace is not None:
            self.trace.record(
                self.env.now, "provision", cluster=self.master.name,
                worker=slave.worker_id, detail="slave attached",
            )
        gate.succeed()

    def _active_ids(self) -> list[int]:
        return [
            s.worker_id
            for s in self._members
            if s.worker_id not in self._gone and s.worker_id not in self._retiring
        ]

    def close(self) -> None:
        """Release every never-provisioned gate; no capacity after this."""
        if not self._closed.triggered:
            self._closed.succeed()

    def finalize(self, now: float) -> None:
        """Shut the cost ledger at the cluster's drain time."""
        if self.controller is not None:
            self.controller.finalize(now, self._fleet)

    def _provisioner(self):
        env = self.env
        controller = self.controller
        while True:
            yield env.timeout(self.scale.interval)
            if self._closed.triggered or self.master.done:
                break
            sample = _derive(self.probe(), env.now)
            decision = controller.observe(sample, self._fleet)
            if decision.action == "add":
                for _ in range(decision.count):
                    if not self._spare:
                        break  # dynamic pool exhausted
                    slave, gate = self._spare.pop(0)
                    self._fleet += 1
                    if self.trace is not None:
                        self.trace.record(
                            env.now, "scale_up", cluster=self.master.name,
                            worker=slave.worker_id,
                            detail=f"+1: {decision.reason}",
                        )
                    env.process(
                        self._provision(slave, gate),
                        name=f"provision:{slave.worker_id}",
                    )
            elif decision.action == "remove":
                count = min(decision.count, max(0, self._fleet - 1))
                victims = sorted(self._active_ids(), reverse=True)[:count]
                for worker_id in victims:
                    self._retiring.add(worker_id)
                    self._fleet -= 1
