"""Seeded spot/transient-instance revocation for cloud slaves.

Cloud providers reclaim spot capacity with little warning; a framework
that bursts onto spot instances must treat "my slave vanished mid-job"
as a normal event, not a disaster. This module models that: a
:class:`RevocationSpec` says how often instances vanish (and how long a
replacement takes to provision), and a :class:`SpotRevoker` turns the
spec into a per-slave fault hook whose randomness is fully seeded — a
given spec produces the same revocation schedule for the same job
sequence, so chaos tests can assert exact accounting.

Recovery is deliberately *not* implemented here: a revoked slave raises
:class:`~repro.errors.SpotRevocation` (a :class:`~repro.errors.WorkerFailure`),
and the existing master re-execution path requeues everything the victim
touched. Results stay bit-identical; only the telemetry distinguishes
``slaves_revoked`` from ``slaves_failed``.

A spec is buildable from a compact text grammar so the CLI can take
``--revoke`` on the command line::

    rate=0.05            each cloud slave rolls a 5% die per job taken
    seed=7               reseed the revocation schedule
    provision=30         replacement capacity takes 30 s to come up

Clauses are comma-separated, mirroring ``FaultSpec.parse``.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from ..errors import ConfigurationError, SpotRevocation
from ..obs.events import EventLog

__all__ = ["RevocationSpec", "SpotRevoker"]


@dataclass(frozen=True)
class RevocationSpec:
    """How often cloud instances vanish, and how slowly they come back.

    ``rate`` is the per-job probability that the slave taking the job is
    revoked (the draw happens at the job boundary, before any bytes are
    fetched, so the in-flight job requeues losslessly). ``provision_seconds``
    is the delay between an autoscaler's scale-up decision and the new
    slave actually joining — both substrates model it identically.
    """

    rate: float = 0.0
    seed: int = 2011
    provision_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"revocation rate must be in [0, 1], got {self.rate}"
            )
        if self.provision_seconds < 0:
            raise ConfigurationError("provision_seconds cannot be negative")

    @classmethod
    def parse(cls, text: str) -> "RevocationSpec":
        """Build a spec from the ``--revoke`` grammar (see module docs)."""
        fields: dict = {}
        for clause in filter(None, (c.strip() for c in text.split(","))):
            if "=" not in clause:
                raise ConfigurationError(
                    f"revocation clause {clause!r}: expected key=value"
                )
            key, _, value = clause.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "rate":
                try:
                    fields["rate"] = float(value)
                except ValueError:
                    raise ConfigurationError(
                        f"revocation clause {clause!r}: bad rate {value!r}"
                    ) from None
            elif key == "seed":
                try:
                    fields["seed"] = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"revocation clause {clause!r}: seed must be an integer"
                    ) from None
            elif key == "provision":
                try:
                    fields["provision_seconds"] = float(value)
                except ValueError:
                    raise ConfigurationError(
                        f"revocation clause {clause!r}: bad seconds {value!r}"
                    ) from None
            else:
                raise ConfigurationError(
                    f"unknown revocation clause {key!r} "
                    "(known: rate, seed, provision)"
                )
        return cls(**fields)

    @property
    def active(self) -> bool:
        return self.rate > 0

    def describe(self) -> str:
        parts = [f"rate={self.rate:g}", f"seed={self.seed}"]
        if self.provision_seconds:
            parts.append(f"provision={self.provision_seconds:g}")
        return ",".join(parts)

    def draw(self, slave_id: int, job_index: int) -> bool:
        """Deterministic per-(slave, job-ordinal) revocation roll.

        Used by the simulators, where there is no shared hook state: the
        schedule must be a pure function of the spec and the slave's own
        job sequence, never of thread interleaving.
        """
        if self.rate <= 0:
            return False
        rng = random.Random((self.seed * 1_000_003) ^ (slave_id << 17) ^ job_index)
        return rng.random() < self.rate


class SpotRevoker:
    """Turns a :class:`RevocationSpec` into a runtime fault hook.

    One instance serves every cloud slave of a run. Each slave gets its
    own RNG seeded from ``(spec.seed, slave_id)``, so the schedule is
    deterministic regardless of how the scheduler interleaves threads.
    The revoker keeps a floor of one surviving cloud slave per run —
    revoking the last one would leave the cloud master with no workers
    and turn a recoverable event into "every slave failed".
    """

    def __init__(self, spec: RevocationSpec, *, trace: EventLog | None = None) -> None:
        self.spec = spec
        self.trace = trace
        self.revoked = 0
        self._lock = threading.Lock()
        self._jobs_seen: dict[int, int] = {}
        self._active: set[int] = set()

    def admit(self, slave_id: int) -> None:
        """Register a cloud slave as revocable (idempotent)."""
        with self._lock:
            self._active.add(slave_id)

    def retire(self, slave_id: int) -> None:
        """A slave left cleanly (scale-down); stop tracking it."""
        with self._lock:
            self._active.discard(slave_id)

    def hook(self, slave_id: int, job) -> None:
        """Per-job fault hook: roll the revocation die for this slave."""
        if not self.spec.active:
            return
        with self._lock:
            if slave_id not in self._active:
                return
            ordinal = self._jobs_seen.get(slave_id, 0)
            self._jobs_seen[slave_id] = ordinal + 1
            if not self.spec.draw(slave_id, ordinal):
                return
            if len(self._active) <= 1:
                # Floor: never revoke the last surviving cloud slave.
                return
            self._active.discard(slave_id)
            self.revoked += 1
        if self.trace is not None:
            self.trace.emit(
                "revocation",
                worker=slave_id,
                detail=f"spot instance revoked holding job {job.job_id}",
            )
        raise SpotRevocation(
            f"spot instance for slave {slave_id} revoked (job {job.job_id})"
        )
