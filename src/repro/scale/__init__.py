"""Elastic cloud bursting: autoscaling and spot revocation.

The paper bursts to a *fixed* set of EC2 slaves. This package makes the
burst dynamic: a pure :class:`Autoscaler` watches the
:class:`~repro.obs.live.RunMonitor` sample stream plus
:mod:`repro.bench.cost` prices and sizes the cloud fleet mid-run to hit
a deadline or a dollar budget, while a seeded :class:`SpotRevoker`
models instances vanishing mid-job (recovery rides the resilience and
master re-execution paths — results stay bit-identical).

Enable via ``RunConfig(scale=ScaleOptions(autoscale=True, deadline=...,
budget=..., revocation="rate=0.05"))`` or ``repro run --autoscale``.
See ``docs/SCALING.md`` for the control law and its invariants.
"""

from .controller import Autoscaler, ScaleDecision
from .revocation import RevocationSpec, SpotRevoker

__all__ = ["Autoscaler", "ScaleDecision", "RevocationSpec", "SpotRevoker"]
