"""The deadline/budget autoscaling controller.

:class:`Autoscaler` is a *pure* controller: it consumes the
:class:`~repro.obs.live.RunSample` stream (pool depth, utilization,
completion-rate ETA) plus the current cloud-fleet size, accrues dollars
from :mod:`repro.bench.cost` prices, and answers with a
:class:`ScaleDecision`. It never touches threads, clocks, or sockets —
time is whatever ``sample.time`` says. That one property is what makes
the whole subsystem testable on a :class:`~repro.clock.FakeClock` with
zero real seconds slept, and lets the threaded runtime and both
discrete-event simulators share the *same* controller byte-for-byte.

Control law (walked in ``docs/SCALING.md``):

* **Budget is a hard gate.** A scale-up must fit the projected
  end-of-run spend (current spend + fleet-to-come x price x ETA, padded
  by a safety factor); once actual spend crosses the high-water mark the
  controller sheds toward ``min_slaves`` regardless of any deadline.
* **Deadline is pressure.** When the ETA overshoots the time remaining,
  add capacity (budget permitting); when the run is comfortably ahead,
  release it and stop paying.
* **Damping kills oscillation.** A decision that *reverses direction*
  within ``damping`` seconds of the previous action is suppressed, so
  the fleet ratchets instead of thrashing.
* **Bounds always win.** The fleet is clamped to
  ``[min_slaves, max_slaves]``; bound repairs bypass damping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["ScaleDecision", "Autoscaler"]

#: Projection pad on scale-up affordability: the ETA is a run-average
#: estimate, so commit new spend only when it fits with room to spare.
SAFETY = 1.25

#: Fraction of the budget at which the controller sheds to the floor.
HIGH_WATER = 0.9


@dataclass(frozen=True)
class ScaleDecision:
    """One controller verdict: do nothing, or add/remove ``count`` slaves."""

    action: str  # "none" | "add" | "remove"
    count: int = 0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.action not in ("none", "add", "remove"):
            raise ConfigurationError(f"unknown scale action {self.action!r}")
        if self.action == "none" and self.count:
            raise ConfigurationError("a 'none' decision cannot carry a count")
        if self.action != "none" and self.count <= 0:
            raise ConfigurationError(f"{self.action} needs a positive count")


@dataclass
class Autoscaler:
    """Pure sample-driven controller for the cloud fleet size.

    Feed it every :class:`~repro.obs.live.RunSample` (in time order)
    together with the current number of cloud slaves via
    :meth:`observe`; apply the returned decision. ``dollars_spent``
    integrates fleet-seconds at ``dollars_per_slave_hour`` between
    observations, so cost accounting works identically on wall time and
    on virtual time.
    """

    min_slaves: int = 1
    max_slaves: int = 8
    deadline: float | None = None
    budget: float | None = None
    dollars_per_slave_hour: float = 0.17
    damping: float = 1.0

    dollars_spent: float = 0.0
    decisions: list[tuple[float, ScaleDecision]] = field(default_factory=list)
    _last_time: float | None = field(default=None, repr=False)
    _last_action: str = field(default="none", repr=False)
    _last_action_time: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.min_slaves < 1:
            raise ConfigurationError("min_slaves must be >= 1")
        if self.max_slaves < self.min_slaves:
            raise ConfigurationError("max_slaves must be >= min_slaves")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError("deadline must be positive")
        if self.budget is not None and self.budget <= 0:
            raise ConfigurationError("budget must be positive")
        if self.dollars_per_slave_hour < 0:
            raise ConfigurationError("dollars_per_slave_hour cannot be negative")
        if self.damping < 0:
            raise ConfigurationError("damping cannot be negative")

    # -- cost accounting -----------------------------------------------------

    def _accrue(self, now: float, cloud_slaves: int) -> None:
        if self._last_time is not None and now > self._last_time:
            self.dollars_spent += (
                cloud_slaves
                * self.dollars_per_slave_hour
                / 3600.0
                * (now - self._last_time)
            )
        if self._last_time is None or now > self._last_time:
            self._last_time = now

    def finalize(self, now: float, cloud_slaves: int) -> float:
        """Close the ledger: accrue the final partial interval's spend.

        The runtime's closing monitor sample does this implicitly; the
        simulators call it once their cluster runs dry. Returns the total.
        """
        self._accrue(now, cloud_slaves)
        return self.dollars_spent

    def projected_spend(self, fleet: int, eta: float) -> float:
        """Spend at completion if ``fleet`` slaves run for ``eta`` more."""
        return self.dollars_spent + fleet * self.dollars_per_slave_hour / 3600.0 * eta

    def _affordable(self, fleet: int, eta: float) -> bool:
        if self.budget is None:
            return True
        return self.projected_spend(fleet, eta) * SAFETY <= self.budget

    # -- the control law -----------------------------------------------------

    def observe(self, sample, cloud_slaves: int) -> ScaleDecision:
        """Accrue cost for the elapsed interval and decide the next move.

        ``sample`` needs the :class:`~repro.obs.live.RunSample` fields
        ``time``/``jobs_total``/``jobs_done``/``pool_depth``/
        ``eta_seconds`` and the ``utilization`` property; anything
        shaped like one works.
        """
        self._accrue(sample.time, cloud_slaves)
        decision = self._decide(sample, cloud_slaves)
        if decision.action != "none":
            self._last_action = decision.action
            self._last_action_time = sample.time
        self.decisions.append((sample.time, decision))
        return decision

    def _damped(self, now: float, action: str) -> bool:
        """True when ``action`` would reverse direction inside the window."""
        return (
            self._last_action_time is not None
            and self._last_action not in ("none", action)
            and now - self._last_action_time < self.damping
        )

    def _decide(self, sample, cloud: int) -> ScaleDecision:
        # Bound repairs are unconditional: a fleet outside
        # [min_slaves, max_slaves] (revocation can push it below) is
        # fixed immediately, damping or not.
        if cloud < self.min_slaves:
            return ScaleDecision(
                "add", self.min_slaves - cloud, "fleet below min_slaves floor"
            )
        if cloud > self.max_slaves:
            return ScaleDecision(
                "remove", cloud - self.max_slaves, "fleet above max_slaves cap"
            )

        remaining_jobs = sample.jobs_total - sample.jobs_done
        if remaining_jobs <= 0:
            return ScaleDecision("none", 0, "run complete")
        eta = sample.eta_seconds
        if eta is None:
            return ScaleDecision("none", 0, "no completion-rate signal yet")

        # Budget high-water latch: shed to the floor before the cap hits.
        if self.budget is not None:
            over = self.dollars_spent >= HIGH_WATER * self.budget
            unaffordable = self.projected_spend(cloud, eta) > self.budget
            if (over or unaffordable) and cloud > self.min_slaves:
                if self._damped(sample.time, "remove"):
                    return ScaleDecision("none", 0, "budget shed damped")
                return ScaleDecision(
                    "remove",
                    cloud - self.min_slaves,
                    f"spend ${self.dollars_spent:.4f} nearing budget "
                    f"${self.budget:.4f}: pegging to floor",
                )

        if self.deadline is not None:
            remaining = self.deadline - sample.time
            if eta > max(remaining, 0.0):
                if (
                    cloud < self.max_slaves
                    and sample.pool_depth + sample.in_flight > cloud
                    and self._affordable(cloud + 1, eta)
                    and not self._damped(sample.time, "add")
                ):
                    return ScaleDecision(
                        "add",
                        1,
                        f"eta {eta:.1f}s misses deadline "
                        f"({max(remaining, 0.0):.1f}s left)",
                    )
                return ScaleDecision("none", 0, "deadline pressure, cannot add")
            if eta < 0.5 * remaining and cloud > self.min_slaves:
                if self._damped(sample.time, "remove"):
                    return ScaleDecision("none", 0, "release damped")
                return ScaleDecision(
                    "remove", 1, f"eta {eta:.1f}s well inside {remaining:.1f}s left"
                )
            return ScaleDecision("none", 0, "on track for deadline")

        if self.budget is not None:
            # Budget-only mode: buy throughput while the backlog and the
            # projection both say it is worth it.
            if (
                sample.pool_depth > 0
                and cloud < self.max_slaves
                and self._affordable(cloud + 1, eta)
                and not self._damped(sample.time, "add")
            ):
                return ScaleDecision("add", 1, "backlog with budget headroom")
            return ScaleDecision("none", 0, "budget steady")

        # Pure load mode (no deadline, no budget): track the backlog.
        if (
            sample.pool_depth > 0
            and sample.utilization >= 0.9
            and cloud < self.max_slaves
            and not self._damped(sample.time, "add")
        ):
            return ScaleDecision("add", 1, "backlog at full utilization")
        if (
            sample.pool_depth == 0
            and sample.utilization < 0.5
            and cloud > self.min_slaves
            and not self._damped(sample.time, "remove")
        ):
            return ScaleDecision("remove", 1, "idle cloud capacity")
        return ScaleDecision("none", 0, "steady")
