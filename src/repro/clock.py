"""Injectable clocks: real time for production, virtual time for tests.

Every component that keeps time — the retry loop's backoff, the hedged
fetch's straggler race, the telemetry stopwatches — reads it through an
injected clock instead of calling :mod:`time` directly. Production code
never notices (:data:`SYSTEM_CLOCK` delegates straight through), but the
test suite can substitute a :class:`FakeClock` and assert on retries,
hedges and timeouts without a single real ``sleep`` in any assertion.

The contract a clock provides:

* ``monotonic()`` — the current time (seconds, arbitrary origin);
* ``sleep(seconds)`` — block the calling thread for that long;
* ``spawn(target, name=...)`` — launch a daemon worker thread, so a
  virtual clock knows which threads it is coordinating;
* ``wait(q, timeout)`` — a ``queue`` rendezvous: return the next item or
  raise :class:`queue.Empty` once ``timeout`` has elapsed *on this clock*.

:class:`FakeClock` implements virtual time with one rule: the thread
driving the test owns the clock, and virtual time only advances when every
spawned worker is parked in :meth:`FakeClock.sleep`. A worker that is
actually computing gets real scheduler time (a tiny poll, liveness only —
no assertion ever depends on it); a worker parked at a virtual deadline is
woken exactly when the owner's ``wait``/``sleep``/``advance`` moves the
clock past it. That makes straggler races deterministic: the straggling
request *cannot* deliver before the hedge threshold, because its wake-up
time is a number, not a scheduler coincidence.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable

from .errors import ReproError

__all__ = ["SystemClock", "SYSTEM_CLOCK", "FakeClock"]


class SystemClock:
    """The real thing: thin delegation to :mod:`time`/:mod:`threading`."""

    monotonic = staticmethod(time.monotonic)
    sleep = staticmethod(time.sleep)

    def wait(self, q: "queue.SimpleQueue[Any]", timeout: float | None) -> Any:
        return q.get(timeout=timeout)

    def spawn(
        self, target: Callable[[], None], *, name: str = "clock-worker"
    ) -> threading.Thread:
        thread = threading.Thread(target=target, daemon=True, name=name)
        thread.start()
        return thread


#: Shared default instance — stateless, safe to share everywhere.
SYSTEM_CLOCK = SystemClock()


class FakeClock:
    """Deterministic virtual clock for multi-threaded timing tests.

    The constructing (owner) thread drives time: its ``sleep`` advances the
    clock immediately, and its ``wait`` advances the clock whenever every
    spawned worker is parked at a virtual deadline. Worker threads (those
    launched through :meth:`spawn`) park in ``sleep`` until the owner moves
    time past their deadline.

    ``close()`` releases any still-parked workers (abandoned stragglers)
    so a test never leaks a blocked thread past its scope.
    """

    def __init__(self, start: float = 0.0, *, poll: float = 0.0005) -> None:
        self._now = start
        self._cond = threading.Condition()
        #: Spawned worker threads still running.
        self._workers: set[threading.Thread] = set()
        #: Worker thread -> virtual deadline it is parked until.
        self._sleepers: dict[threading.Thread, float] = {}
        self._closed = False
        #: Real-time yield between liveness polls while a worker computes.
        self._poll = poll

    # -- clock interface ----------------------------------------------------

    def monotonic(self) -> float:
        with self._cond:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        me = threading.current_thread()
        with self._cond:
            if me not in self._workers:
                # The owner thread's sleeps (e.g. retry backoff) advance
                # virtual time directly — nobody else will.
                self._advance_locked(self._now + seconds)
                return
            deadline = self._now + seconds
            self._sleepers[me] = deadline
            self._cond.notify_all()
            while not self._closed and self._now < deadline:
                self._cond.wait()
            self._sleepers.pop(me, None)
            self._cond.notify_all()

    def spawn(
        self, target: Callable[[], None], *, name: str = "fake-clock-worker"
    ) -> threading.Thread:
        def tracked() -> None:
            try:
                target()
            finally:
                with self._cond:
                    self._workers.discard(threading.current_thread())
                    self._cond.notify_all()

        thread = threading.Thread(target=tracked, daemon=True, name=name)
        with self._cond:
            self._workers.add(thread)
        thread.start()
        return thread

    def wait(self, q: "queue.SimpleQueue[Any]", timeout: float | None) -> Any:
        deadline = None if timeout is None else self.monotonic() + timeout
        while True:
            try:
                return q.get_nowait()
            except queue.Empty:
                pass
            advanced = False
            with self._cond:
                # A worker counts as parked only while its deadline is
                # still ahead; one just woken (deadline reached but not yet
                # resumed) is treated as busy so we give it real time to
                # deliver before judging the queue empty again.
                parked = [d for t, d in self._sleepers.items() if d > self._now]
                busy = len(self._workers) - len(parked)
                if busy == 0:
                    wake = min(parked, default=None)
                    if deadline is not None and (wake is None or wake >= deadline):
                        self._advance_locked(deadline)
                        raise queue.Empty
                    if wake is not None:
                        self._advance_locked(wake)
                        advanced = True
                    elif deadline is None:
                        raise ReproError(
                            "FakeClock.wait would block forever: no worker "
                            "is running or parked, and no timeout was given"
                        )
            if not advanced:
                time.sleep(self._poll)

    # -- test helpers -------------------------------------------------------

    def advance(self, seconds: float) -> None:
        """Move virtual time forward, waking workers whose deadlines pass."""
        if seconds < 0:
            raise ReproError("cannot advance a clock backwards")
        with self._cond:
            self._advance_locked(self._now + seconds)

    def close(self) -> None:
        """Release every parked worker (their sleeps return immediately)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __enter__(self) -> "FakeClock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _advance_locked(self, target: float) -> None:
        if target > self._now:
            self._now = target
            self._cond.notify_all()
