"""Validated configuration objects shared by the runtime and the simulator.

The configuration layer mirrors the knobs the paper exposes:

* the dataset shape (Section III-B *Data Organization*: files, chunks,
  units) — :class:`DatasetSpec`;
* the placement of data between the local cluster and cloud storage
  (Section IV-B's ``env-*`` configurations) — :class:`PlacementSpec`;
* the compute split between the two sites — :class:`ComputeSpec`;
* middleware tunables (job-group size, pool low-water mark, retrieval
  threads) — :class:`MiddlewareTuning`;
* the whole experiment — :class:`ExperimentConfig`.

All specs are frozen dataclasses validated in ``__post_init__`` so that an
invalid experiment fails at construction, not mid-run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .errors import ConfigurationError
from .units import GB, MB

__all__ = [
    "LOCAL_SITE",
    "CLOUD_SITE",
    "DatasetSpec",
    "PlacementSpec",
    "ComputeSpec",
    "MiddlewareTuning",
    "ExperimentConfig",
]

#: Canonical site names. The paper has exactly two sites: the campus
#: cluster ("local") and AWS ("cloud" = EC2 compute + S3 storage). The
#: architecture generalizes to more sites; these two are the ones every
#: experiment uses.
LOCAL_SITE = "local"
CLOUD_SITE = "cloud"


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class DatasetSpec:
    """Shape of a dataset in the three-granularity organization.

    The paper's datasets are 120 GB split into 32 files and 960 jobs
    (one job per 128 MB chunk). ``record_bytes`` is the size of one *data
    unit*, the atomic element (a point for knn/kmeans, an edge for
    pagerank).
    """

    total_bytes: int
    num_files: int
    chunk_bytes: int
    record_bytes: int = 8

    def __post_init__(self) -> None:
        _require(self.total_bytes > 0, "dataset total_bytes must be positive")
        _require(self.num_files > 0, "dataset num_files must be positive")
        _require(self.chunk_bytes > 0, "dataset chunk_bytes must be positive")
        _require(self.record_bytes > 0, "dataset record_bytes must be positive")
        _require(
            self.total_bytes % self.num_files == 0,
            "total_bytes must divide evenly into num_files "
            f"({self.total_bytes} / {self.num_files})",
        )
        file_bytes = self.total_bytes // self.num_files
        _require(
            file_bytes % self.chunk_bytes == 0,
            "each file must hold a whole number of chunks "
            f"(file={file_bytes} B, chunk={self.chunk_bytes} B)",
        )
        _require(
            self.chunk_bytes % self.record_bytes == 0,
            "a chunk must hold a whole number of records "
            f"(chunk={self.chunk_bytes} B, record={self.record_bytes} B)",
        )

    @property
    def file_bytes(self) -> int:
        """Size of one data file."""
        return self.total_bytes // self.num_files

    @property
    def chunks_per_file(self) -> int:
        return self.file_bytes // self.chunk_bytes

    @property
    def num_chunks(self) -> int:
        """Total chunks == total jobs (one job per chunk)."""
        return self.num_files * self.chunks_per_file

    @property
    def units_per_chunk(self) -> int:
        return self.chunk_bytes // self.record_bytes

    @property
    def total_units(self) -> int:
        return self.num_chunks * self.units_per_chunk

    @staticmethod
    def paper(record_bytes: int = 8) -> "DatasetSpec":
        """The dataset shape used throughout the paper's evaluation:
        120 GB, 32 files, 960 jobs (128 MB chunks)."""
        return DatasetSpec(
            total_bytes=120 * GB,
            num_files=32,
            chunk_bytes=128 * MB,
            record_bytes=record_bytes,
        )

    def scaled(self, factor: float) -> "DatasetSpec":
        """Return a smaller/larger dataset with the same file/chunk counts.

        Used by tests and smoke benches to shrink the paper's 120 GB shape
        to something that simulates in milliseconds while preserving the
        job structure (same number of files and chunks).
        """
        _require(factor > 0, "scale factor must be positive")
        new_chunk = max(self.record_bytes, int(self.chunk_bytes * factor))
        # Round to a whole number of records.
        new_chunk -= new_chunk % self.record_bytes
        new_chunk = max(new_chunk, self.record_bytes)
        new_total = new_chunk * self.chunks_per_file * self.num_files
        return DatasetSpec(
            total_bytes=new_total,
            num_files=self.num_files,
            chunk_bytes=new_chunk,
            record_bytes=self.record_bytes,
        )


@dataclass(frozen=True)
class PlacementSpec:
    """How the dataset's files are split between local storage and S3.

    ``local_fraction`` is the fraction of *files* hosted on the local
    storage node; the remainder live in the cloud object store. The paper's
    env-50/50, env-33/67 and env-17/83 configurations correspond to
    fractions 0.5, 1/3 and 1/6 respectively (40 GB and 20 GB of 120 GB).
    """

    local_fraction: float

    def __post_init__(self) -> None:
        _require(
            0.0 <= self.local_fraction <= 1.0,
            f"local_fraction must be in [0, 1], got {self.local_fraction}",
        )

    def local_files(self, num_files: int) -> int:
        """Number of files placed locally (rounded to nearest whole file)."""
        return int(round(self.local_fraction * num_files))

    def split(self, num_files: int) -> tuple[int, int]:
        """Return ``(local_file_count, cloud_file_count)``."""
        local = self.local_files(num_files)
        return local, num_files - local


@dataclass(frozen=True)
class ComputeSpec:
    """Cores allocated at each site.

    The paper halves aggregate compute for hybrid runs: e.g. knn uses
    (32, 0), (0, 32), (16, 16). kmeans uses 44/22 cloud cores because EC2
    cores are slower for compute-bound work.
    """

    local_cores: int
    cloud_cores: int

    def __post_init__(self) -> None:
        _require(self.local_cores >= 0, "local_cores must be >= 0")
        _require(self.cloud_cores >= 0, "cloud_cores must be >= 0")
        _require(
            self.local_cores + self.cloud_cores > 0,
            "at least one core must be allocated",
        )

    @property
    def total_cores(self) -> int:
        return self.local_cores + self.cloud_cores

    @property
    def active_sites(self) -> tuple[str, ...]:
        sites = []
        if self.local_cores > 0:
            sites.append(LOCAL_SITE)
        if self.cloud_cores > 0:
            sites.append(CLOUD_SITE)
        return tuple(sites)

    def cores_at(self, site: str) -> int:
        if site == LOCAL_SITE:
            return self.local_cores
        if site == CLOUD_SITE:
            return self.cloud_cores
        raise ConfigurationError(f"unknown site {site!r}")

    def label(self) -> str:
        """The ``(m, n)`` label used under the paper's figures."""
        return f"({self.local_cores},{self.cloud_cores})"


@dataclass(frozen=True)
class MiddlewareTuning:
    """Tunable middleware parameters.

    * ``job_group_size`` — how many consecutive jobs the head hands a
      master per request (the sequential-read optimization groups jobs
      from one file);
    * ``pool_low_water`` — a master asks the head for more jobs when its
      pool drops to this size;
    * ``retrieval_threads`` — connections each slave opens for remote
      chunk retrieval (Section III-B: "multiple retrieval threads");
    * ``units_per_group`` — data units handed to one local-reduction call
      (sized to the processing unit's cache);
    * ``consecutive_assignment`` / ``min_contention_stealing`` — ablation
      switches for the two head-scheduler heuristics;
    * ``allow_stealing`` — switch off remote-job assignment entirely
      (clusters only ever process data stored at their own site — the
      co-location constraint of classic Map-Reduce deployments that the
      paper's middleware exists to remove).
    """

    job_group_size: int = 8
    pool_low_water: int = 2
    retrieval_threads: int = 4
    units_per_group: int = 4096
    consecutive_assignment: bool = True
    min_contention_stealing: bool = True
    allow_stealing: bool = True

    def __post_init__(self) -> None:
        _require(self.job_group_size > 0, "job_group_size must be positive")
        _require(self.pool_low_water >= 0, "pool_low_water must be >= 0")
        _require(self.retrieval_threads > 0, "retrieval_threads must be positive")
        _require(self.units_per_group > 0, "units_per_group must be positive")


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete cloud-bursting experiment.

    ``name`` follows the paper's labels (``env-local``, ``env-cloud``,
    ``env-50/50``...). ``app`` is an application key registered in
    :mod:`repro.apps`.
    """

    name: str
    app: str
    dataset: DatasetSpec
    placement: PlacementSpec
    compute: ComputeSpec
    tuning: MiddlewareTuning = field(default_factory=MiddlewareTuning)
    seed: int = 2011

    def __post_init__(self) -> None:
        _require(bool(self.name), "experiment name must be non-empty")
        _require(bool(self.app), "application key must be non-empty")
        # A site with zero compute but all the data is legal (the paper's
        # env-cloud stores nothing locally); a site with compute but no
        # storage anywhere is not.
        local_files, cloud_files = self.placement.split(self.dataset.num_files)
        _require(
            local_files + cloud_files == self.dataset.num_files,
            "placement must cover every file",
        )

    @property
    def local_files(self) -> int:
        return self.placement.local_files(self.dataset.num_files)

    @property
    def cloud_files(self) -> int:
        return self.dataset.num_files - self.local_files

    def with_tuning(self, **changes: object) -> "ExperimentConfig":
        """Return a copy with some tuning knobs replaced (ablation helper)."""
        return replace(self, tuning=replace(self.tuning, **changes))

    def describe(self) -> str:
        """One-line human description, e.g. for bench harness output."""
        pct_local = self.placement.local_fraction * 100.0
        return (
            f"{self.name}: app={self.app} data={pct_local:.0f}%local/"
            f"{100 - pct_local:.0f}%cloud cores={self.compute.label()} "
            f"jobs={self.dataset.num_chunks}"
        )


def halved(compute: ComputeSpec) -> ComputeSpec:
    """Half the aggregate cores, split evenly — the paper's hybrid setup."""
    total = compute.total_cores
    half = math.ceil(total / 2)
    return ComputeSpec(local_cores=half, cloud_cores=total - half)
