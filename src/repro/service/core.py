"""The long-lived job service: many runs, many tenants, one cluster.

The paper's middleware owns the whole cluster for one reduction run.
:class:`JobService` generalizes that into a standing service: clients
``submit()`` runs and get :class:`~repro.service.RunHandle` objects back;
a weighted :class:`~repro.core.jobpool.FairShareQueue` picks the next run
to dispatch across tenants (stride scheduling — a weight-4 tenant
dispatches 4 runs per weight-1 run whenever both are backlogged, with
priorities honored within each tenant); admission control bounds
per-tenant backlog and global occupancy up front instead of letting an
overloaded service thrash.

Two execution shapes share one scheduler:

* ``workers=0`` (inline) — nothing executes until someone waits:
  ``handle.result()``, :meth:`JobService.drain` and
  :meth:`JobService.shutdown` drive queued runs on the calling thread in
  fair-share order. Fully deterministic; this is what the single-run
  :func:`repro.run` facade rides.
* ``workers=N`` (threaded) — N dispatcher threads (spawned through the
  injected :mod:`repro.clock`, so tests drive them in virtual time)
  pull from the queue and execute concurrently; each run's head/master/
  slave machinery lives inside its executor call and is joined before
  the worker takes the next run.

``drain()``/``shutdown()`` are deterministic on either clock: they loop
on the service clock (nudging a :class:`~repro.clock.FakeClock` forward
the same way :meth:`repro.obs.live.RunMonitor.stop` does), so a test can
assert "no orphaned master threads after drain" without one real sleep.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..clock import SYSTEM_CLOCK, SystemClock
from ..config import DatasetSpec
from ..core.jobpool import FairShareQueue
from ..errors import AdmissionError, ServiceError
from ..facade import RunConfig, RunResult, run_direct
from ..obs.live import RunSample
from ..options import MonitorOptions
from .handles import RunHandle, RunState, RunStatus
from .journal import ServiceJournal

__all__ = ["TenantSpec", "JobService"]

#: Executor signature: (app, dataset, config) -> RunResult.
Executor = Callable[[Any, DatasetSpec, RunConfig], RunResult]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share of the service.

    ``weight`` sets the fair-share dispatch ratio relative to other
    tenants. ``max_pending`` bounds the tenant's queued-but-undispatched
    backlog and ``max_active`` its concurrently-executing runs; ``None``
    means unbounded. Admission rejects (never silently drops) past
    ``max_pending``; ``max_active`` merely defers dispatch.
    ``max_cloud_slaves`` caps how far this tenant's autoscaled runs may
    burst: at dispatch the run's ``ScaleOptions.max_slaves`` (and, if
    needed, ``min_slaves``) is clamped down to the quota, so no tenant
    can outspend its share of the cloud however ambitious its config.
    """

    name: str
    weight: float = 1.0
    max_pending: int | None = None
    max_active: int | None = None
    max_cloud_slaves: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("tenant name cannot be empty")
        if self.weight <= 0:
            raise ServiceError(
                f"tenant {self.name!r} weight must be positive, "
                f"got {self.weight}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise ServiceError(
                f"tenant {self.name!r} max_pending must be >= 1 or None"
            )
        if self.max_active is not None and self.max_active < 1:
            raise ServiceError(
                f"tenant {self.name!r} max_active must be >= 1 or None"
            )
        if self.max_cloud_slaves is not None and self.max_cloud_slaves < 1:
            raise ServiceError(
                f"tenant {self.name!r} max_cloud_slaves must be >= 1 or None"
            )


class _Run:
    """Service-side record of one submission (internal)."""

    __slots__ = (
        "run_id", "tenant", "priority", "app", "dataset", "config",
        "state", "token", "submitted_at", "started_at", "finished_at",
        "result", "error", "samples",
    )

    def __init__(
        self,
        run_id: str,
        tenant: str,
        priority: int,
        app: Any,
        dataset: DatasetSpec,
        config: RunConfig,
        submitted_at: float,
    ) -> None:
        self.run_id = run_id
        self.tenant = tenant
        self.priority = priority
        self.app = app
        self.dataset = dataset
        self.config = config
        self.state = RunState.QUEUED
        self.token = -1
        self.submitted_at = submitted_at
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: RunResult | None = None
        self.error: BaseException | None = None
        self.samples: list[RunSample] = []


class JobService:
    """Admit, schedule, and execute many runs on one shared cluster.

    Parameters:

    * ``workers`` — dispatcher threads; ``0`` runs inline on whoever
      waits (see module docstring);
    * ``capacity`` — global bound on queued + running submissions;
      admission past it raises :class:`~repro.errors.AdmissionError`;
    * ``clock`` — time source for timestamps, waits, and worker spawning;
      pass a :class:`~repro.clock.FakeClock` to drive everything in
      virtual time;
    * ``executor`` — what actually runs a submission; defaults to
      :func:`repro.facade.run_direct` (tests inject stubs to model
      long-running work without real compute);
    * ``journal`` — optional path for a JSON state file: every
      transition is persisted and cross-process cancel requests
      (``repro cancel``) are honored at dispatch time.

    Tenants are declared with :meth:`register`; submitting under an
    unknown tenant auto-registers it at weight 1 with no quotas, so the
    single-tenant path needs zero ceremony.
    """

    #: Virtual seconds a FakeClock nudge advances per wait iteration, and
    #: the threaded workers' idle-poll period on that clock.
    _VIRTUAL_POLL = 0.05
    #: Real seconds a SystemClock worker idles before rechecking the queue
    #: (submissions wake it immediately through the condition).
    _REAL_POLL = 0.05

    def __init__(
        self,
        workers: int = 0,
        *,
        capacity: int | None = None,
        clock: Any = SYSTEM_CLOCK,
        executor: Executor = run_direct,
        journal: str | None = None,
        name: str = "repro-service",
    ) -> None:
        if workers < 0:
            raise ServiceError("workers cannot be negative")
        if capacity is not None and capacity < 1:
            raise ServiceError("capacity must be >= 1 or None")
        self.name = name
        self.capacity = capacity
        self._clock = clock
        self._executor = executor
        self._queue = FairShareQueue()
        self._tenants: dict[str, TenantSpec] = {}
        self._runs: dict[str, _Run] = {}
        self._active: dict[str, int] = {}
        self._pending = 0  # queued, not yet dispatched
        self._running = 0
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._ids = itertools.count(1)
        self._draining = False
        self._stopped = False
        self._journal = ServiceJournal(journal) if journal else None
        self._threads: list[threading.Thread] = []
        self._workers = workers
        for i in range(workers):
            self._threads.append(
                self._clock.spawn(
                    self._worker_loop, name=f"service-worker:{name}:{i}"
                )
            )

    # -- tenancy -----------------------------------------------------------

    def register(self, tenant: TenantSpec) -> None:
        """Declare (or re-weight) a tenant. Idempotent per name."""
        with self._lock:
            self._tenants[tenant.name] = tenant
            self._queue.register(tenant.name, tenant.weight)
            self._active.setdefault(tenant.name, 0)

    def tenants(self) -> tuple[TenantSpec, ...]:
        with self._lock:
            return tuple(self._tenants.values())

    # -- submission --------------------------------------------------------

    def submit(
        self,
        app: Any,
        dataset: DatasetSpec,
        config: RunConfig | None = None,
        *,
        tenant: str = "default",
        priority: int = 0,
        validate: bool = True,
    ) -> RunHandle:
        """Admit one run; returns its handle immediately.

        ``priority`` orders runs *within* the tenant (higher first);
        fairness across tenants is by registered weight. ``validate``
        runs :meth:`RunConfig.validate` up front so a conflicting config
        is the submitter's exception, not a worker-side failure ten
        minutes later (the legacy-permissive :func:`repro.run` wrapper
        passes ``False``).
        """
        config = config or RunConfig()
        if validate:
            config.validate()
        with self._cond:
            if self._stopped or self._draining:
                raise ServiceError(
                    f"service {self.name!r} is "
                    f"{'stopped' if self._stopped else 'draining'}; "
                    f"no new submissions"
                )
            spec = self._tenants.get(tenant)
            if spec is None:
                spec = TenantSpec(tenant)
                self._tenants[tenant] = spec
                self._queue.register(tenant, spec.weight)
                self._active.setdefault(tenant, 0)
            if (
                spec.max_pending is not None
                and self._queue.backlog(tenant) >= spec.max_pending
            ):
                raise AdmissionError(
                    f"tenant {tenant!r} already has {spec.max_pending} "
                    f"runs pending (max_pending); resubmit after some "
                    f"complete"
                )
            if (
                self.capacity is not None
                and self._pending + self._running >= self.capacity
            ):
                raise AdmissionError(
                    f"service {self.name!r} is at capacity "
                    f"({self.capacity} runs queued or running)"
                )
            run = _Run(
                run_id=f"run-{next(self._ids):05d}",
                tenant=tenant,
                priority=priority,
                app=app,
                dataset=dataset,
                config=config,
                submitted_at=self._clock.monotonic(),
            )
            run.token = self._queue.push(tenant, run, priority=priority)
            self._runs[run.run_id] = run
            self._pending += 1
            self._journal_sync()
            self._cond.notify_all()
        self._nudge()
        return RunHandle(self, run)

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: float | None = None) -> None:
        """Refuse new submissions and wait until every admitted run is
        terminal. Inline services execute the backlog right here, on the
        calling thread; threaded services wait for their workers (in
        virtual time under a FakeClock)."""
        with self._lock:
            self._draining = True
        deadline = (
            None if timeout is None else self._clock.monotonic() + timeout
        )
        while not self._quiet():
            if deadline is not None and self._clock.monotonic() >= deadline:
                raise ServiceError(
                    f"drain timed out after {timeout}s with "
                    f"{self._pending} queued and {self._running} running"
                )
            self._pump(None)

    def shutdown(self, *, cancel_pending: bool = False) -> None:
        """Drain (or cancel the backlog) and stop every worker thread.

        Idempotent. With ``cancel_pending`` the queued backlog is
        cancelled instead of executed; runs already dispatched always
        finish — the service never kills a live cluster's threads.
        """
        with self._lock:
            if self._stopped:
                return
            self._draining = True
            if cancel_pending:
                for run in list(self._runs.values()):
                    if run.state is RunState.QUEUED:
                        self._cancel_locked(run)
        self.drain()
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        for thread in self._threads:
            while thread.is_alive():
                self._nudge()
                thread.join(timeout=0.01)
        self._threads.clear()
        with self._lock:
            self._journal_sync()

    def close(self) -> None:
        """Alias for :meth:`shutdown` (drains first)."""
        self.shutdown()

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- introspection -----------------------------------------------------

    def stats(self) -> Mapping[str, Any]:
        """Service-level snapshot: occupancy plus per-tenant counters."""
        with self._lock:
            per_tenant = {
                name: {
                    "weight": spec.weight,
                    "queued": self._queue.backlog(name),
                    "active": self._active.get(name, 0),
                    "dispatched": self._queue.dispatched.get(name, 0),
                    "submitted": self._queue.pushed.get(name, 0),
                }
                for name, spec in self._tenants.items()
            }
            return {
                "queued": self._pending,
                "running": self._running,
                "total_runs": len(self._runs),
                "draining": self._draining,
                "stopped": self._stopped,
                "tenants": per_tenant,
            }

    def handle(self, run_id: str) -> RunHandle:
        """Re-acquire the handle for a known run id."""
        with self._lock:
            run = self._runs.get(run_id)
        if run is None:
            raise ServiceError(f"unknown run id {run_id!r}")
        return RunHandle(self, run)

    # -- scheduling core ---------------------------------------------------

    def _eligible(self, tenant: str) -> bool:
        spec = self._tenants[tenant]
        if spec.max_active is None:
            return True
        return self._active[tenant] < spec.max_active

    def _take_locked(self) -> _Run | None:
        """Pick and mark the next run RUNNING; None when nothing fits."""
        while True:
            picked = self._queue.take(eligible=self._eligible)
            if picked is None:
                return None
            _, run = picked
            # Cancelled runs never come back from take(): cancel discards
            # their queue token before flipping state.
            self._pending -= 1
            if self._journal is not None and self._journal.is_cancel_requested(
                run.run_id
            ):
                self._finish_locked(run, RunState.CANCELLED)
                continue
            run.state = RunState.RUNNING
            run.started_at = self._clock.monotonic()
            self._active[run.tenant] += 1
            self._running += 1
            self._journal_sync()
            return run

    def _execute(self, run: _Run) -> None:
        """Run one submission through the executor (no locks held)."""
        try:
            result = self._executor(run.app, run.dataset, self._exec_config(run))
        except Exception as exc:  # noqa: BLE001 - report, don't kill worker
            with self._cond:
                run.error = exc
                self._finish_locked(run, RunState.FAILED, dispatched=True)
        else:
            with self._cond:
                run.result = result
                if result is not None and result.samples:
                    # Inline executors may bypass the fan-out callback
                    # (e.g. simulate mode replays from the trace).
                    run.samples = list(result.samples)
                self._finish_locked(run, RunState.DONE, dispatched=True)

    def _exec_config(self, run: _Run) -> RunConfig:
        """Per-dispatch config: clamp the tenant's cloud-burst quota and
        tee monitor samples into the handle."""
        config = run.config
        spec = self._tenants.get(run.tenant)
        quota = spec.max_cloud_slaves if spec is not None else None
        if (
            quota is not None
            and config.scale.enabled
            and config.scale.max_slaves > quota
        ):
            config = dataclasses.replace(
                config,
                scale=dataclasses.replace(
                    config.scale,
                    max_slaves=quota,
                    min_slaves=min(config.scale.min_slaves, quota),
                ),
            )
        if not config.monitor.enabled:
            return config
        user_cb = config.monitor.on_sample

        def fan_out(sample: RunSample) -> None:
            run.samples.append(sample)
            with self._cond:
                self._cond.notify_all()
            if user_cb is not None:
                user_cb(sample)

        return dataclasses.replace(
            config,
            monitor=MonitorOptions(
                interval=config.monitor.interval,
                capacity=config.monitor.capacity,
                on_sample=fan_out,
            ),
        )

    def _finish_locked(
        self, run: _Run, state: RunState, *, dispatched: bool = False
    ) -> None:
        run.state = state
        run.finished_at = self._clock.monotonic()
        if dispatched:
            self._active[run.tenant] -= 1
            self._running -= 1
        self._journal_sync()
        self._cond.notify_all()

    def _cancel(self, run: _Run) -> bool:
        with self._cond:
            return self._cancel_locked(run)

    def _cancel_locked(self, run: _Run) -> bool:
        if run.state is not RunState.QUEUED:
            return False
        self._queue.discard(run.token)
        self._pending -= 1
        self._finish_locked(run, RunState.CANCELLED)
        return True

    def _status_of(self, run: _Run) -> RunStatus:
        with self._lock:
            ahead = 0
            if run.state is RunState.QUEUED:
                # Same-tenant runs that would dispatch before this one:
                # higher priority, or equal priority submitted earlier.
                ahead = sum(
                    1
                    for other in self._runs.values()
                    if other.tenant == run.tenant
                    and other.state is RunState.QUEUED
                    and other is not run
                    and (
                        other.priority > run.priority
                        or (
                            other.priority == run.priority
                            and other.token < run.token
                        )
                    )
                )
            return RunStatus(
                run_id=run.run_id,
                tenant=run.tenant,
                state=run.state,
                priority=run.priority,
                submitted_at=run.submitted_at,
                started_at=run.started_at,
                finished_at=run.finished_at,
                queued_ahead=ahead,
                error=str(run.error) if run.error is not None else None,
            )

    # -- waiting / driving -------------------------------------------------

    def _quiet(self) -> bool:
        with self._lock:
            return self._pending == 0 and self._running == 0

    def _pump(self, run: _Run | None) -> None:
        """Make progress toward ``run`` (or toward quiescence when None).

        Inline services execute the next fair-share pick on this thread;
        threaded services wait a beat for their workers, nudging a
        virtual clock so parked workers actually wake.
        """
        if self._workers == 0:
            with self._cond:
                nxt = self._take_locked()
            if nxt is not None:
                self._execute(nxt)
            elif not self._quiet():
                # Another thread is inline-executing; yield politely.
                self._wait_beat()
            return
        self._wait_beat()

    def _wait_beat(self) -> None:
        """One bounded, clock-appropriate wait for state to change."""
        if isinstance(self._clock, SystemClock):
            with self._cond:
                self._cond.wait(timeout=self._REAL_POLL)
        else:
            # Virtual time: move the clock so parked workers wake, then
            # give them a sliver of real scheduler time to run.
            self._clock.advance(self._VIRTUAL_POLL)
            time.sleep(0.0005)

    def _nudge(self) -> None:
        """Wake idle workers after a state change (no-op inline)."""
        if self._workers == 0:
            return
        if isinstance(self._clock, SystemClock):
            with self._cond:
                self._cond.notify_all()
        else:
            self._clock.advance(self._VIRTUAL_POLL)

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                if self._stopped:
                    return
                nxt = self._take_locked()
                if nxt is None and self._draining and self._pending == 0:
                    # Nothing left to start; quit once told to stop.
                    if self._stopped:
                        return
            if nxt is not None:
                self._execute(nxt)
                continue
            if isinstance(self._clock, SystemClock):
                with self._cond:
                    if self._stopped:
                        return
                    self._cond.wait(timeout=self._REAL_POLL)
            else:
                self._clock.sleep(self._VIRTUAL_POLL)

    # -- persistence -------------------------------------------------------

    def _journal_sync(self) -> None:
        if self._journal is None:
            return
        self._journal.record(
            {
                run.run_id: {
                    "tenant": run.tenant,
                    "state": run.state.value,
                    "priority": run.priority,
                    "app": run.app if isinstance(run.app, str) else repr(run.app),
                    "submitted_at": run.submitted_at,
                    "started_at": run.started_at,
                    "finished_at": run.finished_at,
                    "error": str(run.error) if run.error else None,
                }
                for run in self._runs.values()
            }
        )
