"""Durable service state: a tiny JSON journal on disk.

A :class:`~repro.service.JobService` given ``journal="path.json"``
persists every run transition, which buys two things:

* ``repro status`` from *another process* can report the service's runs
  without any RPC machinery — it just reads the file;
* ``repro cancel RUN_ID`` from another process appends the id to the
  journal's ``cancel_requests`` list, and the service honors it at
  dispatch time (a queued run whose id shows up there is cancelled
  instead of started — in-flight runs are never preempted, matching
  :meth:`RunHandle.cancel` semantics).

Writes are atomic (temp file + ``os.replace``) so a reader never sees a
torn file. The journal is a cooperation mechanism, not a database: last
writer wins on ``runs``, and cancel requests are merged (union) on every
write so a concurrent ``repro cancel`` is never lost.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Mapping

from ..errors import ServiceError

__all__ = ["ServiceJournal"]


class ServiceJournal:
    """Atomic read/write access to one service's JSON state file."""

    def __init__(self, path: str) -> None:
        if not path:
            raise ServiceError("journal path cannot be empty")
        self.path = path

    # -- reading -----------------------------------------------------------

    def read(self) -> dict[str, Any]:
        """The journal's current contents (``{}`` when absent/empty)."""
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return {}
        except ValueError as exc:
            # Covers json.JSONDecodeError and UnicodeDecodeError alike:
            # a journal overwritten with binary garbage is reported with
            # its path, not a raw decode traceback.
            raise ServiceError(
                f"journal {self.path!r} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ServiceError(
                f"journal {self.path!r} must hold a JSON object, "
                f"got {type(data).__name__}"
            )
        return data

    def runs(self) -> dict[str, Any]:
        return dict(self.read().get("runs", {}))

    def cancel_requests(self) -> set[str]:
        return set(self.read().get("cancel_requests", []))

    def is_cancel_requested(self, run_id: str) -> bool:
        return run_id in self.cancel_requests()

    # -- writing -----------------------------------------------------------

    def record(self, runs: Mapping[str, Any]) -> None:
        """Persist the service's run table, keeping outstanding cancels.

        Cancel requests already satisfied (their run is terminal in
        ``runs``) are dropped; unknown or still-pending ids survive the
        write so a cancel filed moments before dispatch is honored.
        """
        terminal = {"done", "failed", "cancelled"}
        keep = sorted(
            run_id
            for run_id in self.cancel_requests()
            if runs.get(run_id, {}).get("state") not in terminal
        )
        self._write({"runs": dict(runs), "cancel_requests": keep})

    def request_cancel(self, run_id: str) -> None:
        """File a cross-process cancel request for ``run_id``."""
        data = self.read()
        requests = set(data.get("cancel_requests", []))
        requests.add(run_id)
        data["cancel_requests"] = sorted(requests)
        data.setdefault("runs", {})
        self._write(data)

    def _write(self, data: Mapping[str, Any]) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".journal-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(data, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
