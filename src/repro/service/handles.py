"""Run handles: the client's view of one submission.

:meth:`repro.service.JobService.submit` returns a :class:`RunHandle`
immediately — the run itself executes whenever the service's scheduler
picks it. The handle is the only client-side object: ``status()`` for a
point-in-time snapshot, ``result(timeout=)`` to block for the outcome,
``cancel()`` to withdraw a queued run, and ``stream()`` to follow the
run's :class:`~repro.obs.live.RunSample` health timeline as it lands
(requires ``config.monitor.interval > 0``; the service fans the samples
out through the PR-5 :class:`~repro.obs.live.RunMonitor` layer).

Handles stay valid after the run finishes and after the service drains —
a terminal handle answers ``status()``/``result()`` from its stored
record forever.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from ..errors import RunCancelledError, ServiceTimeoutError
from ..obs.live import RunSample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..facade import RunResult
    from .core import JobService, _Run

__all__ = ["RunState", "RunStatus", "RunHandle"]


class RunState(str, enum.Enum):
    """Lifecycle of a submission.

    ``QUEUED -> RUNNING -> DONE | FAILED``; ``QUEUED -> CANCELLED`` when a
    cancel lands before dispatch. Terminal states never change.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (RunState.DONE, RunState.FAILED, RunState.CANCELLED)


@dataclass(frozen=True)
class RunStatus:
    """Point-in-time snapshot of one run, safe to hold across time.

    ``queued_ahead`` counts runs of the *same tenant* still queued in
    front of this one (``0`` once dispatched). Timestamps are on the
    service's clock (virtual under :class:`~repro.clock.FakeClock`);
    ``started_at``/``finished_at`` are ``None`` until those transitions
    happen. ``error`` carries the failure message for ``FAILED`` runs.
    """

    run_id: str
    tenant: str
    state: RunState
    priority: int
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    queued_ahead: int
    error: str | None


class RunHandle:
    """Client-side handle for one submitted run."""

    def __init__(self, service: "JobService", run: "_Run") -> None:
        self._service = service
        self._run = run

    @property
    def run_id(self) -> str:
        return self._run.run_id

    @property
    def tenant(self) -> str:
        return self._run.tenant

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunHandle({self._run.run_id!r}, tenant={self._run.tenant!r}, "
            f"state={self._run.state.value!r})"
        )

    def status(self) -> RunStatus:
        """Snapshot the run's current state (never blocks)."""
        return self._service._status_of(self._run)

    def done(self) -> bool:
        """True once the run reached a terminal state."""
        return self._run.state.terminal

    def cancel(self) -> bool:
        """Withdraw the run if it is still queued.

        Returns ``True`` exactly once — on the call that moved the run
        from ``QUEUED`` to ``CANCELLED``. A run already dispatched keeps
        executing (the service never preempts a live cluster) and a
        terminal run is left alone, both returning ``False``; repeated
        cancels are safe.
        """
        return self._service._cancel(self._run)

    def result(self, timeout: float | None = None) -> "RunResult":
        """Block until the run finishes and return its ``RunResult``.

        On an inline service (``workers=0``) this *drives* execution on
        the calling thread, draining queued runs in fair-share order
        until this one completes. Raises :class:`RunCancelledError` for
        a cancelled run, re-raises the run's own exception for a failed
        one, and raises :class:`ServiceTimeoutError` once ``timeout``
        seconds elapse on the service clock (the run keeps executing —
        the timeout abandons the wait, not the work).
        """
        run = self._run
        deadline = (
            None
            if timeout is None
            else self._service._clock.monotonic() + timeout
        )
        while not run.state.terminal:
            if (
                deadline is not None
                and self._service._clock.monotonic() >= deadline
            ):
                raise ServiceTimeoutError(
                    f"run {run.run_id!r} still {run.state.value} after "
                    f"{timeout}s; call result() again or cancel()"
                )
            self._service._pump(run)
        if run.state is RunState.CANCELLED:
            raise RunCancelledError(f"run {run.run_id!r} was cancelled")
        if run.state is RunState.FAILED:
            assert run.error is not None
            raise run.error
        return run.result

    def stream(self) -> Iterator[RunSample]:
        """Yield the run's health samples in order, ending at completion.

        Live on a threaded service; on an inline service the run executes
        inside the first ``next()`` and the timeline replays. Yields
        nothing unless the run's config enabled monitoring
        (``monitor.interval > 0``).
        """
        run = self._run
        index = 0
        while True:
            samples = run.samples
            if index < len(samples):
                yield samples[index]
                index += 1
                continue
            if run.state.terminal:
                return
            self._service._pump(run)

    def _record(self) -> Any:
        """The service-side run record (service internals + tests only)."""
        return self._run
