"""Multi-run job service: many tenants sharing one bursting cluster.

The paper's middleware executes one reduction run at a time, owning the
whole cluster. This package turns that into a long-lived service:

.. code-block:: python

    from repro.service import JobService, TenantSpec

    with JobService(workers=4, capacity=256) as service:
        service.register(TenantSpec("analytics", weight=4))
        service.register(TenantSpec("adhoc", weight=1, max_pending=32))

        handle = service.submit("kmeans", dataset, config,
                                tenant="analytics", priority=5)
        for sample in handle.stream():     # live run-health timeline
            print(sample.pool_depth)
        result = handle.result(timeout=60)

Scheduling is weighted fair-share (stride) across tenants with
priorities within each tenant — see
:class:`~repro.core.jobpool.FairShareQueue`. Admission control bounds
per-tenant backlog (``max_pending``), per-tenant concurrency
(``max_active``), and global occupancy (``capacity``). Everything keeps
time through :mod:`repro.clock`, so the whole lifecycle — submit,
dispatch, drain, shutdown — runs deterministically in virtual time under
a :class:`~repro.clock.FakeClock` in tests.

The single-run facade :func:`repro.run` is sugar for
``JobService(workers=0).submit(...).result()`` and is equivalence-pinned
against the direct engine dispatch (:func:`repro.facade.run_direct`).
"""

from .core import JobService, TenantSpec
from .handles import RunHandle, RunState, RunStatus
from .journal import ServiceJournal

__all__ = [
    "JobService",
    "TenantSpec",
    "RunHandle",
    "RunState",
    "RunStatus",
    "ServiceJournal",
]
