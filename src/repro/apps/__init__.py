"""Evaluation applications.

Importing this package registers all bundled applications:
the paper's three (knn, kmeans, pagerank) plus wordcount and histogram.
"""

from .base import (
    AppBundle,
    AppProfile,
    available_apps,
    get_app_factory,
    get_profile,
    make_bundle,
    register_app,
)
from .histogram import HISTOGRAM_PROFILE, HistogramApp
from .kmeans import KMEANS_PROFILE, KMeansApp
from .knn import KNN_PROFILE, KnnApp
from .moments import MOMENTS_PROFILE, MomentsApp
from .pagerank import PAGERANK_PROFILE, PageRankApp
from .wordcount import WORDCOUNT_PROFILE, WordCountApp

__all__ = [
    "AppBundle",
    "AppProfile",
    "available_apps",
    "get_app_factory",
    "get_profile",
    "make_bundle",
    "register_app",
    "HISTOGRAM_PROFILE",
    "HistogramApp",
    "KMEANS_PROFILE",
    "KMeansApp",
    "KNN_PROFILE",
    "KnnApp",
    "MOMENTS_PROFILE",
    "MomentsApp",
    "PAGERANK_PROFILE",
    "PageRankApp",
    "WORDCOUNT_PROFILE",
    "WordCountApp",
]

PAPER_APPS = ("knn", "kmeans", "pagerank")
