"""k-Nearest-Neighbors search under Generalized Reduction.

The paper's first application (Section IV-A): "a classic database/data
mining algorithm. It has low computation, leading to medium to high I/O
demands and the reduction object is small. The value of k is set to 1000.
The total number of processed elements is 32.1e9."

The reduction object is a :class:`~repro.core.reduction.TopKReduction` —
the k reference points closest to the query seen so far. Local reduction
computes squared Euclidean distances for a cache-sized group of reference
points and offers only the candidates that beat the current kth-best, so
the object stays tiny (the paper's "small reduction object").
"""

from __future__ import annotations

import numpy as np

from ..core.api import GeneralizedReductionApp
from ..core.reduction import ReductionObject, TopKReduction
from ..data.generators import labeled_gaussian_points
from ..data.records import idpoint_schema
from ..units import KB
from .base import AppBundle, AppProfile, register_app

__all__ = ["KnnApp", "KNN_PROFILE"]

#: Calibration: 32.1e9 elements in 120 GB -> ~4 B records; low compute
#: (distance + compare): the env-local processing share of Fig. 3(a).
KNN_PROFILE = AppProfile(
    key="knn",
    unit_cost_local=6.0e-8,
    cloud_slowdown=1.0,
    robj_bytes=16 * KB,  # k=1000 (score, id) pairs
    record_bytes=4,
    description="k-nearest neighbors: low compute, high I/O, small robj",
)


class KnnApp(GeneralizedReductionApp):
    """Find the ``k`` reference points nearest to a fixed query point."""

    name = "knn"

    def __init__(self, query: np.ndarray, k: int = 1000) -> None:
        self.query = np.asarray(query, dtype=np.float32)
        if self.query.ndim != 1:
            raise ValueError("query must be a 1-D point")
        self.k = int(k)
        self._schema = idpoint_schema(len(self.query))

    def create_reduction_object(self) -> TopKReduction:
        return TopKReduction(self.k)

    def local_reduction(self, robj: ReductionObject, units: np.ndarray) -> None:
        assert isinstance(robj, TopKReduction)
        coords = units["coords"].astype(np.float32, copy=False)
        diffs = coords - self.query  # broadcast over the group
        dists = np.einsum("ij,ij->i", diffs, diffs).astype(np.float64)
        # Offer only candidates that can enter the current top-k: keeps the
        # merge cheap without changing the result. <= (not <) so equal-score
        # candidates still compete on the id tiebreak, keeping the outcome
        # independent of processing order.
        cutoff = robj.worst
        mask = dists <= cutoff
        if not mask.all():
            dists = dists[mask]
            ids = units["id"][mask]
        else:
            ids = units["id"]
        if len(dists):
            robj.offer(dists, np.asarray(ids, dtype=np.int64))

    def finalize(self, robj: ReductionObject) -> list[tuple[float, int]]:
        assert isinstance(robj, TopKReduction)
        return robj.value()

    def decode_chunk(self, raw: bytes) -> np.ndarray:
        return self._schema.decode(raw)


def _make_bundle(total_units: int, *, seed: int = 2011, dims: int = 4, k: int = 16, centers: int = 8) -> AppBundle:
    """Small-scale knn bundle: Gaussian reference points, query at the cube
    center, ``k`` neighbors (paper uses k=1000; tests shrink it)."""
    schema = idpoint_schema(dims)
    # The functional record is larger than the 4-byte cost-model record;
    # rebind the profile's record size so the bundle is self-consistent at
    # laptop scale (the simulator uses the paper profile directly).
    profile = AppProfile(
        key=KNN_PROFILE.key,
        unit_cost_local=KNN_PROFILE.unit_cost_local,
        cloud_slowdown=KNN_PROFILE.cloud_slowdown,
        robj_bytes=KNN_PROFILE.robj_bytes,
        record_bytes=schema.record_bytes,
        description=KNN_PROFILE.description,
    )
    query = np.full(dims, 0.5, dtype=np.float32)
    app = KnnApp(query, k=k)

    def block_fn(start: int, count: int, block_index: int) -> np.ndarray:
        return labeled_gaussian_points(
            count, dims, centers=centers, seed=seed + block_index * 9973 + start,
            id_offset=start,
        )

    return AppBundle(profile=profile, app=app, schema=schema, block_fn=block_fn)


register_app(KNN_PROFILE, _make_bundle)
