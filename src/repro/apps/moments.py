"""Streaming statistical moments — an extra example application.

Computes count, mean, variance, min, and max of a float64 stream in one
pass by accumulating raw moments (n, Σx, Σx²) plus extrema — the textbook
demonstration that any *algebraic* aggregate fits the Generalized
Reduction mold: the reduction object is a tiny
:class:`~repro.core.reduction.StructReduction`, merging is field-wise
addition/min/max, and the final statistics are derived in ``finalize``.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.api import GeneralizedReductionApp
from ..core.reduction import ArrayReduction, ReductionObject, ScalarReduction, StructReduction
from ..data.generators import mixture_values
from ..data.records import VALUE_SCHEMA
from .base import AppBundle, AppProfile, register_app

__all__ = ["MomentsApp", "MOMENTS_PROFILE"]

MOMENTS_PROFILE = AppProfile(
    key="moments",
    unit_cost_local=3.0e-8,
    cloud_slowdown=1.0,
    robj_bytes=64,
    record_bytes=8,
    description="streaming count/mean/variance/min/max: the minimal robj",
)


class MomentsApp(GeneralizedReductionApp):
    """One-pass moments over float64 samples."""

    name = "moments"

    def create_reduction_object(self) -> StructReduction:
        return StructReduction(
            {
                "sums": ArrayReduction((3,), dtype=np.float64),  # n, Σx, Σx²
                "min": ScalarReduction("min"),
                "max": ScalarReduction("max"),
            }
        )

    def local_reduction(self, robj: ReductionObject, units: np.ndarray) -> None:
        assert isinstance(robj, StructReduction)
        vals = np.asarray(units, dtype=np.float64).ravel()
        if not len(vals):
            return
        sums = robj["sums"]
        assert isinstance(sums, ArrayReduction)
        sums.data += [float(len(vals)), float(vals.sum()),
                      float((vals * vals).sum())]
        robj["min"].add(float(vals.min()))  # type: ignore[attr-defined]
        robj["max"].add(float(vals.max()))  # type: ignore[attr-defined]

    def finalize(self, robj: ReductionObject) -> dict[str, float]:
        assert isinstance(robj, StructReduction)
        n, total, squares = robj["sums"].value()
        if n == 0:
            return {"count": 0.0, "mean": math.nan, "std": math.nan,
                    "min": math.nan, "max": math.nan}
        mean = total / n
        variance = max(0.0, squares / n - mean * mean)
        return {
            "count": float(n),
            "mean": float(mean),
            "std": float(math.sqrt(variance)),
            "min": float(robj["min"].value()),
            "max": float(robj["max"].value()),
        }

    def decode_chunk(self, raw: bytes) -> np.ndarray:
        return VALUE_SCHEMA.decode(raw)


def _make_bundle(total_units: int, *, seed: int = 2011) -> AppBundle:
    app = MomentsApp()

    def block_fn(start: int, count: int, block_index: int) -> np.ndarray:
        return mixture_values(count, seed=seed + block_index * 3571 + start)

    return AppBundle(
        profile=MOMENTS_PROFILE, app=app, schema=VALUE_SCHEMA, block_fn=block_fn
    )


register_app(MOMENTS_PROFILE, _make_bundle)
