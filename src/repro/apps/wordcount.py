"""Word count — the canonical Map-Reduce example, under Generalized
Reduction.

Not part of the paper's evaluation; included as the comparison workload for
the API ablation (generalized reduction vs Map-Reduce with and without a
combiner, Section III-A's motivating discussion) and as an extra example
application. Tokens are int32 ids; the reduction object is a
:class:`~repro.core.reduction.DictReduction` with the library ``sum``
combiner.
"""

from __future__ import annotations

import numpy as np

from ..core.api import GeneralizedReductionApp
from ..core.reduction import DictReduction, ReductionObject
from ..data.generators import zipf_tokens
from ..data.records import TOKEN_SCHEMA
from ..units import KB
from .base import AppBundle, AppProfile, register_app

__all__ = ["WordCountApp", "WORDCOUNT_PROFILE"]

WORDCOUNT_PROFILE = AppProfile(
    key="wordcount",
    unit_cost_local=4.0e-8,
    cloud_slowdown=1.0,
    robj_bytes=512 * KB,
    record_bytes=4,
    description="word count: trivial compute, keyed reduction object",
)


class WordCountApp(GeneralizedReductionApp):
    """Count token-id frequencies."""

    name = "wordcount"

    def create_reduction_object(self) -> DictReduction:
        return DictReduction("sum")

    def local_reduction(self, robj: ReductionObject, units: np.ndarray) -> None:
        assert isinstance(robj, DictReduction)
        tokens = np.asarray(units).ravel()
        values, counts = np.unique(tokens, return_counts=True)
        for token, count in zip(values.tolist(), counts.tolist()):
            robj.add(int(token), int(count))

    def finalize(self, robj: ReductionObject) -> dict[int, int]:
        assert isinstance(robj, DictReduction)
        return dict(robj.value())

    def decode_chunk(self, raw: bytes) -> np.ndarray:
        return TOKEN_SCHEMA.decode(raw)


def _make_bundle(
    total_units: int, *, seed: int = 2011, vocabulary: int = 512
) -> AppBundle:
    app = WordCountApp()

    def block_fn(start: int, count: int, block_index: int) -> np.ndarray:
        return zipf_tokens(count, vocabulary, seed=seed + block_index * 6151 + start)

    return AppBundle(
        profile=WORDCOUNT_PROFILE, app=app, schema=TOKEN_SCHEMA, block_fn=block_fn
    )


register_app(WORDCOUNT_PROFILE, _make_bundle)
