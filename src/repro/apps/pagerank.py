"""PageRank under Generalized Reduction.

The paper's third application: "low to medium computation leading to high
I/O, and a very large reduction object. The number of page links is 50e6
with 9.26e8 edges." The large reduction object (~300 MB — a dense rank
accumulator over every page) is what makes PageRank the stress case for
inter-cluster global reduction in Sections IV-B and IV-C.

One execution is one power iteration over a streamed edge list: each edge
``(s, d)`` deposits ``rank[s] / outdeg[s]`` into the accumulator slot of
``d``. The final object plus the damping/dangling correction yields the
next rank vector; :meth:`PageRankApp.update` rebinds it for iterative
drivers.
"""

from __future__ import annotations

import numpy as np

from ..core.api import GeneralizedReductionApp
from ..core.reduction import ArrayReduction, ReductionObject
from ..data.generators import powerlaw_edges
from ..data.records import EDGE_SCHEMA
from .base import PAGERANK_ROBJ_BYTES, AppBundle, AppProfile, register_app

__all__ = ["PageRankApp", "PAGERANK_PROFILE"]

#: Calibration: 9.26e8 edges in 120 GB -> ~128 B/unit in the cost model
#: (the paper's format carries adjacency metadata); moderate compute per
#: edge; the ~300 MB reduction object is the headline number.
PAGERANK_PROFILE = AppProfile(
    key="pagerank",
    unit_cost_local=1.15e-5,
    cloud_slowdown=1.0,
    robj_bytes=PAGERANK_ROBJ_BYTES,
    record_bytes=128,
    description="PageRank: moderate compute, high I/O, very large robj",
)

DAMPING = 0.85


class PageRankApp(GeneralizedReductionApp):
    """One PageRank power iteration over a streamed edge list."""

    name = "pagerank"

    def __init__(
        self,
        n_pages: int,
        out_degrees: np.ndarray,
        ranks: np.ndarray | None = None,
        damping: float = DAMPING,
    ) -> None:
        if n_pages <= 0:
            raise ValueError("n_pages must be positive")
        self.n_pages = int(n_pages)
        self.out_degrees = np.asarray(out_degrees, dtype=np.int64)
        if self.out_degrees.shape != (self.n_pages,):
            raise ValueError("out_degrees must have shape (n_pages,)")
        if ranks is None:
            ranks = np.full(n_pages, 1.0 / n_pages, dtype=np.float64)
        self.ranks = np.asarray(ranks, dtype=np.float64)
        if self.ranks.shape != (self.n_pages,):
            raise ValueError("ranks must have shape (n_pages,)")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = float(damping)
        # Precompute per-page contribution; zero for dangling pages.
        self._contrib = np.zeros(self.n_pages, dtype=np.float64)
        has_out = self.out_degrees > 0
        self._contrib[has_out] = self.ranks[has_out] / self.out_degrees[has_out]

    def create_reduction_object(self) -> ArrayReduction:
        return ArrayReduction((self.n_pages,), dtype=np.float64)

    def local_reduction(self, robj: ReductionObject, units: np.ndarray) -> None:
        assert isinstance(robj, ArrayReduction)
        edges = np.asarray(units)
        src = edges[:, 0]
        dst = edges[:, 1]
        np.add.at(robj.data, dst, self._contrib[src])

    def finalize(self, robj: ReductionObject) -> np.ndarray:
        """Apply damping and dangling-mass correction to the accumulator."""
        assert isinstance(robj, ArrayReduction)
        dangling_mass = float(self.ranks[self.out_degrees == 0].sum())
        base = (1.0 - self.damping) / self.n_pages
        return base + self.damping * (robj.data + dangling_mass / self.n_pages)

    def update(self, ranks: np.ndarray) -> None:
        """Rebind the rank vector between iterations."""
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.shape != (self.n_pages,):
            raise ValueError("rank vector shape mismatch")
        self.ranks = ranks
        self._contrib = np.zeros(self.n_pages, dtype=np.float64)
        has_out = self.out_degrees > 0
        self._contrib[has_out] = self.ranks[has_out] / self.out_degrees[has_out]

    def decode_chunk(self, raw: bytes) -> np.ndarray:
        return EDGE_SCHEMA.decode(raw)


def _make_bundle(
    total_units: int, *, seed: int = 2011, n_pages: int | None = None
) -> AppBundle:
    """Small-scale pagerank bundle.

    The edge list is pre-generated (deterministically) so the out-degree
    vector the app needs is exact; ``block_fn`` then serves slices. The
    paper's page:edge ratio is ~1:18.5; we default to 1:16.
    """
    if n_pages is None:
        n_pages = max(4, total_units // 16)
    edges = powerlaw_edges(total_units, n_pages, seed=seed)
    out_degrees = np.bincount(edges[:, 0], minlength=n_pages).astype(np.int64)
    profile = AppProfile(
        key=PAGERANK_PROFILE.key,
        unit_cost_local=PAGERANK_PROFILE.unit_cost_local,
        cloud_slowdown=PAGERANK_PROFILE.cloud_slowdown,
        robj_bytes=PAGERANK_PROFILE.robj_bytes,
        record_bytes=EDGE_SCHEMA.record_bytes,
        description=PAGERANK_PROFILE.description,
    )
    app = PageRankApp(n_pages, out_degrees)

    def block_fn(start: int, count: int, block_index: int) -> np.ndarray:
        return edges[start : start + count]

    return AppBundle(
        profile=profile, app=app, schema=EDGE_SCHEMA, block_fn=block_fn
    )


register_app(PAGERANK_PROFILE, _make_bundle)
