"""Fixed-range histogram — an extra example application.

Demonstrates the dense-array reduction object at a size between knn's tiny
top-k and pagerank's ~300 MB accumulator; used by the reduction-object-size
ablation (`bench_ablation_robj`) to sweep robj size without changing the
compute profile.
"""

from __future__ import annotations

import numpy as np

from ..core.api import GeneralizedReductionApp
from ..core.reduction import ArrayReduction, ReductionObject
from ..data.generators import mixture_values
from ..data.records import VALUE_SCHEMA
from .base import AppBundle, AppProfile, register_app

__all__ = ["HistogramApp", "HISTOGRAM_PROFILE"]

HISTOGRAM_PROFILE = AppProfile(
    key="histogram",
    unit_cost_local=5.0e-8,
    cloud_slowdown=1.0,
    robj_bytes=8 * 4096,
    record_bytes=8,
    description="fixed-range histogram: trivial compute, array robj",
)


class HistogramApp(GeneralizedReductionApp):
    """Count samples into ``bins`` equal-width bins over ``[lo, hi)``.

    Out-of-range samples are clipped into the edge bins, so every unit is
    counted exactly once (the conservation property the tests check).
    """

    name = "histogram"

    def __init__(self, bins: int = 4096, lo: float = 0.0, hi: float = 1.0) -> None:
        if bins <= 0:
            raise ValueError("bins must be positive")
        if not hi > lo:
            raise ValueError("hi must exceed lo")
        self.bins = int(bins)
        self.lo = float(lo)
        self.hi = float(hi)

    def create_reduction_object(self) -> ArrayReduction:
        return ArrayReduction((self.bins,), dtype=np.int64)

    def local_reduction(self, robj: ReductionObject, units: np.ndarray) -> None:
        assert isinstance(robj, ArrayReduction)
        vals = np.asarray(units, dtype=np.float64).ravel()
        scaled = (vals - self.lo) / (self.hi - self.lo) * self.bins
        idx = np.clip(scaled.astype(np.int64), 0, self.bins - 1)
        np.add.at(robj.data, idx, 1)

    def finalize(self, robj: ReductionObject) -> np.ndarray:
        assert isinstance(robj, ArrayReduction)
        return robj.data

    def decode_chunk(self, raw: bytes) -> np.ndarray:
        return VALUE_SCHEMA.decode(raw)


def _make_bundle(total_units: int, *, seed: int = 2011, bins: int = 256) -> AppBundle:
    app = HistogramApp(bins=bins, lo=-0.5, hi=1.5)

    def block_fn(start: int, count: int, block_index: int) -> np.ndarray:
        return mixture_values(count, seed=seed + block_index * 4241 + start)

    return AppBundle(
        profile=HISTOGRAM_PROFILE, app=app, schema=VALUE_SCHEMA, block_fn=block_fn
    )


register_app(HISTOGRAM_PROFILE, _make_bundle)
