"""Application descriptors and registry.

Every evaluation application contributes two things:

* an executable :class:`~repro.core.api.GeneralizedReductionApp` (used by
  the in-process runtime and the correctness tests), and
* an :class:`AppProfile` — the cost model the discrete-event simulator
  charges per data unit, calibrated from the paper's Section IV setup
  (element counts, per-app compute intensity, reduction-object size).

The profile numbers are derived from the paper's own reporting: knn
processes 32.1e9 elements with low compute, kmeans 10.7e9 with heavy
compute (k=1000 clustering), pagerank 9.26e8 edges with a ~300 MB
reduction object. ``cloud_slowdown`` encodes the paper's observation that
22 EC2 cores matched 16 local cores for compute-bound kmeans (22/16 =
1.375) while IO-bound apps saw no per-core gap worth provisioning for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.api import GeneralizedReductionApp
from ..data.dataset import BlockFn
from ..data.records import RecordSchema
from ..errors import ConfigurationError
from ..units import MB

__all__ = [
    "AppProfile",
    "AppBundle",
    "register_app",
    "get_app_factory",
    "make_bundle",
    "available_apps",
]


@dataclass(frozen=True)
class AppProfile:
    """Simulator cost model for one application.

    * ``unit_cost_local`` — seconds of compute one data unit costs on one
      local (campus Xeon) core;
    * ``cloud_slowdown`` — multiplier on that cost for an EC2 core;
    * ``robj_bytes`` — serialized reduction-object size, charged when a
      master ships its combined object to the head (and when slaves merge
      intra-cluster);
    * ``record_bytes`` — data-unit size, which ties the 120 GB dataset to
      the paper's element counts.
    """

    key: str
    unit_cost_local: float
    cloud_slowdown: float
    robj_bytes: int
    record_bytes: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.unit_cost_local < 0:
            raise ConfigurationError("unit_cost_local cannot be negative")
        if self.cloud_slowdown < 1.0:
            raise ConfigurationError(
                "cloud_slowdown is a slowdown factor and must be >= 1"
            )
        if self.robj_bytes < 0 or self.record_bytes <= 0:
            raise ConfigurationError("robj_bytes/record_bytes out of range")

    def unit_cost(self, site: str) -> float:
        """Per-unit compute cost at a site."""
        from ..config import CLOUD_SITE

        if site == CLOUD_SITE:
            return self.unit_cost_local * self.cloud_slowdown
        return self.unit_cost_local


@dataclass
class AppBundle:
    """Everything an experiment needs for one application."""

    profile: AppProfile
    app: GeneralizedReductionApp
    schema: RecordSchema
    block_fn: BlockFn

    def __post_init__(self) -> None:
        if self.schema.record_bytes != self.profile.record_bytes:
            raise ConfigurationError(
                f"schema record size {self.schema.record_bytes} != profile "
                f"record size {self.profile.record_bytes} for {self.profile.key!r}"
            )


#: ``factory(total_units, seed, **params) -> AppBundle``
BundleFactory = Callable[..., AppBundle]

_REGISTRY: dict[str, BundleFactory] = {}
_PROFILES: dict[str, AppProfile] = {}


def register_app(profile: AppProfile, factory: BundleFactory) -> None:
    """Register an application under its profile key."""
    if profile.key in _REGISTRY:
        raise ConfigurationError(f"application {profile.key!r} already registered")
    _REGISTRY[profile.key] = factory
    _PROFILES[profile.key] = profile


def get_app_factory(key: str) -> BundleFactory:
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown application {key!r}; available: {sorted(_REGISTRY)}"
        ) from None


def get_profile(key: str) -> AppProfile:
    try:
        return _PROFILES[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown application {key!r}; available: {sorted(_PROFILES)}"
        ) from None


def make_bundle(key: str, total_units: int, *, seed: int = 2011, **params) -> AppBundle:
    """Instantiate an application bundle sized for ``total_units`` units."""
    return get_app_factory(key)(total_units, seed=seed, **params)


def available_apps() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# Reduction-object size shared by the paper-calibrated pagerank profile:
# Section IV-B quotes "~300 MB".
PAGERANK_ROBJ_BYTES = 300 * MB
