"""k-Means clustering under Generalized Reduction.

The paper's second application: "heavy computation resulting in low to
medium I/O, and a small reduction object. The value of k is set to 1000.
The total number of processed points is 10.7e9."

One execution is one Lloyd iteration: every point is assigned to its
nearest centroid and the reduction object accumulates per-centroid
coordinate sums and counts (a :class:`~repro.core.reduction.StructReduction`
of two arrays). :meth:`KMeansApp.next_centroids` turns the final object
into updated centroids, and :meth:`KMeansApp.update` rebinds them so an
iterative driver can run to convergence — the natural extension the
FREERIDE lineage supports.
"""

from __future__ import annotations

import numpy as np

from ..core.api import GeneralizedReductionApp
from ..core.reduction import ArrayReduction, ReductionObject, StructReduction
from ..data.generators import gaussian_points
from ..data.records import point_schema
from ..units import KB
from .base import AppBundle, AppProfile, register_app

__all__ = ["KMeansApp", "KMEANS_PROFILE"]

#: Calibration: 10.7e9 points in 120 GB; k=1000 distance evaluations per
#: point dominate everything (Fig. 3(b) env-local ~2300 s on 32 cores).
#: 22 EC2 cores matched 16 local cores -> cloud_slowdown = 22/16.
KMEANS_PROFILE = AppProfile(
    key="kmeans",
    unit_cost_local=8.9e-6,
    cloud_slowdown=22.0 / 16.0,
    robj_bytes=32 * KB,  # k x (d sums + count), k=1000, small dims
    record_bytes=16,
    description="k-means clustering: heavy compute, low I/O, small robj",
)


class KMeansApp(GeneralizedReductionApp):
    """One Lloyd iteration against a fixed set of centroids."""

    name = "kmeans"

    def __init__(self, centroids: np.ndarray) -> None:
        self.centroids = np.asarray(centroids, dtype=np.float32)
        if self.centroids.ndim != 2:
            raise ValueError("centroids must be a (k, d) array")
        self.k, self.dims = self.centroids.shape
        self._schema = point_schema(self.dims)

    def create_reduction_object(self) -> StructReduction:
        return StructReduction(
            {
                "sums": ArrayReduction((self.k, self.dims), dtype=np.float64),
                "counts": ArrayReduction((self.k,), dtype=np.int64),
            }
        )

    def local_reduction(self, robj: ReductionObject, units: np.ndarray) -> None:
        assert isinstance(robj, StructReduction)
        pts = np.asarray(units, dtype=np.float32)
        # Pairwise squared distances via the expansion |p|^2 - 2 p.c + |c|^2;
        # the |p|^2 term is constant per point and drops out of the argmin.
        cross = pts @ self.centroids.T  # (n, k)
        c_norm = np.einsum("ij,ij->i", self.centroids, self.centroids)
        assign = np.argmin(c_norm[None, :] - 2.0 * cross, axis=1)
        sums = robj["sums"]
        counts = robj["counts"]
        assert isinstance(sums, ArrayReduction) and isinstance(counts, ArrayReduction)
        np.add.at(sums.data, assign, pts.astype(np.float64))
        np.add.at(counts.data, assign, 1)

    def finalize(self, robj: ReductionObject) -> np.ndarray:
        return self.next_centroids(robj)

    def next_centroids(self, robj: ReductionObject) -> np.ndarray:
        """Updated centroids; empty clusters keep their previous position."""
        assert isinstance(robj, StructReduction)
        sums = robj["sums"].value()
        counts = robj["counts"].value()
        out = self.centroids.astype(np.float64).copy()
        occupied = counts > 0
        out[occupied] = sums[occupied] / counts[occupied, None]
        return out.astype(np.float32)

    def update(self, centroids: np.ndarray) -> None:
        """Rebind centroids between iterations (iterative driver hook)."""
        centroids = np.asarray(centroids, dtype=np.float32)
        if centroids.shape != self.centroids.shape:
            raise ValueError(
                f"centroid shape changed: {self.centroids.shape} -> {centroids.shape}"
            )
        self.centroids = centroids

    def decode_chunk(self, raw: bytes) -> np.ndarray:
        return self._schema.decode(raw)


def _make_bundle(
    total_units: int, *, seed: int = 2011, dims: int = 4, k: int = 8, centers: int = 8
) -> AppBundle:
    """Small-scale kmeans bundle: Gaussian mixture points, seeded initial
    centroids drawn uniformly from the unit cube."""
    schema = point_schema(dims)
    profile = AppProfile(
        key=KMEANS_PROFILE.key,
        unit_cost_local=KMEANS_PROFILE.unit_cost_local,
        cloud_slowdown=KMEANS_PROFILE.cloud_slowdown,
        robj_bytes=KMEANS_PROFILE.robj_bytes,
        record_bytes=schema.record_bytes,
        description=KMEANS_PROFILE.description,
    )
    rng = np.random.default_rng(seed)
    centroids = rng.uniform(0.0, 1.0, size=(k, dims)).astype(np.float32)
    app = KMeansApp(centroids)

    def block_fn(start: int, count: int, block_index: int) -> np.ndarray:
        return gaussian_points(
            count, dims, centers=centers, seed=seed + block_index * 7919 + start
        )

    return AppBundle(profile=profile, app=app, schema=schema, block_fn=block_fn)


register_app(KMEANS_PROFILE, _make_bundle)
