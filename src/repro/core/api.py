"""The Generalized Reduction programming API.

Section III-A: the application developer supplies three components —

* the **reduction object** (via :meth:`GeneralizedReductionApp.create_reduction_object`),
* the **local reduction** function, which folds data elements straight into
  the reduction object (fusing map + combine + reduce: no intermediate
  ``(key, value)`` pairs, no shuffle),
* the **global reduction**, which merges per-worker reduction objects
  (defaulting to the middleware's library merge).

The middleware owns everything else: chunk retrieval, unit grouping, object
allocation, merge scheduling, and inter-cluster movement.

``local_reduction`` receives a *group* of data units at a time (a NumPy
array slice sized to the compute unit's cache — Section III-B's "group of
data units"), so applications vectorize naturally.

The processing result must be independent of the order in which unit groups
are processed — the same contract the paper states — and the test suite
checks it for every bundled application.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, Sequence

import numpy as np

from ..errors import ReductionError
from .reduction import ReductionObject, merge_all

__all__ = ["GeneralizedReductionApp", "run_serial"]


class GeneralizedReductionApp(abc.ABC):
    """Base class for applications written against Generalized Reduction.

    Subclasses must be picklable-free of per-run mutable state: one app
    instance is shared by all workers in the in-process runtime.
    """

    #: Short registry key, e.g. ``"knn"``.
    name: str = "app"

    # -- developer-supplied components ---------------------------------------

    @abc.abstractmethod
    def create_reduction_object(self) -> ReductionObject:
        """Allocate an identity-valued reduction object."""

    @abc.abstractmethod
    def local_reduction(self, robj: ReductionObject, units: np.ndarray) -> None:
        """Process one cache-sized group of data units into ``robj``."""

    def global_reduction(
        self, robjs: Sequence[ReductionObject]
    ) -> ReductionObject:
        """Merge worker reduction objects; defaults to the library merge.

        Applications with non-trivial combination (or that want one of the
        library combination functions other than the object's own merge)
        override this.
        """
        return merge_all(robjs)

    def finalize(self, robj: ReductionObject) -> Any:
        """Turn the final reduction object into the application result."""
        return robj.value()

    # -- data plumbing ----------------------------------------------------------

    @abc.abstractmethod
    def decode_chunk(self, raw: bytes) -> np.ndarray:
        """Decode a retrieved chunk's bytes into an array of data units.

        The returned array's first axis indexes units; the runtime slices
        it into cache-sized groups before calling :meth:`local_reduction`.
        """

    def unit_groups(
        self, units: np.ndarray, units_per_group: int
    ) -> Iterable[np.ndarray]:
        """Split decoded units into cache-sized groups (views, not copies)."""
        if units_per_group <= 0:
            raise ReductionError("units_per_group must be positive")
        n = len(units)
        for start in range(0, n, units_per_group):
            yield units[start : start + units_per_group]


def run_serial(
    app: GeneralizedReductionApp,
    chunks: Iterable[bytes],
    *,
    units_per_group: int = 4096,
) -> Any:
    """Run an application serially over raw chunks — the correctness oracle.

    This is the simplest possible execution of the API: a single reduction
    object, every chunk processed in order. Integration tests compare the
    distributed runtime's output against this.

    .. deprecated::
        Prefer :func:`repro.run` with ``RunConfig(mode="serial")`` — the
        unified facade — for new code. This function remains as the thin
        engine the facade calls (``tests/test_run_facade.py`` pins the
        equivalence) and will not be removed.
    """
    robj = app.create_reduction_object()
    for raw in chunks:
        units = app.decode_chunk(raw)
        for group in app.unit_groups(units, units_per_group):
            app.local_reduction(robj, group)
    final = app.global_reduction([robj])
    return app.finalize(final)
