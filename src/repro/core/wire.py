"""Wire codecs for reduction-object sync transfers.

The paper's headline non-scalable cost is global reduction: at sync time
every master ships its full reduction object over the WAN (~300 MB for
PageRank). This module shrinks those bytes with a small versioned wire
format around :meth:`~repro.core.reduction.ReductionObject.to_bytes`:

``RW | version | encoding | compression | body``

Encodings
  * **dense** — the object's own serialization, unchanged (the default);
  * **sparse** — index+value pairs of the entries that differ from the
    combiner's identity element (zeros for sum, ±inf for min/max); wins
    when an array is mostly identity;
  * **delta** — the difference against the *previous* object sent on the
    same channel (the PR-3 iterative path sends near-identical objects
    pass after pass). Array deltas are computed by wrapping integer
    subtraction on the raw bit lanes — exactly reversible, unlike float
    arithmetic — then byte-shuffled (Blosc-style) so the near-zero high
    bytes of a converging workload form long runs the compressor eats.
    Non-array objects fall back to an XOR of the dense blobs;
  * **auto** — per object, pick whichever candidate is smallest.

Compression (zlib always; lz4 only when the host already ships it — this
repo never installs dependencies) is applied transparently and dropped
per-object when it does not shrink the body, so every knob setting is
safe: the wire blob is never materially larger than dense.

**Bit-exactness.** Delta decoding must reproduce the sender's object
*bit for bit*, otherwise encoder and decoder baselines drift and later
deltas decode to garbage. Two rules guarantee it: sparse selection
compares raw bit patterns (so ``-0.0`` is stored explicitly rather than
conflated with ``+0.0``), and both sides of a channel keep their
baseline as the *dense bytes* of the last object exchanged — the decoder
reconstructs exactly the bytes the encoder stored, so the chain never
diverges. The round-trip property tests in ``tests/test_wire.py`` pin
``decode(encode(x)).to_bytes() == x.to_bytes()`` across the whole
matrix.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import ReductionError
from .reduction import (
    ArrayReduction,
    ReductionObject,
    StructReduction,
    from_bytes,
)

try:  # pragma: no cover - availability depends on the host image
    import lz4.frame as _lz4
except ImportError:  # pragma: no cover
    _lz4 = None

__all__ = [
    "ENCODINGS",
    "COMPRESSIONS",
    "EncodedObject",
    "DecodedObject",
    "encode",
    "decode",
    "is_wire_blob",
    "lz4_available",
]

#: Encoding knob values (``auto`` picks the smallest candidate per object).
ENCODINGS = ("dense", "sparse", "delta", "auto")

#: Compression knob values.
COMPRESSIONS = ("none", "zlib", "lz4")

_MAGIC = b"RW"
_VERSION = 1
_HEADER = struct.Struct("<2sBBB")

_ENC_IDS = {"dense": 0, "sparse": 1, "delta": 2}
_ENC_NAMES = {v: k for k, v in _ENC_IDS.items()}
_COMP_IDS = {"none": 0, "zlib": 1, "lz4": 2}
_COMP_NAMES = {v: k for k, v in _COMP_IDS.items()}

#: Bodies smaller than this are never worth compressing.
_MIN_COMPRESS = 64


def lz4_available() -> bool:
    """Whether the optional lz4 codec is importable on this host."""
    return _lz4 is not None


def is_wire_blob(blob: bytes) -> bool:
    """Distinguish a wire blob from a legacy ``to_bytes`` envelope."""
    return blob[:2] == _MAGIC


class _Unsupported(Exception):
    """Internal: the requested encoding cannot represent this object."""


@dataclass(frozen=True)
class EncodedObject:
    """One encoded upload: the wire blob plus accounting.

    ``dense`` is the object's plain serialization — callers keep it as
    the channel baseline for the next delta, and compare ``len(blob)``
    against ``len(dense)`` for bytes-saved accounting.
    """

    blob: bytes
    dense: bytes
    encoding: str  # the encoding actually used (after fallbacks)
    compression: str


@dataclass(frozen=True)
class DecodedObject:
    """One decoded upload: the object plus its reconstructed dense bytes."""

    robj: ReductionObject
    dense: bytes
    encoding: str
    compression: str


# -- array helpers -----------------------------------------------------------


def _lane_dtype(dtype: np.dtype) -> np.dtype | None:
    """The unsigned integer view for exact bit-lane arithmetic, if any."""
    if dtype.itemsize in (1, 2, 4, 8) and dtype.kind in "fiub":
        return np.dtype(f"u{dtype.itemsize}")
    return None


def _shuffle(raw: np.ndarray, itemsize: int) -> bytes:
    """Byte-shuffle: transpose byte lanes so high bytes group together."""
    if itemsize == 1:
        return raw.tobytes()
    return np.ascontiguousarray(
        raw.view(np.uint8).reshape(-1, itemsize).T
    ).tobytes()


def _unshuffle(raw: bytes, itemsize: int) -> np.ndarray:
    flat = np.frombuffer(raw, dtype=np.uint8)
    if itemsize == 1:
        return flat
    if flat.size % itemsize:
        raise ReductionError("delta payload length is not lane-aligned")
    return np.ascontiguousarray(flat.reshape(itemsize, -1).T).reshape(-1)


def _bits(arr: np.ndarray, lane: np.dtype) -> np.ndarray:
    return np.ascontiguousarray(arr).reshape(-1).view(lane)


# -- sparse encoding ---------------------------------------------------------


def _sparse_tree(robj: ReductionObject):
    """Sparse representation, or :class:`_Unsupported` when it won't help."""
    if isinstance(robj, ArrayReduction):
        lane = _lane_dtype(robj.data.dtype)
        if lane is None:
            raise _Unsupported
        identity = np.full(
            (), ArrayReduction._IDENTITY[robj.op], dtype=robj.data.dtype
        )
        bits = _bits(robj.data, lane)
        idx = np.flatnonzero(bits != _bits(identity, lane)[0])
        # Entries are stored with 8-byte indices; bail out early when the
        # array is too dense for index+value pairs to beat the raw dump.
        if idx.size * (8 + robj.data.dtype.itemsize) >= robj.data.nbytes:
            raise _Unsupported
        values = np.ascontiguousarray(robj.data).reshape(-1)[idx]
        return (
            "arr",
            robj.op,
            robj.data.dtype.str,
            robj.data.shape,
            idx.astype(np.int64).tobytes(),
            values.tobytes(),
        )
    if isinstance(robj, StructReduction):
        fields = {}
        any_sparse = False
        for name, field in robj.fields.items():
            try:
                fields[name] = _sparse_tree(field)
                any_sparse = True
            except _Unsupported:
                fields[name] = ("dense", field.to_bytes())
        if not any_sparse:
            raise _Unsupported
        return ("struct", fields)
    raise _Unsupported


def _sparse_body(robj: ReductionObject) -> bytes:
    return pickle.dumps(_sparse_tree(robj), protocol=pickle.HIGHEST_PROTOCOL)


def _sparse_restore(tree) -> ReductionObject:
    try:
        kind = tree[0]
        if kind == "arr":
            _, op, dtype_str, shape, idx_raw, val_raw = tree
            dtype = np.dtype(dtype_str)
            data = np.full(shape, ArrayReduction._IDENTITY[op], dtype=dtype)
            idx = np.frombuffer(idx_raw, dtype=np.int64)
            flat = data.reshape(-1)
            flat[idx] = np.frombuffer(val_raw, dtype=dtype)
            return ArrayReduction(shape, dtype=dtype, op=op, data=data)
        if kind == "struct":
            _, fields = tree
            return StructReduction(
                {
                    name: (
                        from_bytes(sub[1])
                        if sub[0] == "dense"
                        else _sparse_restore(sub)
                    )
                    for name, sub in fields.items()
                }
            )
        if kind == "dense":
            return from_bytes(tree[1])
    except ReductionError:
        raise
    except Exception as exc:
        raise ReductionError(f"corrupt sparse payload: {exc}") from exc
    raise ReductionError(f"corrupt sparse payload: unknown node {kind!r}")


# -- delta encoding ----------------------------------------------------------


def _delta_tree(cur: ReductionObject, base: ReductionObject):
    if isinstance(cur, ArrayReduction) and isinstance(base, ArrayReduction):
        lane = _lane_dtype(cur.data.dtype)
        if (
            lane is None
            or cur.op != base.op
            or cur.data.dtype != base.data.dtype
            or cur.data.shape != base.data.shape
        ):
            raise _Unsupported
        diff = _bits(cur.data, lane) - _bits(base.data, lane)
        return ("arr", _shuffle(diff, cur.data.dtype.itemsize))
    if isinstance(cur, StructReduction) and isinstance(base, StructReduction):
        if set(cur.fields) != set(base.fields):
            raise _Unsupported
        return (
            "struct",
            {
                name: _delta_tree(field, base.fields[name])
                for name, field in cur.fields.items()
            },
        )
    cur_dense = cur.to_bytes()
    base_dense = base.to_bytes()
    if len(cur_dense) != len(base_dense):
        raise _Unsupported
    xored = np.bitwise_xor(
        np.frombuffer(cur_dense, dtype=np.uint8),
        np.frombuffer(base_dense, dtype=np.uint8),
    )
    return ("xor", xored.tobytes())


def _delta_body(cur: ReductionObject, base: ReductionObject) -> bytes:
    return pickle.dumps(_delta_tree(cur, base), protocol=pickle.HIGHEST_PROTOCOL)


def _delta_restore(tree, base: ReductionObject) -> ReductionObject:
    try:
        kind = tree[0]
        if kind == "arr":
            if not isinstance(base, ArrayReduction):
                raise ReductionError(
                    "delta payload does not match the channel baseline"
                )
            dtype = base.data.dtype
            lane = _lane_dtype(dtype)
            diff = _unshuffle(tree[1], dtype.itemsize).view(lane)
            if diff.size != base.data.size:
                raise ReductionError(
                    "delta payload does not match the channel baseline"
                )
            data = (_bits(base.data, lane) + diff).view(dtype)
            return ArrayReduction(
                base.data.shape, dtype=dtype, op=base.op,
                data=data.reshape(base.data.shape),
            )
        if kind == "struct":
            if not isinstance(base, StructReduction):
                raise ReductionError(
                    "delta payload does not match the channel baseline"
                )
            return StructReduction(
                {
                    name: _delta_restore(sub, base.fields[name])
                    for name, sub in tree[1].items()
                }
            )
        if kind == "xor":
            base_dense = base.to_bytes()
            if len(tree[1]) != len(base_dense):
                raise ReductionError(
                    "delta payload does not match the channel baseline"
                )
            dense = np.bitwise_xor(
                np.frombuffer(tree[1], dtype=np.uint8),
                np.frombuffer(base_dense, dtype=np.uint8),
            ).tobytes()
            return from_bytes(dense)
    except ReductionError:
        raise
    except Exception as exc:
        raise ReductionError(f"corrupt delta payload: {exc}") from exc
    raise ReductionError(f"corrupt delta payload: unknown node {kind!r}")


# -- compression -------------------------------------------------------------


def _compress(body: bytes, compress: str) -> tuple[bytes, str]:
    """Compress when asked and worthwhile; never grow the body."""
    if compress == "none" or len(body) < _MIN_COMPRESS:
        return body, "none"
    if compress == "zlib":
        packed = zlib.compress(body, 6)
    elif compress == "lz4":
        if _lz4 is None:
            raise ReductionError(
                "lz4 compression requested but the lz4 package is not "
                "installed on this host"
            )
        packed = _lz4.compress(body)
    else:
        raise ReductionError(f"unknown compression {compress!r}")
    if len(packed) < len(body):
        return packed, compress
    return body, "none"


def _decompress(body: bytes, compression: str) -> bytes:
    try:
        if compression == "none":
            return body
        if compression == "zlib":
            return zlib.decompress(body)
        if compression == "lz4":
            if _lz4 is None:
                raise ReductionError(
                    "blob was lz4-compressed but the lz4 package is not "
                    "installed on this host"
                )
            return _lz4.decompress(body)
    except ReductionError:
        raise
    except Exception as exc:
        raise ReductionError(f"corrupt compressed payload: {exc}") from exc
    raise ReductionError(f"unknown compression id in wire header")


# -- public API --------------------------------------------------------------


def encode(
    robj: ReductionObject,
    *,
    encoding: str = "dense",
    compress: str = "none",
    baseline: bytes | None = None,
) -> EncodedObject:
    """Encode ``robj`` for the wire.

    ``baseline`` is the *dense* serialization of the previous object sent
    on this channel (see :class:`~repro.core.sync.SyncCodec`, which
    manages baselines per sender). Requested encodings that cannot apply
    — delta without a baseline, sparse over a dense array — silently fall
    back to the cheapest representable form; the header records what was
    actually used, so decoding needs no out-of-band agreement.
    """
    if encoding not in ENCODINGS:
        raise ReductionError(f"unknown wire encoding {encoding!r}")
    if compress not in COMPRESSIONS:
        raise ReductionError(f"unknown compression {compress!r}")
    dense = robj.to_bytes()
    candidates: list[tuple[str, bytes]] = []
    want_delta = encoding in ("delta", "auto") and baseline is not None
    want_sparse = encoding == "sparse" or (
        encoding == "auto" and not want_delta
    )
    if want_delta:
        try:
            if isinstance(robj, (ArrayReduction, StructReduction)):
                delta = _delta_body(robj, from_bytes(baseline))
            elif len(dense) == len(baseline):
                # Whole-blob XOR against the baseline *bytes*: reversible
                # without ever re-serializing the baseline object.
                xored = np.bitwise_xor(
                    np.frombuffer(dense, dtype=np.uint8),
                    np.frombuffer(baseline, dtype=np.uint8),
                ).tobytes()
                delta = pickle.dumps(
                    ("xor", xored), protocol=pickle.HIGHEST_PROTOCOL
                )
            else:
                raise _Unsupported
            candidates.append(("delta", delta))
        except _Unsupported:
            pass
    if want_sparse:
        try:
            candidates.append(("sparse", _sparse_body(robj)))
        except _Unsupported:
            pass
    # Candidates are judged by their *final* wire size: a delta of a
    # near-identical object is as long as dense uncompressed (XOR keeps
    # the length) but collapses to almost nothing once compressed, so
    # comparing pre-compression sizes would never pick it.
    chosen, (body, used_compress) = "dense", _compress(dense, compress)
    for name, candidate in candidates:
        packed, packed_compress = _compress(candidate, compress)
        if len(packed) < len(body):
            chosen, body, used_compress = name, packed, packed_compress
    blob = _HEADER.pack(
        _MAGIC, _VERSION, _ENC_IDS[chosen], _COMP_IDS[used_compress]
    ) + body
    return EncodedObject(
        blob=blob, dense=dense, encoding=chosen, compression=used_compress
    )


def decode(blob: bytes, *, baseline: bytes | None = None) -> DecodedObject:
    """Decode a wire blob produced by :func:`encode`.

    Accepts legacy plain ``to_bytes`` envelopes too (no wire header), so
    mixed-version peers interoperate. ``baseline`` must be the dense
    bytes of the previous object decoded on this channel whenever the
    header says delta.
    """
    if not is_wire_blob(blob):
        robj = _from_dense(blob)
        return DecodedObject(
            robj=robj, dense=blob, encoding="dense", compression="none"
        )
    if len(blob) < _HEADER.size:
        raise ReductionError("truncated wire header")
    magic, version, enc_id, comp_id = _HEADER.unpack_from(blob)
    if version != _VERSION:
        raise ReductionError(f"unsupported wire version {version}")
    encoding = _ENC_NAMES.get(enc_id)
    compression = _COMP_NAMES.get(comp_id)
    if encoding is None:
        raise ReductionError(f"unknown wire encoding id {enc_id}")
    if compression is None:
        raise ReductionError(f"unknown compression id {comp_id}")
    body = _decompress(blob[_HEADER.size:], compression)
    if encoding == "dense":
        robj = _from_dense(body)
        dense = body
    elif encoding == "sparse":
        robj = _sparse_restore(_load_tree(body))
        dense = robj.to_bytes()
    else:  # delta
        if baseline is None:
            raise ReductionError(
                "delta-encoded blob received with no channel baseline"
            )
        tree = _load_tree(body)
        if tree[0] == "xor":
            base_dense = baseline
            if len(tree[1]) != len(base_dense):
                raise ReductionError(
                    "delta payload does not match the channel baseline"
                )
            dense = np.bitwise_xor(
                np.frombuffer(tree[1], dtype=np.uint8),
                np.frombuffer(base_dense, dtype=np.uint8),
            ).tobytes()
            robj = _from_dense(dense)
        else:
            robj = _delta_restore(tree, from_bytes(baseline))
            dense = robj.to_bytes()
    return DecodedObject(
        robj=robj, dense=dense, encoding=encoding, compression=compression
    )


def _from_dense(body: bytes) -> ReductionObject:
    """Deserialize a dense body, surfacing any corruption uniformly."""
    try:
        return from_bytes(body)
    except ReductionError:
        raise
    except Exception as exc:
        raise ReductionError(f"corrupt dense payload: {exc}") from exc


def _load_tree(body: bytes):
    try:
        tree = pickle.loads(body)
    except Exception as exc:
        raise ReductionError(f"corrupt wire payload: {exc}") from exc
    if not isinstance(tree, tuple) or not tree:
        raise ReductionError("corrupt wire payload: malformed tree")
    return tree
