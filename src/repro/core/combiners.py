"""Library of combination functions for global reduction.

Section III-A: "A user can choose from one of the several common combination
functions already implemented in the generalized reduction system library
(such as aggregation, concatenation, etc.), or they can provide one of their
own." This module is that library: a registry of named binary combiners used
by :class:`~repro.core.reduction.DictReduction` and by applications'
``global_reduction`` hooks.

Combiners are looked up by name so reduction objects remain serializable
across the (simulated) wire; user-defined combiners are added with
:func:`register_combiner`.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import ReductionError

__all__ = ["get_combiner", "register_combiner", "available_combiners"]

Combiner = Callable[[Any, Any], Any]

_REGISTRY: dict[str, Combiner] = {}


def register_combiner(name: str, fn: Combiner, *, overwrite: bool = False) -> None:
    """Register a named binary combiner.

    Combiners must be commutative and associative for the runtime's merge
    order to be immaterial; that contract is the application developer's to
    uphold (and hypothesis tests verify it for the built-ins).
    """
    if not name:
        raise ReductionError("combiner name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ReductionError(f"combiner {name!r} already registered")
    _REGISTRY[name] = fn


def get_combiner(name: str) -> Combiner:
    """Look up a combiner by name; raises ReductionError if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReductionError(
            f"unknown combiner {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_combiners() -> tuple[str, ...]:
    """Names of all registered combiners, sorted."""
    return tuple(sorted(_REGISTRY))


# --- built-ins ------------------------------------------------------------


def _sum(a: Any, b: Any) -> Any:
    return a + b


def _min(a: Any, b: Any) -> Any:
    return a if a <= b else b


def _max(a: Any, b: Any) -> Any:
    return a if a >= b else b


def _concat(a: Any, b: Any) -> Any:
    """Order-insensitive concatenation: collects into a sorted tuple.

    Plain ``a + b`` on sequences is associative but not commutative; the
    library's concatenation therefore canonicalizes to sorted order, which
    keeps the global-reduction result independent of merge order.
    """
    seq_a = a if isinstance(a, tuple) else (a,)
    seq_b = b if isinstance(b, tuple) else (b,)
    return tuple(sorted(seq_a + seq_b))


def _count(a: Any, b: Any) -> Any:
    return a + b


def _mean_pair(a: Any, b: Any) -> Any:
    """Combine ``(sum, count)`` pairs; final mean is ``sum/count``."""
    return (a[0] + b[0], a[1] + b[1])


register_combiner("sum", _sum)
register_combiner("min", _min)
register_combiner("max", _max)
register_combiner("concat", _concat)
register_combiner("count", _count)
register_combiner("mean_pair", _mean_pair)
