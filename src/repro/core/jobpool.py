"""Master-side job pool with group-completion accounting.

Each cluster's master keeps a pool of jobs received from the head
(Section III-B). Slaves drain the pool one job at a time; when the pool
falls to its low-water mark the master asks the head for another group.
The pool also tracks which head-assigned group each job belongs to so the
master can acknowledge group completion — the signal the head uses to
maintain per-file reader counts for its contention-minimizing heuristic.

The multi-run :class:`~repro.service.JobService` generalizes this
single-run pool: :class:`FairShareQueue` holds *whole submissions* from
many tenants and picks the next one by weighted stride scheduling, so a
tenant with weight 4 dispatches four runs for every one a weight-1
tenant dispatches whenever both are backlogged — while an idle tenant's
unused share never accumulates into a burst (its stride pass is clamped
to the queue's global virtual time on re-arrival).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Iterable

from ..errors import SchedulingError
from .job import Job, JobGroup

__all__ = ["JobPool", "FairShareQueue"]


class JobPool:
    """FIFO pool of jobs plus per-group outstanding-job accounting."""

    def __init__(self, low_water: int = 2) -> None:
        if low_water < 0:
            raise SchedulingError("low_water must be >= 0")
        self.low_water = low_water
        self._queue: deque[Job] = deque()
        self._group_of: dict[int, int] = {}  # job_id -> group_id
        self._outstanding: dict[int, int] = {}  # group_id -> unfinished jobs
        self._seen_jobs: set[int] = set()
        self._inflight: set[int] = set()  # job ids taken but not done
        self.jobs_added = 0
        self.jobs_taken = 0
        self.jobs_done = 0

    # -- filling -----------------------------------------------------------

    def add_group(self, group: JobGroup) -> None:
        """Add a head-assigned group to the pool.

        Rejects jobs the pool has already seen — a job must be processed
        exactly once, and double assignment is a head-scheduler bug we want
        to surface loudly.
        """
        if group.group_id in self._outstanding:
            raise SchedulingError(f"group {group.group_id} added twice")
        for job in group.jobs:
            if job.job_id in self._seen_jobs:
                raise SchedulingError(f"job {job.job_id} added to pool twice")
        for job in group.jobs:
            self._seen_jobs.add(job.job_id)
            self._group_of[job.job_id] = group.group_id
            self._queue.append(job)
        self._outstanding[group.group_id] = len(group.jobs)
        self.jobs_added += len(group.jobs)

    #: Group id used for re-executed jobs whose original group already
    #: completed; recovery groups are master-local and never acknowledged
    #: to the head (the head's reader accounting saw the first completion).
    RECOVERY_GROUP = -1

    def requeue(self, jobs: list[Job]) -> None:
        """Re-insert jobs lost with a failed worker (fault recovery).

        In-flight jobs (taken, never finished) keep their original group so
        the eventual completion acknowledges normally. Already-finished
        jobs re-enter under :data:`RECOVERY_GROUP`: their group completion
        was already acknowledged and must not be double-counted.
        """
        for job in jobs:
            if job.job_id not in self._seen_jobs:
                raise SchedulingError(
                    f"cannot requeue job {job.job_id}: it was never pooled"
                )
            if job.job_id not in self._group_of:
                # Finished previously; redo under the recovery group.
                self._group_of[job.job_id] = self.RECOVERY_GROUP
            self._inflight.discard(job.job_id)
            self._queue.append(job)

    # -- draining ----------------------------------------------------------

    def take(self) -> Job | None:
        """Hand out the next job, or ``None`` when the pool is empty."""
        if not self._queue:
            return None
        self.jobs_taken += 1
        job = self._queue.popleft()
        self._inflight.add(job.job_id)
        return job

    def mark_done(self, job_id: int) -> int | None:
        """Record that a slave finished ``job_id``.

        Returns the group id if this completion finished its whole group
        (the master should then acknowledge that group to the head), else
        ``None``.
        """
        group_id = self._group_of.pop(job_id, None)
        if group_id is None:
            raise SchedulingError(f"job {job_id} finished but was never pooled")
        self.jobs_done += 1
        self._inflight.discard(job_id)
        if group_id == self.RECOVERY_GROUP:
            return None
        remaining = self._outstanding[group_id] - 1
        if remaining < 0:  # pragma: no cover - guarded by _group_of pop
            raise SchedulingError(f"group {group_id} over-completed")
        if remaining == 0:
            del self._outstanding[group_id]
            return group_id
        self._outstanding[group_id] = remaining
        return None

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def needs_refill(self) -> bool:
        """True when the pool has drained to its low-water mark."""
        return len(self._queue) <= self.low_water

    @property
    def in_flight(self) -> int:
        """Jobs taken by slaves but not yet marked done."""
        return len(self._inflight)

    @property
    def drained(self) -> bool:
        """True when every pooled job has been processed."""
        return not self._queue and self.in_flight == 0


class FairShareQueue:
    """Weighted fair-share + priority queue of opaque items across tenants.

    Classic stride scheduling: every tenant carries a *pass* value that
    advances by ``1 / weight`` each time one of its items is dispatched,
    and :meth:`take` always serves the backlogged tenant with the lowest
    pass. Over any window in which a set of tenants stays backlogged,
    each receives dispatches proportional to its weight. Within a tenant,
    higher ``priority`` items go first; ties dispatch in submission order.

    Two refinements matter for a long-lived service:

    * **No banked credit.** A tenant that sat idle re-enters at
      ``max(own pass, global virtual time)``, so it resumes competing at
      par instead of monopolizing the queue to "catch up" on share it
      never used.
    * **Lazy discard.** :meth:`push` returns a token; :meth:`discard`
      marks it dead in O(1) and :meth:`take` prunes dead entries as it
      encounters them — cancellation never reheapifies a deep backlog.

    Items are opaque. The queue is not thread-safe; the service serializes
    access under its own lock.
    """

    def __init__(self) -> None:
        self._weights: dict[str, float] = {}
        self._pass: dict[str, float] = {}
        # tenant -> heap of (-priority, seq, item); seq breaks ties FIFO.
        self._heaps: dict[str, list[tuple[int, int, Any]]] = {}
        self._dead: set[int] = set()
        self._seq = itertools.count()
        self._gvt = 0.0  # pass of the most recent dispatch
        self.pushed: dict[str, int] = {}
        self.dispatched: dict[str, int] = {}

    # -- tenants -----------------------------------------------------------

    def register(self, tenant: str, weight: float = 1.0) -> None:
        """Declare a tenant and its fair-share weight (idempotent)."""
        if weight <= 0:
            raise SchedulingError(
                f"tenant {tenant!r} weight must be positive, got {weight}"
            )
        self._weights[tenant] = float(weight)
        self._pass.setdefault(tenant, self._gvt)
        self._heaps.setdefault(tenant, [])
        self.pushed.setdefault(tenant, 0)
        self.dispatched.setdefault(tenant, 0)

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self._weights)

    def weight_of(self, tenant: str) -> float:
        return self._weights[tenant]

    # -- queueing ----------------------------------------------------------

    def push(self, tenant: str, item: Any, priority: int = 0) -> int:
        """Enqueue ``item`` for ``tenant``; returns a token for discard.

        An empty-to-backlogged transition clamps the tenant's pass to the
        global virtual time so idle periods never bank credit.
        """
        if tenant not in self._weights:
            raise SchedulingError(f"tenant {tenant!r} was never registered")
        heap = self._heaps[tenant]
        if not self._live(heap):
            self._pass[tenant] = max(self._pass[tenant], self._gvt)
        token = next(self._seq)
        heapq.heappush(heap, (-priority, token, item))
        self.pushed[tenant] += 1
        return token

    def discard(self, token: int) -> None:
        """Mark a pushed entry dead; it will never dispatch. O(1)."""
        self._dead.add(token)

    def take(
        self, eligible: Callable[[str], bool] | None = None
    ) -> tuple[str, Any] | None:
        """Dispatch the next item, or ``None`` when nothing is serveable.

        ``eligible`` lets the caller veto tenants (quota exhausted, admin
        pause) without disturbing their queues or their stride state — a
        vetoed tenant's pass only advances when it actually dispatches.
        """
        best: str | None = None
        for tenant, heap in self._heaps.items():
            if not self._live(heap):
                continue
            if eligible is not None and not eligible(tenant):
                continue
            if best is None or self._pass[tenant] < self._pass[best]:
                best = tenant
        if best is None:
            return None
        _, token, item = heapq.heappop(self._heaps[best])
        self._gvt = self._pass[best]
        self._pass[best] += 1.0 / self._weights[best]
        self.dispatched[best] += 1
        return best, item

    # -- introspection -----------------------------------------------------

    def backlog(self, tenant: str) -> int:
        """Live (not-discarded) queued items for ``tenant``."""
        return sum(
            1 for entry in self._heaps.get(tenant, ()) if entry[1] not in self._dead
        )

    def __len__(self) -> int:
        return sum(self.backlog(tenant) for tenant in self._heaps)

    def _live(self, heap: list[tuple[int, int, Any]]) -> bool:
        """Prune dead entries off the top; True if a live item remains."""
        while heap and heap[0][1] in self._dead:
            self._dead.discard(heap[0][1])
            heapq.heappop(heap)
        return bool(heap)
