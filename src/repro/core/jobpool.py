"""Master-side job pool with group-completion accounting.

Each cluster's master keeps a pool of jobs received from the head
(Section III-B). Slaves drain the pool one job at a time; when the pool
falls to its low-water mark the master asks the head for another group.
The pool also tracks which head-assigned group each job belongs to so the
master can acknowledge group completion — the signal the head uses to
maintain per-file reader counts for its contention-minimizing heuristic.
"""

from __future__ import annotations

from collections import deque

from ..errors import SchedulingError
from .job import Job, JobGroup

__all__ = ["JobPool"]


class JobPool:
    """FIFO pool of jobs plus per-group outstanding-job accounting."""

    def __init__(self, low_water: int = 2) -> None:
        if low_water < 0:
            raise SchedulingError("low_water must be >= 0")
        self.low_water = low_water
        self._queue: deque[Job] = deque()
        self._group_of: dict[int, int] = {}  # job_id -> group_id
        self._outstanding: dict[int, int] = {}  # group_id -> unfinished jobs
        self._seen_jobs: set[int] = set()
        self._inflight: set[int] = set()  # job ids taken but not done
        self.jobs_added = 0
        self.jobs_taken = 0
        self.jobs_done = 0

    # -- filling -----------------------------------------------------------

    def add_group(self, group: JobGroup) -> None:
        """Add a head-assigned group to the pool.

        Rejects jobs the pool has already seen — a job must be processed
        exactly once, and double assignment is a head-scheduler bug we want
        to surface loudly.
        """
        if group.group_id in self._outstanding:
            raise SchedulingError(f"group {group.group_id} added twice")
        for job in group.jobs:
            if job.job_id in self._seen_jobs:
                raise SchedulingError(f"job {job.job_id} added to pool twice")
        for job in group.jobs:
            self._seen_jobs.add(job.job_id)
            self._group_of[job.job_id] = group.group_id
            self._queue.append(job)
        self._outstanding[group.group_id] = len(group.jobs)
        self.jobs_added += len(group.jobs)

    #: Group id used for re-executed jobs whose original group already
    #: completed; recovery groups are master-local and never acknowledged
    #: to the head (the head's reader accounting saw the first completion).
    RECOVERY_GROUP = -1

    def requeue(self, jobs: list[Job]) -> None:
        """Re-insert jobs lost with a failed worker (fault recovery).

        In-flight jobs (taken, never finished) keep their original group so
        the eventual completion acknowledges normally. Already-finished
        jobs re-enter under :data:`RECOVERY_GROUP`: their group completion
        was already acknowledged and must not be double-counted.
        """
        for job in jobs:
            if job.job_id not in self._seen_jobs:
                raise SchedulingError(
                    f"cannot requeue job {job.job_id}: it was never pooled"
                )
            if job.job_id not in self._group_of:
                # Finished previously; redo under the recovery group.
                self._group_of[job.job_id] = self.RECOVERY_GROUP
            self._inflight.discard(job.job_id)
            self._queue.append(job)

    # -- draining ----------------------------------------------------------

    def take(self) -> Job | None:
        """Hand out the next job, or ``None`` when the pool is empty."""
        if not self._queue:
            return None
        self.jobs_taken += 1
        job = self._queue.popleft()
        self._inflight.add(job.job_id)
        return job

    def mark_done(self, job_id: int) -> int | None:
        """Record that a slave finished ``job_id``.

        Returns the group id if this completion finished its whole group
        (the master should then acknowledge that group to the head), else
        ``None``.
        """
        group_id = self._group_of.pop(job_id, None)
        if group_id is None:
            raise SchedulingError(f"job {job_id} finished but was never pooled")
        self.jobs_done += 1
        self._inflight.discard(job_id)
        if group_id == self.RECOVERY_GROUP:
            return None
        remaining = self._outstanding[group_id] - 1
        if remaining < 0:  # pragma: no cover - guarded by _group_of pop
            raise SchedulingError(f"group {group_id} over-completed")
        if remaining == 0:
            del self._outstanding[group_id]
            return group_id
        self._outstanding[group_id] = remaining
        return None

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def needs_refill(self) -> bool:
        """True when the pool has drained to its low-water mark."""
        return len(self._queue) <= self.low_water

    @property
    def in_flight(self) -> int:
        """Jobs taken by slaves but not yet marked done."""
        return len(self._inflight)

    @property
    def drained(self) -> bool:
        """True when every pooled job has been processed."""
        return not self._queue and self.in_flight == 0
