"""Intra-node shared-memory reduction strategies (FREERIDE lineage).

The paper derives its API from FREERIDE [13][14][12], whose central
design question was how threads on one node share the reduction object:

* **full replication** — every thread owns a private copy and copies are
  merged at the end: zero contention, memory = threads x object size;
* **full locking** — one shared object behind one lock: minimal memory,
  maximal contention (every local reduction serializes);
* **chunk merge** (partial replication) — threads reduce each chunk into
  a small private object and fold it into the shared one under the lock
  once per chunk: contention amortized to one merge per chunk.

The cloud-bursting middleware hard-codes full replication per slave (one
reduction object per worker, merged by the master) — this module makes
that a *measured* choice rather than an inherited one:
:func:`run_threaded` executes an application over real chunks with any of
the three strategies, and ``bench_ablation_shmem`` compares them. The
trade is visible exactly as FREERIDE reported: replication wins on time,
locking wins on memory, and the gap widens with thread count and object
size.

The same strategies govern the GIL-free process substrate
(:mod:`repro.runtime.procpool`): full replication and chunk merge carry
over directly (each worker *process* plays the role of a thread, with
the reduction object crossing back through its bytes envelope), while
full locking — one object under one in-process lock — has no meaning
across address spaces and is rejected there.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Sequence

from ..errors import ReductionError
from .api import GeneralizedReductionApp

__all__ = ["ShmemStrategy", "ShmemStats", "run_threaded"]


class ShmemStrategy(str, Enum):
    """How concurrent threads share the reduction object."""

    FULL_REPLICATION = "full-replication"
    FULL_LOCKING = "full-locking"
    CHUNK_MERGE = "chunk-merge"


@dataclass
class ShmemStats:
    """Outcome of a threaded execution."""

    strategy: ShmemStrategy
    threads: int
    wall_seconds: float
    robj_copies: int  # simultaneous reduction-object instances
    robj_bytes: int  # their total serialized size
    lock_acquisitions: int


def run_threaded(
    app: GeneralizedReductionApp,
    chunks: Sequence[bytes],
    *,
    threads: int = 4,
    strategy: ShmemStrategy = ShmemStrategy.FULL_REPLICATION,
    units_per_group: int = 4096,
) -> tuple[Any, ShmemStats]:
    """Process ``chunks`` with ``threads`` workers under a strategy.

    Returns ``(finalized_result, stats)``. All strategies produce the
    same result (the API's order-independence contract); they differ in
    wall time and in how many reduction-object copies coexist.
    """
    if threads <= 0:
        raise ReductionError("thread count must be positive")
    work = list(chunks)
    cursor = [0]
    take_lock = threading.Lock()
    reduce_lock = threading.Lock()
    lock_count = [0]

    def next_chunk() -> bytes | None:
        with take_lock:
            if cursor[0] >= len(work):
                return None
            raw = work[cursor[0]]
            cursor[0] += 1
            return raw

    shared = app.create_reduction_object()
    privates = [app.create_reduction_object() for _ in range(threads)]

    def reduce_groups(robj, raw: bytes) -> None:
        units = app.decode_chunk(raw)
        for group in app.unit_groups(units, units_per_group):
            app.local_reduction(robj, group)

    def worker(tid: int) -> None:
        while True:
            raw = next_chunk()
            if raw is None:
                return
            if strategy is ShmemStrategy.FULL_REPLICATION:
                reduce_groups(privates[tid], raw)
            elif strategy is ShmemStrategy.FULL_LOCKING:
                with reduce_lock:
                    lock_count[0] += 1
                    reduce_groups(shared, raw)
            else:  # CHUNK_MERGE
                scratch = app.create_reduction_object()
                reduce_groups(scratch, raw)
                with reduce_lock:
                    lock_count[0] += 1
                    shared.merge(scratch)

    started = time.perf_counter()
    crew = [
        threading.Thread(target=worker, args=(tid,), daemon=True)
        for tid in range(threads)
    ]
    for thread in crew:
        thread.start()
    for thread in crew:
        thread.join()
    wall = time.perf_counter() - started

    if strategy is ShmemStrategy.FULL_REPLICATION:
        final = app.global_reduction(privates)
        copies = threads
        robj_bytes = sum(p.nbytes() for p in privates)
    else:
        final = app.global_reduction([shared])
        # CHUNK_MERGE keeps at most one scratch object per thread alive
        # alongside the shared one.
        copies = 1 + (threads if strategy is ShmemStrategy.CHUNK_MERGE else 0)
        robj_bytes = shared.nbytes() * copies
    stats = ShmemStats(
        strategy=strategy,
        threads=threads,
        wall_seconds=wall,
        robj_copies=copies,
        robj_bytes=robj_bytes,
        lock_acquisitions=lock_count[0],
    )
    return app.finalize(final), stats
