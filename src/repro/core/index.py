"""Data index: the metadata the head node turns into the job pool.

Section III-B: "A data index file is generated after analyzing the data set.
It holds metadata such as physical locations (data files), starting offset
addresses, size of chunks and number of data units inside the chunks. When
the head node starts, it reads the index file in order to generate the job
pool."

:class:`DataIndex` is the in-memory form; it serializes to/from JSON so it
can be written next to the dataset (the runtime does exactly that) and it
can also be synthesized directly from a :class:`~repro.config.DatasetSpec`
plus a :class:`~repro.config.PlacementSpec` (what the simulator does, since
it never materializes bytes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..config import CLOUD_SITE, LOCAL_SITE, DatasetSpec, PlacementSpec
from ..errors import IndexError_
from .job import Job

__all__ = ["FileEntry", "DataIndex", "build_index"]

_INDEX_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FileEntry:
    """One data file: where it lives and how it is chunked.

    ``checksum`` is the CRC-32 of the file's bytes when the dataset
    builder materialized it (``None`` for synthesized indices that never
    touch bytes, e.g. the simulator's); readers can verify integrity
    against it before trusting a retrieval path.
    """

    file_id: int
    site: str
    path: str  # storage key (object-store key or filesystem-relative path)
    nbytes: int
    chunk_bytes: int
    units_per_chunk: int
    checksum: int | None = None

    def __post_init__(self) -> None:
        if self.nbytes <= 0 or self.chunk_bytes <= 0 or self.units_per_chunk <= 0:
            raise IndexError_("file sizes and unit counts must be positive")
        if self.nbytes % self.chunk_bytes != 0:
            raise IndexError_(
                f"file {self.file_id} ({self.nbytes} B) is not a whole number "
                f"of {self.chunk_bytes}-byte chunks"
            )
        if self.checksum is not None and not 0 <= self.checksum < 2**32:
            raise IndexError_(f"file {self.file_id}: checksum out of CRC-32 range")

    @property
    def num_chunks(self) -> int:
        return self.nbytes // self.chunk_bytes


@dataclass
class DataIndex:
    """The full dataset index: an ordered list of file entries."""

    files: list[FileEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for entry in self.files:
            if entry.file_id in seen:
                raise IndexError_(f"duplicate file_id {entry.file_id} in index")
            seen.add(entry.file_id)

    # -- derived views -----------------------------------------------------

    @property
    def num_files(self) -> int:
        return len(self.files)

    @property
    def total_bytes(self) -> int:
        return sum(entry.nbytes for entry in self.files)

    @property
    def num_chunks(self) -> int:
        return sum(entry.num_chunks for entry in self.files)

    def files_at(self, site: str) -> list[FileEntry]:
        return [entry for entry in self.files if entry.site == site]

    def entry(self, file_id: int) -> FileEntry:
        for e in self.files:
            if e.file_id == file_id:
                return e
        raise IndexError_(f"no file with id {file_id} in index")

    def jobs(self) -> list[Job]:
        """Generate the job pool: one job per chunk, ids in file order.

        Consecutive job ids within a file correspond to consecutive byte
        ranges, which is what the head's sequential-assignment optimization
        relies on.
        """
        out: list[Job] = []
        job_id = 0
        for entry in self.files:
            for chunk_index in range(entry.num_chunks):
                out.append(
                    Job(
                        job_id=job_id,
                        file_id=entry.file_id,
                        chunk_index=chunk_index,
                        offset=chunk_index * entry.chunk_bytes,
                        nbytes=entry.chunk_bytes,
                        num_units=entry.units_per_chunk,
                        site=entry.site,
                    )
                )
                job_id += 1
        return out

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "format_version": _INDEX_FORMAT_VERSION,
            "files": [
                {
                    "file_id": e.file_id,
                    "site": e.site,
                    "path": e.path,
                    "nbytes": e.nbytes,
                    "chunk_bytes": e.chunk_bytes,
                    "units_per_chunk": e.units_per_chunk,
                    "checksum": e.checksum,
                }
                for e in self.files
            ],
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DataIndex":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise IndexError_(f"index is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or "files" not in doc:
            raise IndexError_("index JSON must be an object with a 'files' key")
        version = doc.get("format_version")
        if version != _INDEX_FORMAT_VERSION:
            raise IndexError_(
                f"unsupported index format version {version!r} "
                f"(expected {_INDEX_FORMAT_VERSION})"
            )
        try:
            files = [
                FileEntry(
                    file_id=int(f["file_id"]),
                    site=str(f["site"]),
                    path=str(f["path"]),
                    nbytes=int(f["nbytes"]),
                    chunk_bytes=int(f["chunk_bytes"]),
                    units_per_chunk=int(f["units_per_chunk"]),
                    checksum=(
                        int(f["checksum"])
                        if f.get("checksum") is not None
                        else None
                    ),
                )
                for f in doc["files"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexError_(f"malformed file entry in index: {exc}") from exc
        return cls(files=files)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "DataIndex":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def build_index(
    dataset: DatasetSpec,
    placement: PlacementSpec,
    *,
    path_prefix: str = "data/part",
) -> DataIndex:
    """Synthesize an index from a dataset shape and a placement.

    The first ``local_fraction * num_files`` files are placed at the local
    site, the rest in the cloud object store — matching the paper's setup
    where a contiguous prefix of the data stays on the campus storage node.
    """
    local_count = placement.local_files(dataset.num_files)
    units_per_chunk = dataset.chunk_bytes // dataset.record_bytes
    files = []
    for file_id in range(dataset.num_files):
        site = LOCAL_SITE if file_id < local_count else CLOUD_SITE
        files.append(
            FileEntry(
                file_id=file_id,
                site=site,
                path=f"{path_prefix}-{file_id:05d}.bin",
                nbytes=dataset.file_bytes,
                chunk_bytes=dataset.chunk_bytes,
                units_per_chunk=units_per_chunk,
            )
        )
    return DataIndex(files=files)
