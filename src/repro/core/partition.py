"""Dataset placement strategies.

The paper places a contiguous prefix of the files locally and the rest in
S3 (the ``env-*`` skews). That prefix strategy is the default in
:func:`repro.core.index.build_index`; this module adds alternatives used by
tests and ablations, plus helpers for reasoning about a placement.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..config import CLOUD_SITE, LOCAL_SITE, PlacementSpec
from ..errors import ConfigurationError

__all__ = [
    "prefix_placement",
    "interleaved_placement",
    "random_placement",
    "placement_summary",
]


def prefix_placement(num_files: int, spec: PlacementSpec) -> list[str]:
    """First ``local_fraction`` of files local, rest cloud (paper default)."""
    local = spec.local_files(num_files)
    return [LOCAL_SITE] * local + [CLOUD_SITE] * (num_files - local)


def interleaved_placement(num_files: int, spec: PlacementSpec) -> list[str]:
    """Spread local files evenly through the id space.

    With interleaving, consecutive *job ids* still stay within one file, so
    the sequential-read optimization is unaffected, but clusters exhaust
    their local files at different points in the run — a useful stress for
    the stealing policy.
    """
    local = spec.local_files(num_files)
    sites = [CLOUD_SITE] * num_files
    if local == 0:
        return sites
    stride = num_files / local
    for i in range(local):
        sites[min(num_files - 1, int(i * stride))] = LOCAL_SITE
    # Rounding collisions can drop a slot; repair deterministically.
    deficit = local - sites.count(LOCAL_SITE)
    for idx in range(num_files):
        if deficit == 0:
            break
        if sites[idx] == CLOUD_SITE:
            sites[idx] = LOCAL_SITE
            deficit -= 1
    return sites


def random_placement(
    num_files: int, spec: PlacementSpec, *, seed: int = 2011
) -> list[str]:
    """Uniform random placement with a fixed seed (property-test fodder)."""
    local = spec.local_files(num_files)
    rng = random.Random(seed)
    ids = list(range(num_files))
    rng.shuffle(ids)
    chosen = set(ids[:local])
    return [LOCAL_SITE if i in chosen else CLOUD_SITE for i in range(num_files)]


def placement_summary(sites: Sequence[str]) -> dict[str, int]:
    """Count files per site; validates site names."""
    out: dict[str, int] = {}
    for site in sites:
        if site not in (LOCAL_SITE, CLOUD_SITE):
            raise ConfigurationError(f"unknown site {site!r} in placement")
        out[site] = out.get(site, 0) + 1
    out.setdefault(LOCAL_SITE, 0)
    out.setdefault(CLOUD_SITE, 0)
    return out
