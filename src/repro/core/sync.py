"""Global-reduction sync planning: topology, codec state, streaming knobs.

Three levers shrink the paper's sync-time WAN tax (ROADMAP item 4), all
configured through one :class:`SyncSpec`:

* **encoding/compression** — what each cluster's combined reduction
  object looks like on the wire (:mod:`repro.core.wire`);
* **topology** — who ships to whom. ``star`` is the paper's layout
  (every master uploads straight to the head). ``tree`` aggregates
  through intermediate masters with a configurable fanout, so a shared
  head-ingress trunk carries ~log(n) sequentialized objects instead of
  n concurrent ones. ``ring`` is the fanout-1 chain: each master merges
  its predecessor's object before forwarding one combined object;
* **streaming** — slaves flush partial reduction objects every
  ``watermark`` jobs so masters (and the head) merge while slow slaves
  finish, instead of idling behind the barrier. Flushed jobs are
  *committed*: a slave that dies afterwards only re-executes work since
  its last flush.

The same :func:`build_sync_plan` drives the threaded runtime and both
simulators, so topology behavior is modeled and executed identically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .reduction import ReductionObject
from . import wire

__all__ = [
    "TOPOLOGIES",
    "SyncSpec",
    "SyncNode",
    "build_sync_plan",
    "plan_roots",
    "plan_depth",
    "SyncCodec",
]

#: Aggregation layouts across masters.
TOPOLOGIES = ("star", "tree", "ring")


@dataclass(frozen=True)
class SyncSpec:
    """Every sync-path knob, validated once.

    ``sim_ratio`` is the modeled wire/dense byte ratio the simulator
    charges for encoded uploads (1.0 = dense). The runtime measures the
    real ratio; benches feed it back into the simulator.
    """

    topology: str = "star"
    encoding: str = "dense"
    compress: str = "none"
    stream: bool = False
    watermark: int = 8
    fanout: int = 2
    sim_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown sync topology {self.topology!r}; "
                f"expected one of {TOPOLOGIES}"
            )
        if self.encoding not in wire.ENCODINGS:
            raise ConfigurationError(
                f"unknown sync encoding {self.encoding!r}; "
                f"expected one of {wire.ENCODINGS}"
            )
        if self.compress not in wire.COMPRESSIONS:
            raise ConfigurationError(
                f"unknown sync compression {self.compress!r}; "
                f"expected one of {wire.COMPRESSIONS}"
            )
        if self.compress == "lz4" and not wire.lz4_available():
            raise ConfigurationError(
                "sync_compress='lz4' requires the lz4 package, which is "
                "not installed on this host; use 'zlib'"
            )
        if self.watermark < 1:
            raise ConfigurationError("sync watermark must be at least 1")
        if self.fanout < 1:
            raise ConfigurationError("sync fanout must be at least 1")
        if not 0.0 < self.sim_ratio <= 1.0:
            raise ConfigurationError("sync sim_ratio must be in (0, 1]")

    @property
    def is_default(self) -> bool:
        """True when every knob matches the legacy star/dense/barrier
        path — callers then build none of the sync machinery at all."""
        return (
            self.topology == "star"
            and self.encoding == "dense"
            and self.compress == "none"
            and not self.stream
        )


@dataclass(frozen=True)
class SyncNode:
    """One cluster's place in the aggregation plan."""

    name: str
    parent: str | None  # None = uploads directly to the head
    children: tuple[str, ...] = ()


def build_sync_plan(
    clusters: list[str] | tuple[str, ...],
    topology: str,
    *,
    fanout: int = 2,
) -> dict[str, SyncNode]:
    """Lay the clusters out as an aggregation graph.

    The first cluster in ``clusters`` must be the one co-located with the
    head (the runtime and both simulators order them that way), so in
    tree and ring layouts the final WAN-free hop to the head is made by
    the head-site master. ``tree`` uses heap indexing (the parent of node
    ``i`` is ``(i-1)//fanout``); ``ring`` is the fanout-1 chain.
    """
    if not clusters:
        raise ConfigurationError("sync plan needs at least one cluster")
    if len(set(clusters)) != len(clusters):
        raise ConfigurationError(f"duplicate cluster names: {list(clusters)}")
    if topology not in TOPOLOGIES:
        raise ConfigurationError(f"unknown sync topology {topology!r}")
    names = list(clusters)
    if topology == "star" or len(names) == 1:
        return {name: SyncNode(name=name, parent=None) for name in names}
    step = 1 if topology == "ring" else fanout
    parents: dict[str, str | None] = {}
    children: dict[str, list[str]] = {name: [] for name in names}
    for i, name in enumerate(names):
        if i == 0:
            parents[name] = None
        else:
            parent = names[(i - 1) // step]
            parents[name] = parent
            children[parent].append(name)
    return {
        name: SyncNode(
            name=name, parent=parents[name], children=tuple(children[name])
        )
        for name in names
    }


def plan_roots(plan: dict[str, SyncNode]) -> list[str]:
    """Clusters that upload directly to the head, in plan order."""
    return [name for name, node in plan.items() if node.parent is None]


def plan_depth(plan: dict[str, SyncNode]) -> int:
    """Longest chain of uploads (1 for star: a single hop to the head)."""
    depth: dict[str, int] = {}

    def walk(name: str) -> int:
        if name not in depth:
            parent = plan[name].parent
            depth[name] = 1 if parent is None else walk(parent) + 1
        return depth[name]

    return max(walk(name) for name in plan)


@dataclass
class SyncStats:
    """Codec accounting, cumulative across iterative passes."""

    uploads: int = 0
    wire_bytes: int = 0
    dense_bytes: int = 0
    encodings: dict[str, int] = field(default_factory=dict)

    @property
    def bytes_saved(self) -> int:
        return self.dense_bytes - self.wire_bytes


class SyncCodec:
    """Thread-safe wire codec with per-channel delta baselines.

    A *channel* is a sender cluster name. Delta encoding diffs against
    the previous object sent on the same channel, so the encoder keeps
    the dense bytes it last produced per channel and the decoder keeps
    the dense bytes it last reconstructed — two separate stores, because
    encode and decode run in different node threads. The stores persist
    across iterative passes (the runtime driver owns one codec for the
    whole run), which is exactly what makes pass-N PageRank uploads tiny:
    the object barely changed since pass N-1.
    """

    def __init__(self, spec: SyncSpec) -> None:
        self.spec = spec
        self.stats = SyncStats()
        self._lock = threading.Lock()
        self._encode_baselines: dict[str, bytes] = {}
        self._decode_baselines: dict[str, bytes] = {}

    def encode(self, channel: str, robj: ReductionObject) -> wire.EncodedObject:
        with self._lock:
            baseline = self._encode_baselines.get(channel)
            encoded = wire.encode(
                robj,
                encoding=self.spec.encoding,
                compress=self.spec.compress,
                baseline=baseline,
            )
            self._encode_baselines[channel] = encoded.dense
            self.stats.uploads += 1
            self.stats.wire_bytes += len(encoded.blob)
            self.stats.dense_bytes += len(encoded.dense)
            self.stats.encodings[encoded.encoding] = (
                self.stats.encodings.get(encoded.encoding, 0) + 1
            )
            return encoded

    def decode(self, channel: str, blob: bytes) -> ReductionObject:
        with self._lock:
            baseline = self._decode_baselines.get(channel)
            decoded = wire.decode(blob, baseline=baseline)
            self._decode_baselines[channel] = decoded.dense
            return decoded.robj
