"""Head-node scheduling policy — shared by the runtime and the simulator.

This module is the heart of the reproduction: the job-assignment logic of
Section III-B, implemented once and driven both by the executable runtime
(:mod:`repro.runtime.head`) and by the discrete-event simulator
(:mod:`repro.sim.simnodes`), so the policy we evaluate is the policy that
runs.

Policy, verbatim from the paper:

* masters request groups of jobs on demand (pooling-based load balancing);
* "if there are locally available jobs in the cluster, the head node
  assigns a group of consecutive jobs to the requesting cluster" — the
  sequential-read optimization;
* "Once all local jobs belonging to a cluster are processed, the jobs that
  are still available from remote clusters are assigned. The remote jobs
  are chosen from files which the minimum number of nodes are currently
  processing" — work stealing with a contention-minimizing heuristic.

Both heuristics can be switched off via
:class:`~repro.config.MiddlewareTuning` for the ablation benches.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from ..config import MiddlewareTuning
from ..errors import SchedulingError
from .job import Job, JobGroup

__all__ = ["ClusterStats", "HeadScheduler"]


@dataclass
class ClusterStats:
    """Per-cluster assignment accounting (feeds Table I)."""

    site: str
    jobs_assigned: int = 0
    jobs_stolen: int = 0  # assigned jobs whose data lives at another site
    groups_assigned: int = 0
    groups_completed: int = 0
    files_touched: set[int] = field(default_factory=set)


class HeadScheduler:
    """Assigns job groups to requesting clusters.

    The scheduler is deterministic given its construction arguments: ties
    are broken by file id and the only randomness (the ablation's random
    stealing) draws from a seeded generator.
    """

    def __init__(
        self,
        jobs: list[Job],
        tuning: MiddlewareTuning | None = None,
        *,
        seed: int = 2011,
        trace=None,
    ) -> None:
        self.tuning = tuning or MiddlewareTuning()
        #: Optional trace sink with an ``emit(kind, **fields)`` method so
        #: steal decisions land on the timeline: the executable runtime
        #: passes its :class:`repro.obs.events.EventLog` directly, the
        #: simulator an adapter that re-stamps each event at ``env.now``
        #: (wall-clock stamps would be meaningless in simulated time).
        self.trace = trace
        self._rng = random.Random(seed)
        # Pending jobs per file, ordered by chunk index so consecutive
        # assignment is a prefix pop.
        self._pending: dict[int, deque[Job]] = {}
        self._file_site: dict[int, str] = {}
        for job in sorted(jobs, key=lambda j: (j.file_id, j.chunk_index)):
            self._pending.setdefault(job.file_id, deque()).append(job)
            prev = self._file_site.setdefault(job.file_id, job.site)
            if prev != job.site:
                raise SchedulingError(
                    f"file {job.file_id} appears at two sites ({prev}, {job.site})"
                )
        self._total_jobs = len(jobs)
        self._assigned_jobs = 0
        # file_id -> number of outstanding (assigned, unacknowledged) groups:
        # the "number of nodes currently processing" in the paper's heuristic.
        self._readers: dict[int, int] = {fid: 0 for fid in self._pending}
        self._group_site: dict[int, int] = {}  # group_id -> file_id
        self._group_owner: dict[int, str] = {}  # group_id -> cluster
        self._next_group_id = 0
        self.clusters: dict[str, ClusterStats] = {}
        # Remember each cluster's current file so consecutive requests keep
        # streaming the same file.
        self._current_file: dict[str, int | None] = {}

    # -- registration --------------------------------------------------------

    def register_cluster(self, name: str, site: str) -> None:
        if name in self.clusters:
            raise SchedulingError(f"cluster {name!r} registered twice")
        self.clusters[name] = ClusterStats(site=site)
        self._current_file[name] = None

    # -- introspection ---------------------------------------------------------

    @property
    def jobs_remaining(self) -> int:
        return self._total_jobs - self._assigned_jobs

    @property
    def exhausted(self) -> bool:
        return self.jobs_remaining == 0

    def pending_in_file(self, file_id: int) -> int:
        return len(self._pending.get(file_id, ()))

    def readers_of(self, file_id: int) -> int:
        return self._readers.get(file_id, 0)

    # -- the policy ------------------------------------------------------------

    def request_jobs(self, cluster: str, max_jobs: int | None = None) -> JobGroup | None:
        """Serve a master's job request; ``None`` when no jobs remain.

        ``max_jobs`` defaults to the tuning's ``job_group_size``. A returned
        group always draws from a single file; it is a consecutive chunk run
        when the sequential-assignment optimization is on.
        """
        stats = self._stats(cluster)
        if max_jobs is None:
            max_jobs = self.tuning.job_group_size
        if max_jobs <= 0:
            raise SchedulingError("max_jobs must be positive")
        if self.exhausted or not any(self._pending.values()):
            return None

        file_id, stolen = self._choose_file(cluster, stats.site)
        if file_id is None:
            return None
        jobs = self._pop_jobs(file_id, max_jobs)
        group = JobGroup(
            group_id=self._next_group_id, cluster=cluster, jobs=tuple(jobs)
        )
        self._next_group_id += 1
        self._readers[file_id] += 1
        self._group_site[group.group_id] = file_id
        self._group_owner[group.group_id] = cluster
        self._current_file[cluster] = file_id if self._pending.get(file_id) else None

        stats.jobs_assigned += len(jobs)
        stats.groups_assigned += 1
        stats.files_touched.add(file_id)
        if stolen:
            stats.jobs_stolen += len(jobs)
            if self.trace is not None:
                self.trace.emit(
                    "steal", cluster=cluster, file_id=file_id,
                    detail=f"group {group.group_id} x{len(jobs)} "
                    f"({self._readers[file_id] - 1} other readers)",
                )
        self._assigned_jobs += len(jobs)
        return group

    def complete_group(self, group_id: int) -> None:
        """Acknowledge a finished group; decrements its file's reader count."""
        file_id = self._group_site.pop(group_id, None)
        if file_id is None:
            raise SchedulingError(f"unknown or already-completed group {group_id}")
        self._readers[file_id] -= 1
        if self._readers[file_id] < 0:  # pragma: no cover - pop guard above
            raise SchedulingError(f"negative reader count on file {file_id}")
        owner = self._group_owner.pop(group_id)
        self.clusters[owner].groups_completed += 1

    # -- internals ---------------------------------------------------------------

    def _stats(self, cluster: str) -> ClusterStats:
        try:
            return self.clusters[cluster]
        except KeyError:
            raise SchedulingError(f"cluster {cluster!r} not registered") from None

    def _files_with_pending(self, site: str | None = None, invert: bool = False):
        out = []
        for fid, queue in self._pending.items():
            if not queue:
                continue
            is_at_site = site is not None and self._file_site[fid] == site
            if site is None or (is_at_site != invert):
                out.append(fid)
        return out

    def _choose_file(self, cluster: str, site: str) -> tuple[int | None, bool]:
        """Pick the file to draw from; returns ``(file_id, stolen)``."""
        local_files = self._files_with_pending(site)
        if local_files:
            # Keep streaming the file this cluster is already reading if it
            # still has pending local jobs; otherwise start the lowest-id
            # local file (deterministic, keeps reads sequential per file).
            current = self._current_file.get(cluster)
            if current in local_files:
                return current, False
            return min(local_files), False

        if not self.tuning.allow_stealing:
            return None, False
        remote_files = self._files_with_pending(site, invert=True)
        if not remote_files:
            return None, False
        if self.tuning.min_contention_stealing:
            # "files which the minimum number of nodes are currently
            # processing" — break ties by file id for determinism.
            chosen = min(remote_files, key=lambda fid: (self._readers[fid], fid))
        else:
            chosen = self._rng.choice(sorted(remote_files))
        return chosen, True

    def _pop_jobs(self, file_id: int, max_jobs: int) -> list[Job]:
        queue = self._pending[file_id]
        count = min(max_jobs, len(queue))
        if self.tuning.consecutive_assignment:
            return [queue.popleft() for _ in range(count)]
        # Ablation: draw from alternating ends, producing non-contiguous
        # chunk runs (defeats the sequential-read optimization) while
        # remaining deterministic.
        jobs: list[Job] = []
        for i in range(count):
            jobs.append(queue.popleft() if i % 2 == 0 else queue.pop())
        return jobs
