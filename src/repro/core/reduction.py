"""Reduction objects — the central data structure of Generalized Reduction.

Section III-A of the paper: the application developer designs a *reduction
object*; the middleware manages its allocation, merging, and movement. Each
data element is folded straight into the object by the ``local reduction``
function, and per-worker objects are later merged by ``global reduction``.

The contract every reduction object must satisfy (and which the property
tests enforce) is that ``merge`` is **commutative and associative** up to the
application's notion of equivalence, so that the result is independent of
the order in which the runtime processes data elements and merges workers'
objects.

This module provides the abstract protocol plus the implementations used by
the paper's three applications and the extra example apps:

* :class:`ArrayReduction` — a NumPy accumulator (kmeans, pagerank,
  histogram);
* :class:`DictReduction` — keyed accumulator (wordcount);
* :class:`TopKReduction` — k smallest scored items (k-nearest neighbors);
* :class:`ScalarReduction` — a single value;
* :class:`StructReduction` — a named bundle of the above (kmeans keeps
  per-centroid sums *and* counts).
"""

from __future__ import annotations

import abc
import pickle
import struct
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..errors import ReductionError

__all__ = [
    "ReductionObject",
    "ArrayReduction",
    "DictReduction",
    "TopKReduction",
    "ScalarReduction",
    "StructReduction",
    "from_bytes",
]


class ReductionObject(abc.ABC):
    """Abstract reduction object managed by the middleware.

    Subclasses must implement merge/serialize/size; equality of *values*
    (not object identity) is what the integration tests compare.
    """

    @abc.abstractmethod
    def merge(self, other: "ReductionObject") -> None:
        """Fold ``other`` into ``self`` (global reduction step).

        Must be commutative and associative; ``other`` is not modified.
        """

    @abc.abstractmethod
    def clone_empty(self) -> "ReductionObject":
        """Return a fresh, identity-element object of the same shape."""

    @abc.abstractmethod
    def nbytes(self) -> int:
        """Approximate serialized size, used for transfer-cost accounting.

        The paper's PageRank reduction object is ~300 MB and its transfer
        dominates sync time — this number is what the simulator charges.
        """

    @abc.abstractmethod
    def value(self) -> Any:
        """Extract the application-facing result."""

    @abc.abstractmethod
    def to_bytes(self) -> bytes:
        """Serialize for inter-cluster transfer."""

    # -- shared serialization envelope ------------------------------------

    _TYPE_TAGS: dict[str, type] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        ReductionObject._TYPE_TAGS[cls.__name__] = cls

    def _envelope(self, payload: bytes) -> bytes:
        tag = type(self).__name__.encode("ascii")
        return struct.pack("<I", len(tag)) + tag + payload


def from_bytes(blob: bytes) -> ReductionObject:
    """Deserialize a reduction object produced by :meth:`to_bytes`."""
    if len(blob) < 4:
        raise ReductionError("truncated reduction object blob")
    (tag_len,) = struct.unpack_from("<I", blob, 0)
    tag = blob[4 : 4 + tag_len].decode("ascii")
    payload = blob[4 + tag_len :]
    cls = ReductionObject._TYPE_TAGS.get(tag)
    if cls is None:
        raise ReductionError(f"unknown reduction object type {tag!r}")
    return cls._from_payload(payload)  # type: ignore[attr-defined]


class ArrayReduction(ReductionObject):
    """A fixed-shape NumPy accumulator with an elementwise combiner.

    ``op`` may be ``'sum'``, ``'min'``, or ``'max'``. The identity element
    is zeros for sum, +inf for min, -inf for max.
    """

    _IDENTITY = {"sum": 0.0, "min": np.inf, "max": -np.inf}
    _UFUNC = {"sum": np.add, "min": np.minimum, "max": np.maximum}

    def __init__(
        self,
        shape: tuple[int, ...] | int,
        dtype: Any = np.float64,
        op: str = "sum",
        data: np.ndarray | None = None,
    ) -> None:
        if op not in self._UFUNC:
            raise ReductionError(f"unsupported array combiner {op!r}")
        self.op = op
        if data is not None:
            self.data = np.asarray(data, dtype=dtype).copy()
        else:
            fill = self._IDENTITY[op]
            self.data = np.full(shape, fill, dtype=dtype)

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, ArrayReduction):
            raise ReductionError(
                f"cannot merge ArrayReduction with {type(other).__name__}"
            )
        if other.data.shape != self.data.shape or other.op != self.op:
            raise ReductionError("mismatched ArrayReduction shape or combiner")
        self._UFUNC[self.op](self.data, other.data, out=self.data)

    def clone_empty(self) -> "ArrayReduction":
        return ArrayReduction(self.data.shape, dtype=self.data.dtype, op=self.op)

    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def value(self) -> np.ndarray:
        return self.data

    def to_bytes(self) -> bytes:
        header = pickle.dumps((self.op, self.data.dtype.str, self.data.shape))
        payload = struct.pack("<I", len(header)) + header + self.data.tobytes()
        return self._envelope(payload)

    @classmethod
    def _from_payload(cls, payload: bytes) -> "ArrayReduction":
        (hlen,) = struct.unpack_from("<I", payload, 0)
        op, dtype_str, shape = pickle.loads(payload[4 : 4 + hlen])
        arr = np.frombuffer(payload[4 + hlen :], dtype=np.dtype(dtype_str))
        return cls(shape, dtype=np.dtype(dtype_str), op=op, data=arr.reshape(shape))


class DictReduction(ReductionObject):
    """A keyed accumulator: ``{key: value}`` with a binary combiner.

    ``combiner`` is a named combiner from :mod:`repro.core.combiners`
    (passed as its name so the object stays serializable) — e.g. ``'sum'``,
    ``'max'``, ``'concat'``.
    """

    def __init__(
        self,
        combiner: str = "sum",
        items: Mapping[Any, Any] | None = None,
    ) -> None:
        from .combiners import get_combiner  # local import: avoid cycle

        self.combiner_name = combiner
        self._combine: Callable[[Any, Any], Any] = get_combiner(combiner)
        self.items: dict[Any, Any] = dict(items) if items else {}
        #: Memoized pickled size; every mutation invalidates it, so size
        #: accounting is O(bytes) once per change burst instead of per call.
        self._nbytes_cache: int | None = None

    def add(self, key: Any, value: Any) -> None:
        """Fold one ``(key, value)`` pair into the object."""
        self._nbytes_cache = None
        if key in self.items:
            self.items[key] = self._combine(self.items[key], value)
        else:
            self.items[key] = value

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, DictReduction):
            raise ReductionError(
                f"cannot merge DictReduction with {type(other).__name__}"
            )
        if other.combiner_name != self.combiner_name:
            raise ReductionError("mismatched DictReduction combiners")
        for key, value in other.items.items():
            self.add(key, value)

    def clone_empty(self) -> "DictReduction":
        return DictReduction(self.combiner_name)

    def nbytes(self) -> int:
        # The estimate is the pickled size (what would cross the wire),
        # which is O(bytes) to compute — cache it between mutations.
        if self._nbytes_cache is None:
            self._nbytes_cache = len(
                pickle.dumps(self.items, protocol=pickle.HIGHEST_PROTOCOL)
            )
        return self._nbytes_cache

    def value(self) -> dict[Any, Any]:
        return self.items

    def to_bytes(self) -> bytes:
        payload = pickle.dumps(
            (self.combiner_name, self.items), protocol=pickle.HIGHEST_PROTOCOL
        )
        return self._envelope(payload)

    @classmethod
    def _from_payload(cls, payload: bytes) -> "DictReduction":
        combiner, items = pickle.loads(payload)
        return cls(combiner, items)


class TopKReduction(ReductionObject):
    """Keeps the ``k`` items with the smallest scores (kNN's neighbor set).

    Stored as parallel NumPy arrays (scores, payload ids) kept sorted
    ascending, so merging is a sorted merge + truncate. The identity is an
    empty set. Ties are broken by payload id for determinism, which is what
    makes the hypothesis order-independence test exact.
    """

    def __init__(
        self,
        k: int,
        scores: np.ndarray | None = None,
        ids: np.ndarray | None = None,
    ) -> None:
        if k <= 0:
            raise ReductionError("TopKReduction requires k >= 1")
        self.k = int(k)
        if scores is None:
            self.scores = np.empty(0, dtype=np.float64)
            self.ids = np.empty(0, dtype=np.int64)
        else:
            self.scores = np.asarray(scores, dtype=np.float64).copy()
            self.ids = np.asarray(ids, dtype=np.int64).copy()
            self._canonicalize()

    def _canonicalize(self) -> None:
        order = np.lexsort((self.ids, self.scores))
        self.scores = self.scores[order][: self.k]
        self.ids = self.ids[order][: self.k]

    def offer(self, scores: np.ndarray, ids: np.ndarray) -> None:
        """Fold a batch of candidate (score, id) pairs into the object.

        Vectorized: concatenate, lexsort, truncate. Called per unit-group by
        the knn local reduction, so the batch is cache-sized.
        """
        self.scores = np.concatenate([self.scores, np.asarray(scores, np.float64)])
        self.ids = np.concatenate([self.ids, np.asarray(ids, np.int64)])
        self._canonicalize()

    @property
    def worst(self) -> float:
        """Current kth-best score (+inf while fewer than k held)."""
        if len(self.scores) < self.k:
            return float("inf")
        return float(self.scores[-1])

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, TopKReduction):
            raise ReductionError(
                f"cannot merge TopKReduction with {type(other).__name__}"
            )
        if other.k != self.k:
            raise ReductionError("mismatched TopKReduction k")
        self.offer(other.scores, other.ids)

    def clone_empty(self) -> "TopKReduction":
        return TopKReduction(self.k)

    def nbytes(self) -> int:
        return int(self.scores.nbytes + self.ids.nbytes)

    def value(self) -> list[tuple[float, int]]:
        return [(float(s), int(i)) for s, i in zip(self.scores, self.ids)]

    def to_bytes(self) -> bytes:
        payload = pickle.dumps(
            (self.k, self.scores, self.ids), protocol=pickle.HIGHEST_PROTOCOL
        )
        return self._envelope(payload)

    @classmethod
    def _from_payload(cls, payload: bytes) -> "TopKReduction":
        k, scores, ids = pickle.loads(payload)
        return cls(k, scores, ids)


class ScalarReduction(ReductionObject):
    """A single accumulated value with a named combiner (``'sum'``/``'min'``/``'max'``)."""

    _IDENTITY = {"sum": 0.0, "min": float("inf"), "max": float("-inf")}

    def __init__(self, combiner: str = "sum", initial: float | None = None) -> None:
        if combiner not in self._IDENTITY:
            raise ReductionError(f"unsupported scalar combiner {combiner!r}")
        self.combiner_name = combiner
        self.val = self._IDENTITY[combiner] if initial is None else float(initial)

    def add(self, x: float) -> None:
        if self.combiner_name == "sum":
            self.val += x
        elif self.combiner_name == "min":
            self.val = min(self.val, x)
        else:
            self.val = max(self.val, x)

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, ScalarReduction):
            raise ReductionError(
                f"cannot merge ScalarReduction with {type(other).__name__}"
            )
        if other.combiner_name != self.combiner_name:
            raise ReductionError("mismatched ScalarReduction combiners")
        self.add(other.val)

    def clone_empty(self) -> "ScalarReduction":
        return ScalarReduction(self.combiner_name)

    def nbytes(self) -> int:
        return 8

    def value(self) -> float:
        return self.val

    def to_bytes(self) -> bytes:
        return self._envelope(pickle.dumps((self.combiner_name, self.val)))

    @classmethod
    def _from_payload(cls, payload: bytes) -> "ScalarReduction":
        combiner, val = pickle.loads(payload)
        return cls(combiner, val)


class StructReduction(ReductionObject):
    """A named bundle of reduction objects merged field-by-field.

    kmeans uses ``{'sums': ArrayReduction(k, d), 'counts': ArrayReduction(k)}``.
    """

    def __init__(self, fields: Mapping[str, ReductionObject]) -> None:
        if not fields:
            raise ReductionError("StructReduction requires at least one field")
        self.fields: dict[str, ReductionObject] = dict(fields)

    def __getitem__(self, name: str) -> ReductionObject:
        return self.fields[name]

    def merge(self, other: ReductionObject) -> None:
        if not isinstance(other, StructReduction):
            raise ReductionError(
                f"cannot merge StructReduction with {type(other).__name__}"
            )
        if set(other.fields) != set(self.fields):
            raise ReductionError("mismatched StructReduction fields")
        for name, robj in self.fields.items():
            robj.merge(other.fields[name])

    def clone_empty(self) -> "StructReduction":
        return StructReduction(
            {name: robj.clone_empty() for name, robj in self.fields.items()}
        )

    def nbytes(self) -> int:
        return sum(robj.nbytes() for robj in self.fields.values())

    def value(self) -> dict[str, Any]:
        return {name: robj.value() for name, robj in self.fields.items()}

    def to_bytes(self) -> bytes:
        blob = pickle.dumps(
            {name: robj.to_bytes() for name, robj in self.fields.items()},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return self._envelope(blob)

    @classmethod
    def _from_payload(cls, payload: bytes) -> "StructReduction":
        encoded: dict[str, bytes] = pickle.loads(payload)
        return cls({name: from_bytes(blob) for name, blob in encoded.items()})


def merge_all(objects: Iterable[ReductionObject]) -> ReductionObject:
    """Merge a sequence of reduction objects into one (left fold).

    Raises :class:`ReductionError` on an empty sequence — the runtime always
    has at least one worker.
    """
    it = iter(objects)
    try:
        first = next(it)
    except StopIteration:
        raise ReductionError("cannot merge zero reduction objects") from None
    acc = first.clone_empty()
    acc.merge(first)
    for obj in it:
        acc.merge(obj)
    return acc
