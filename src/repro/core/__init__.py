"""Core of the reproduction: the Generalized Reduction API and the
head-node scheduling policy shared by the executable runtime and the
discrete-event simulator."""

from .api import GeneralizedReductionApp, run_serial
from .combiners import available_combiners, get_combiner, register_combiner
from .index import DataIndex, FileEntry, build_index
from .job import Job, JobGroup
from .jobpool import JobPool
from .reduction import (
    ArrayReduction,
    DictReduction,
    ReductionObject,
    ScalarReduction,
    StructReduction,
    TopKReduction,
    from_bytes,
    merge_all,
)
from .scheduler import ClusterStats, HeadScheduler
from .shmem import ShmemStats, ShmemStrategy, run_threaded

__all__ = [
    "GeneralizedReductionApp",
    "run_serial",
    "available_combiners",
    "get_combiner",
    "register_combiner",
    "DataIndex",
    "FileEntry",
    "build_index",
    "Job",
    "JobGroup",
    "JobPool",
    "ArrayReduction",
    "DictReduction",
    "ReductionObject",
    "ScalarReduction",
    "StructReduction",
    "TopKReduction",
    "from_bytes",
    "merge_all",
    "ClusterStats",
    "HeadScheduler",
    "ShmemStats",
    "ShmemStrategy",
    "run_threaded",
]
