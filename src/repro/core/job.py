"""Jobs and job groups.

One job corresponds to one logical chunk of the dataset (Section III-B:
"Each job in job pool corresponds to a chunk in data set"). A job carries
everything a slave needs to retrieve and process the chunk: the file it
lives in, the byte range, the number of data units, and the site hosting
the file.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError

__all__ = ["Job", "JobGroup"]


@dataclass(frozen=True, order=True)
class Job:
    """An atomic unit of work: process one chunk.

    Ordering is by ``job_id`` so that "consecutive jobs" (the sequential
    read optimization) is well-defined.
    """

    job_id: int
    file_id: int
    chunk_index: int  # index of the chunk within its file
    offset: int  # byte offset of the chunk within the file
    nbytes: int  # chunk size in bytes
    num_units: int  # data units inside the chunk
    site: str  # site hosting the file (LOCAL_SITE / CLOUD_SITE)

    def __post_init__(self) -> None:
        if self.job_id < 0 or self.file_id < 0 or self.chunk_index < 0:
            raise SchedulingError("job ids and indices must be non-negative")
        if self.offset < 0 or self.nbytes <= 0 or self.num_units <= 0:
            raise SchedulingError("job byte range and unit count must be positive")

    def is_local_to(self, site: str) -> bool:
        """True when the chunk's file is hosted at ``site``."""
        return self.site == site


@dataclass(frozen=True)
class JobGroup:
    """A batch of jobs the head hands to one master in a single reply.

    The head prefers groups of *consecutive* jobs from a single file so
    slaves can stream them with sequential reads. ``group_id`` lets masters
    acknowledge completion so the head can maintain per-file reader counts.
    """

    group_id: int
    cluster: str
    jobs: tuple[Job, ...]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise SchedulingError("a job group must contain at least one job")
        files = {job.file_id for job in self.jobs}
        if len(files) != 1:
            raise SchedulingError(
                f"a job group must draw from a single file, got files {sorted(files)}"
            )

    @property
    def file_id(self) -> int:
        return self.jobs[0].file_id

    @property
    def site(self) -> str:
        return self.jobs[0].site

    def __len__(self) -> int:
        return len(self.jobs)

    def is_consecutive(self) -> bool:
        """True when the group's chunk indices form a contiguous run."""
        idx = sorted(job.chunk_index for job in self.jobs)
        return all(b - a == 1 for a, b in zip(idx, idx[1:]))
