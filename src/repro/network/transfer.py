"""Closed-form transfer-time estimates.

The discrete-event simulator models links dynamically (flows come and go —
:mod:`repro.sim.linkmodel`); this module provides the *static* estimates
used for back-of-envelope checks, the analytical bench baselines, and tests
that pin the dynamic model against the closed form in steady state.
"""

from __future__ import annotations

from collections import Counter

from ..core.sync import build_sync_plan
from ..errors import ConfigurationError
from .topology import Link

__all__ = [
    "transfer_time",
    "message_time",
    "parallel_transfer_time",
    "sync_aggregation_time",
]


def transfer_time(link: Link, nbytes: int, *, concurrent_flows: int = 1) -> float:
    """Time for one flow of ``nbytes`` when ``concurrent_flows`` share the link."""
    if nbytes < 0:
        raise ConfigurationError("cannot transfer a negative byte count")
    rate = link.flow_rate(concurrent_flows)
    return link.latency + nbytes / rate


def message_time(link: Link, nbytes: int = 1024) -> float:
    """Time for a small control message (job request/assignment, ack)."""
    return transfer_time(link, nbytes)


def parallel_transfer_time(link: Link, nbytes: int, connections: int) -> float:
    """Time to move ``nbytes`` split evenly over ``connections`` flows.

    This is the multi-threaded-retrieval estimate: with a per-flow cap the
    aggregate rate is ``min(bandwidth, connections * cap)``, so adding
    connections helps until the trunk saturates.
    """
    if nbytes < 0:
        raise ConfigurationError("cannot transfer a negative byte count")
    if connections <= 0:
        raise ConfigurationError("connection count must be positive")
    aggregate = link.bandwidth
    if link.per_flow_cap is not None:
        aggregate = min(aggregate, connections * link.per_flow_cap)
    return link.latency + nbytes / aggregate


def sync_aggregation_time(
    link: Link,
    nbytes: int,
    clusters: int,
    *,
    merge_seconds: float = 0.0,
    topology: str = "star",
    fanout: int = 2,
) -> float:
    """Closed-form end-of-pass sync estimate for ``clusters`` masters
    shipping ``nbytes`` reduction objects over one shared ``link``.

    The aggregation plan (:func:`repro.core.sync.build_sync_plan`) is
    walked level by level, deepest first: every cluster at a level ships
    concurrently (sharing the link fairly), then each receiving parent
    merges its arrivals serially at ``merge_seconds`` apiece. Under
    ``star`` this degenerates to one n-way shared transfer plus n head
    merges; under ``ring`` to n sequential single-flow hops; ``tree``
    sits in between, trading a ~log(n) hop chain for never putting more
    than a level's worth of flows on the trunk at once.

    This deliberately ignores compute overlap and site asymmetry — it is
    the steady-state bound the dynamic simulator is pinned against, and
    the narration baseline for ``benchmarks/bench_sync.py``.
    """
    if nbytes < 0:
        raise ConfigurationError("cannot transfer a negative byte count")
    if clusters <= 0:
        raise ConfigurationError("cluster count must be positive")
    if merge_seconds < 0:
        raise ConfigurationError("merge time must be non-negative")
    plan = build_sync_plan(
        [f"c{i}" for i in range(clusters)], topology, fanout=fanout
    )
    depth: dict[str, int] = {}

    def walk(name: str) -> int:
        if name not in depth:
            parent = plan[name].parent
            depth[name] = 1 if parent is None else walk(parent) + 1
        return depth[name]

    levels: dict[int, list[str]] = {}
    for name in plan:
        levels.setdefault(walk(name), []).append(name)
    total = 0.0
    for d in sorted(levels, reverse=True):
        senders = levels[d]
        total += transfer_time(link, nbytes, concurrent_flows=len(senders))
        # Parents merge their arrivals serially; parallel across parents
        # (``None`` = the head node itself).
        fan_in = Counter(plan[name].parent for name in senders)
        total += max(fan_in.values()) * merge_seconds
    return total
