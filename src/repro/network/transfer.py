"""Closed-form transfer-time estimates.

The discrete-event simulator models links dynamically (flows come and go —
:mod:`repro.sim.linkmodel`); this module provides the *static* estimates
used for back-of-envelope checks, the analytical bench baselines, and tests
that pin the dynamic model against the closed form in steady state.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .topology import Link

__all__ = ["transfer_time", "message_time", "parallel_transfer_time"]


def transfer_time(link: Link, nbytes: int, *, concurrent_flows: int = 1) -> float:
    """Time for one flow of ``nbytes`` when ``concurrent_flows`` share the link."""
    if nbytes < 0:
        raise ConfigurationError("cannot transfer a negative byte count")
    rate = link.flow_rate(concurrent_flows)
    return link.latency + nbytes / rate


def message_time(link: Link, nbytes: int = 1024) -> float:
    """Time for a small control message (job request/assignment, ack)."""
    return transfer_time(link, nbytes)


def parallel_transfer_time(link: Link, nbytes: int, connections: int) -> float:
    """Time to move ``nbytes`` split evenly over ``connections`` flows.

    This is the multi-threaded-retrieval estimate: with a per-flow cap the
    aggregate rate is ``min(bandwidth, connections * cap)``, so adding
    connections helps until the trunk saturates.
    """
    if nbytes < 0:
        raise ConfigurationError("cannot transfer a negative byte count")
    if connections <= 0:
        raise ConfigurationError("connection count must be positive")
    aggregate = link.bandwidth
    if link.per_flow_cap is not None:
        aggregate = min(aggregate, connections * link.per_flow_cap)
    return link.latency + nbytes / aggregate
