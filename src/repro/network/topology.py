"""Network topology: sites and the links between them.

Two sites exist in the paper's deployment — the campus cluster and AWS —
with three link classes that matter to the middleware:

* intra-cluster (Infiniband / EC2 internal): fast, effectively never the
  bottleneck for control messages;
* storage-to-compute at one site (storage node -> local slaves, S3 -> EC2);
* the WAN between sites (S3 -> local slaves and the reduction-object
  exchange), which is where cloud bursting's overheads live.

A :class:`Link` is described by latency, aggregate bandwidth, and an
optional per-flow bandwidth cap (an S3 connection cannot exceed a few tens
of MB/s no matter how idle the trunk is, which is exactly why the paper's
slaves open multiple retrieval threads).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["Link", "Topology"]


@dataclass(frozen=True)
class Link:
    """A directed network path between two endpoints."""

    src: str
    dst: str
    bandwidth: float  # aggregate bytes/second
    latency: float = 0.0  # one-way seconds
    per_flow_cap: float | None = None  # bytes/second per connection

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(f"link {self.src}->{self.dst}: bandwidth must be positive")
        if self.latency < 0:
            raise ConfigurationError(f"link {self.src}->{self.dst}: negative latency")
        if self.per_flow_cap is not None and self.per_flow_cap <= 0:
            raise ConfigurationError(
                f"link {self.src}->{self.dst}: per_flow_cap must be positive"
            )

    def flow_rate(self, concurrent_flows: int) -> float:
        """Fair-share rate of one flow among ``concurrent_flows``."""
        if concurrent_flows <= 0:
            raise ConfigurationError("flow count must be positive")
        share = self.bandwidth / concurrent_flows
        if self.per_flow_cap is not None:
            share = min(share, self.per_flow_cap)
        return share


@dataclass
class Topology:
    """Directed link table keyed by ``(src, dst)`` endpoint names."""

    links: dict[tuple[str, str], Link] = field(default_factory=dict)

    def add(self, link: Link) -> None:
        key = (link.src, link.dst)
        if key in self.links:
            raise ConfigurationError(f"duplicate link {key}")
        self.links[key] = link

    def add_symmetric(self, link: Link) -> None:
        """Add the link and its mirror (same parameters both ways)."""
        self.add(link)
        self.add(
            Link(
                src=link.dst,
                dst=link.src,
                bandwidth=link.bandwidth,
                latency=link.latency,
                per_flow_cap=link.per_flow_cap,
            )
        )

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise ConfigurationError(f"no link {src!r} -> {dst!r} in topology") from None

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self.links
