"""Network substrate: topology description and transfer cost models."""

from .topology import Link, Topology
from .transfer import (
    message_time,
    parallel_transfer_time,
    sync_aggregation_time,
    transfer_time,
)

__all__ = [
    "Link",
    "Topology",
    "message_time",
    "parallel_transfer_time",
    "sync_aggregation_time",
    "transfer_time",
]
