"""repro — a reproduction of *A Framework for Data-Intensive Computing
with Cloud Bursting* (Bicer, Chiu, Agrawal; IEEE CLUSTER 2011).

The package provides:

* the **Generalized Reduction** programming API and its middleware
  (head / master / slave, pooling load balancing, locality-aware job
  assignment, work stealing) — :mod:`repro.core`, :mod:`repro.runtime`;
* every substrate the paper depends on, built from scratch: data
  organization (:mod:`repro.data`), storage services (:mod:`repro.storage`),
  network and cluster models (:mod:`repro.network`, :mod:`repro.cluster`);
* a **discrete-event simulator** standing in for the paper's
  campus-cluster + EC2/S3 testbed (:mod:`repro.sim`);
* the three evaluation applications plus extras (:mod:`repro.apps`),
  baselines (:mod:`repro.baselines`), and the benchmark harness that
  regenerates every table and figure (:mod:`repro.bench`).

Quickstart::

    from repro import simulate, env_config

    report = simulate(env_config("knn", "env-50/50"))
    print(report.makespan, report.total_stolen)

See ``examples/quickstart.py`` for the executable-runtime path.
"""

from .apps import AppBundle, AppProfile, available_apps, make_bundle
from .bench import (
    env_config,
    figure3_configs,
    figure4_configs,
    run_figure3,
    run_figure4,
)
from .config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    ExperimentConfig,
    MiddlewareTuning,
    PlacementSpec,
)
from .core import GeneralizedReductionApp, ReductionObject, run_serial
from .errors import ReproError
from .runtime import CloudBurstingRuntime, run_centralized, run_iterative
from .sim import PAPER_CALIBRATION, SimCalibration, SimReport, simulate

__version__ = "1.0.0"

__all__ = [
    "AppBundle",
    "AppProfile",
    "available_apps",
    "make_bundle",
    "env_config",
    "figure3_configs",
    "figure4_configs",
    "run_figure3",
    "run_figure4",
    "CLOUD_SITE",
    "LOCAL_SITE",
    "ComputeSpec",
    "DatasetSpec",
    "ExperimentConfig",
    "MiddlewareTuning",
    "PlacementSpec",
    "GeneralizedReductionApp",
    "ReductionObject",
    "run_serial",
    "ReproError",
    "CloudBurstingRuntime",
    "run_centralized",
    "run_iterative",
    "PAPER_CALIBRATION",
    "SimCalibration",
    "SimReport",
    "simulate",
    "__version__",
]
