"""repro — a reproduction of *A Framework for Data-Intensive Computing
with Cloud Bursting* (Bicer, Chiu, Agrawal; IEEE CLUSTER 2011).

The package provides:

* the **Generalized Reduction** programming API and its middleware
  (head / master / slave, pooling load balancing, locality-aware job
  assignment, work stealing) — :mod:`repro.core`, :mod:`repro.runtime`;
* every substrate the paper depends on, built from scratch: data
  organization (:mod:`repro.data`), storage services (:mod:`repro.storage`),
  network and cluster models (:mod:`repro.network`, :mod:`repro.cluster`);
* a **discrete-event simulator** standing in for the paper's
  campus-cluster + EC2/S3 testbed (:mod:`repro.sim`);
* the three evaluation applications plus extras (:mod:`repro.apps`),
  baselines (:mod:`repro.baselines`), and the benchmark harness that
  regenerates every table and figure (:mod:`repro.bench`).

Quickstart — one facade for every engine::

    import repro

    dataset = repro.DatasetSpec(
        total_bytes=32768, num_files=4, chunk_bytes=2048, record_bytes=4
    )
    result = repro.run("wordcount", dataset, repro.RunConfig(mode="runtime"))
    print(result.value, result.telemetry.retries)

:func:`repro.run` drives the serial oracle, the simulator, or the real
runtime depending on ``RunConfig.mode``; the older per-engine
entrypoints (:func:`run_serial`, :func:`simulate`,
:class:`CloudBurstingRuntime`) remain as thin stable shims over the same
machinery. See ``examples/quickstart.py`` and ``docs/RESILIENCE.md``.
"""

from .apps import AppBundle, AppProfile, available_apps, make_bundle
from .cache import CacheStats, ChunkCache, Prefetcher
from .clock import SYSTEM_CLOCK, FakeClock, SystemClock
from .bench import (
    env_config,
    figure3_configs,
    figure4_configs,
    run_figure3,
    run_figure4,
)
from .config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    ExperimentConfig,
    MiddlewareTuning,
    PlacementSpec,
)
from .core import GeneralizedReductionApp, ReductionObject, run_serial
from .core.sync import SyncSpec
from .errors import ReproError
from .facade import RunConfig, RunResult, run, run_direct
from .options import (
    CacheOptions,
    MonitorOptions,
    ResilienceOptions,
    ScaleOptions,
    SyncOptions,
)
from .resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
)
from .runtime import CloudBurstingRuntime, run_centralized, run_iterative
from .scale import Autoscaler, RevocationSpec, ScaleDecision
from .service import JobService, RunHandle, RunState, RunStatus, TenantSpec
from .sim import PAPER_CALIBRATION, SimCalibration, SimReport, simulate

__version__ = "1.0.0"

__all__ = [
    "AppBundle",
    "AppProfile",
    "available_apps",
    "make_bundle",
    "CacheStats",
    "ChunkCache",
    "Prefetcher",
    "FakeClock",
    "SystemClock",
    "SYSTEM_CLOCK",
    "env_config",
    "figure3_configs",
    "figure4_configs",
    "run_figure3",
    "run_figure4",
    "CLOUD_SITE",
    "LOCAL_SITE",
    "ComputeSpec",
    "DatasetSpec",
    "ExperimentConfig",
    "MiddlewareTuning",
    "PlacementSpec",
    "GeneralizedReductionApp",
    "ReductionObject",
    "SyncSpec",
    "run_serial",
    "run",
    "run_direct",
    "RunConfig",
    "RunResult",
    "CacheOptions",
    "SyncOptions",
    "MonitorOptions",
    "ResilienceOptions",
    "ScaleOptions",
    "Autoscaler",
    "ScaleDecision",
    "RevocationSpec",
    "JobService",
    "TenantSpec",
    "RunHandle",
    "RunState",
    "RunStatus",
    "CircuitBreaker",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "ReproError",
    "CloudBurstingRuntime",
    "run_centralized",
    "run_iterative",
    "PAPER_CALIBRATION",
    "SimCalibration",
    "SimReport",
    "simulate",
    "__version__",
]
