"""Simulated middleware nodes: master and slave processes.

These drive the *same* :class:`~repro.core.scheduler.HeadScheduler` and
:class:`~repro.core.jobpool.JobPool` the executable runtime uses — the
simulator only replaces bytes with costs. A master is a passive object
whose fetch logic runs as short-lived processes (one per head exchange,
paying the control round-trip); slaves are long-lived processes that loop
retrieve -> process until the global job supply is exhausted.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..core.job import Job
from ..core.jobpool import JobPool
from ..core.scheduler import HeadScheduler
from .computemodel import ComputeModel
from .engine import Environment, Event
from .metrics import SlaveMetrics
from .trace import TraceRecorder

__all__ = ["SimMaster", "SimSlave", "FetchFn", "LeaseFn"]

#: ``fetch(job, slave_site, retrieval_threads) -> Event``. The callback owns
#: the path choice *and* the connection-count decision (a local disk read is
#: one sequential stream; object-store and cross-site fetches use the
#: configured retrieval threads).
FetchFn = Callable[[Job, str, int], Event]

#: ``lease(worker_id, jobs_processed) -> bool``: checked at every job
#: boundary before the slave asks for more work. ``False`` means the
#: instance is gone — retired by the autoscaler or revoked by the spot
#: market (see :class:`repro.scale.simmodel.ClusterBurst`) — and the slave
#: exits its loop cleanly. Leaving at the boundary loses no job, so the
#: report invariant "jobs processed == jobs assigned" holds unchanged.
LeaseFn = Callable[[int, int], bool]


class SimMaster:
    """Cluster master: keeps the slave-facing job pool filled from the head."""

    def __init__(
        self,
        env: Environment,
        name: str,
        site: str,
        scheduler: HeadScheduler,
        *,
        control_rtt: float,
        low_water: int,
        group_size: int,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.env = env
        self.name = name
        self.site = site
        self.scheduler = scheduler
        self.control_rtt = control_rtt
        self.group_size = group_size
        self.trace = trace
        self.pool = JobPool(low_water=low_water)
        self._waiters: deque[Event] = deque()
        self._fetching = False
        self._no_more = False
        self.head_exchanges = 0

    # -- static-assignment mode (ablation baseline) ----------------------------

    def preload(self, group) -> None:
        """Add a head-assigned group up front (static-split ablation)."""
        self.pool.add_group(group)

    def close_intake(self) -> None:
        """No further head exchanges: the pool is all this cluster gets.

        Used by the static-assignment baseline, which pre-partitions the
        job pool instead of letting masters request on demand — the
        load-balancing strategy the paper's pooling design replaces.
        """
        self._no_more = True

    # -- observability (the autoscaler's provisioner polls these) ------------

    @property
    def done(self) -> bool:
        """True once the head has no more jobs for us and ours are finished."""
        return self._no_more and self.pool.drained

    @property
    def idle_slaves(self) -> int:
        """Slaves currently parked waiting for the pool to refill."""
        return len(self._waiters)

    # -- slave-facing ---------------------------------------------------------

    def get_job(self):
        """Generator (``yield from``): next job, or ``None`` at end of run."""
        while True:
            job = self.pool.take()
            if job is not None:
                self._maybe_prefetch()
                return job
            if self._no_more:
                return None
            event = self.env.event()
            self._waiters.append(event)
            self._maybe_prefetch()
            yield event

    def job_done(self, job: Job) -> None:
        """Record completion; acknowledges finished groups to the head."""
        group_id = self.pool.mark_done(job.job_id)
        if group_id is not None:
            self.env.process(self._ack(group_id), name=f"ack:{self.name}:{group_id}")

    # -- head exchanges ----------------------------------------------------------

    def _ack(self, group_id: int):
        yield self.env.timeout(self.control_rtt / 2.0)
        self.scheduler.complete_group(group_id)
        if self.trace is not None:
            self.trace.record(
                self.env.now, "group_acked", cluster=self.name,
                detail=f"group {group_id}",
            )

    def _maybe_prefetch(self) -> None:
        if self._fetching or self._no_more:
            return
        if self.pool.needs_refill or self._waiters:
            self._fetching = True
            self.env.process(self._fetch(), name=f"fetch:{self.name}")

    def _fetch(self):
        yield self.env.timeout(self.control_rtt)
        self.head_exchanges += 1
        group = self.scheduler.request_jobs(self.name, self.group_size)
        if group is None:
            self._no_more = True
        else:
            self.pool.add_group(group)
            if self.trace is not None:
                self.trace.record(
                    self.env.now, "group_assigned", cluster=self.name,
                    file_id=group.file_id,
                    detail=f"group {group.group_id} x{len(group)}",
                )
        self._fetching = False
        self._wake_waiters()
        self._maybe_prefetch()

    def _wake_waiters(self) -> None:
        while self._waiters:
            self._waiters.popleft().succeed()


class SimSlave:
    """One worker core: retrieve chunk, run local reduction, repeat."""

    def __init__(
        self,
        env: Environment,
        worker_id: int,
        site: str,
        master: SimMaster,
        fetch: FetchFn,
        compute: ComputeModel,
        *,
        retrieval_threads: int,
        trace: TraceRecorder | None = None,
        lease: LeaseFn | None = None,
    ) -> None:
        self.env = env
        self.worker_id = worker_id
        self.site = site
        self.master = master
        self.fetch = fetch
        self.compute = compute
        self.retrieval_threads = retrieval_threads
        self.trace = trace
        #: Optional per-job-boundary liveness check (elastic bursting):
        #: when it answers ``False`` the instance is gone and the loop
        #: exits before taking another job.
        self.lease = lease
        self.metrics = SlaveMetrics(worker_id=worker_id)

    def run(self):
        """The slave process body (pass to ``env.process``)."""
        metrics = self.metrics
        while True:
            if self.lease is not None and not self.lease(
                self.worker_id, metrics.jobs
            ):
                break
            job = yield from self.master.get_job()
            if job is None:
                break
            started = self.env.now
            trace = self.trace
            if trace is not None:
                trace.record(
                    started, "fetch_start", cluster=self.master.name,
                    worker=self.worker_id, job_id=job.job_id,
                    file_id=job.file_id,
                )
            yield self.fetch(job, self.site, self.retrieval_threads)
            metrics.retrieval += self.env.now - started
            if trace is not None:
                trace.record(
                    self.env.now, "fetch_end", cluster=self.master.name,
                    worker=self.worker_id, job_id=job.job_id,
                    file_id=job.file_id,
                )
            seconds = self.compute.job_seconds(
                self.site, self.worker_id, job.num_units
            )
            if trace is not None:
                trace.record(
                    self.env.now, "compute_start", cluster=self.master.name,
                    worker=self.worker_id, job_id=job.job_id,
                )
            yield self.env.timeout(seconds)
            metrics.processing += seconds
            metrics.jobs += 1
            if trace is not None:
                trace.record(
                    self.env.now, "compute_end", cluster=self.master.name,
                    worker=self.worker_id, job_id=job.job_id,
                )
                trace.record(
                    self.env.now, "job_done", cluster=self.master.name,
                    worker=self.worker_id, job_id=job.job_id,
                )
            self.master.job_done(job)
        metrics.finish_time = self.env.now
