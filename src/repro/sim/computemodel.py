"""Simulated compute costs.

A slave's processing time for one job is

    ``num_units x unit_cost(site) x jitter(worker)``

where ``unit_cost`` comes from the application's
:class:`~repro.apps.base.AppProfile` (per-unit seconds on a campus core,
times the app's EC2 slowdown on cloud cores) and ``jitter`` is the seeded
lognormal of :mod:`repro.cluster.variability` — large for EC2's virtualized
cores, small for bare metal. Reduction-object handling costs (intra-cluster
combine and the head's final merge) are charged per byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..apps.base import AppProfile
from ..cluster.variability import VariabilityModel
from ..config import CLOUD_SITE, LOCAL_SITE
from ..errors import SimulationError

__all__ = ["ComputeModel"]


@dataclass
class ComputeModel:
    """Per-site compute cost model for one application."""

    profile: AppProfile
    variability: dict[str, VariabilityModel]
    #: seconds per byte to merge two reduction objects (head + combine)
    merge_seconds_per_byte: float = 1.0 / (2.0 * 1024**3)
    #: Optional per-site compute-slowdown factors (multiplied into the
    #: profile's local unit cost). When ``None`` the two-site paper model
    #: applies: 1.0 locally, ``profile.cloud_slowdown`` in the cloud. The
    #: N-site simulator supplies explicit factors per provider.
    site_slowdowns: dict[str, float] | None = None
    _samplers: dict[tuple[str, int], Callable[[], float]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        required = (
            tuple(self.site_slowdowns)
            if self.site_slowdowns is not None
            else (LOCAL_SITE, CLOUD_SITE)
        )
        for site in required:
            if site not in self.variability:
                raise SimulationError(f"no variability model for site {site!r}")
        if self.site_slowdowns is not None:
            for site, factor in self.site_slowdowns.items():
                if factor <= 0:
                    raise SimulationError(
                        f"site {site!r}: compute slowdown must be positive"
                    )
        if self.merge_seconds_per_byte < 0:
            raise SimulationError("merge cost cannot be negative")

    def unit_cost(self, site: str) -> float:
        """Per-unit compute seconds at ``site``."""
        if self.site_slowdowns is not None:
            try:
                return self.profile.unit_cost_local * self.site_slowdowns[site]
            except KeyError:
                raise SimulationError(f"no compute slowdown for site {site!r}") from None
        return self.profile.unit_cost(site)

    def job_seconds(self, site: str, worker_id: int, num_units: int) -> float:
        """Compute time for one job on one core at ``site``."""
        if num_units < 0:
            raise SimulationError("negative unit count")
        key = (site, worker_id)
        sampler = self._samplers.get(key)
        if sampler is None:
            sampler = self.variability[site].sampler(worker_id)
            self._samplers[key] = sampler
        return num_units * self.unit_cost(site) * sampler()

    def merge_seconds(self, robj_bytes: int) -> float:
        """CPU time to merge one reduction object into another."""
        if robj_bytes < 0:
            raise SimulationError("negative reduction object size")
        return robj_bytes * self.merge_seconds_per_byte

    def combine_seconds(self, robj_bytes: int, n_workers: int, intra_bandwidth: float) -> float:
        """Intra-cluster combine: tree-merge ``n_workers`` objects.

        ``ceil(log2 n)`` rounds, each moving one object across the
        intra-cluster fabric and merging it.
        """
        if n_workers <= 0:
            raise SimulationError("need at least one worker to combine")
        if intra_bandwidth <= 0:
            raise SimulationError("intra-cluster bandwidth must be positive")
        if n_workers == 1:
            return 0.0
        rounds = math.ceil(math.log2(n_workers))
        per_round = robj_bytes / intra_bandwidth + self.merge_seconds(robj_bytes)
        return rounds * per_round
