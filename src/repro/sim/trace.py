"""Execution tracing for the simulator — now a façade over :mod:`repro.obs`.

Historically this module owned the trace vocabulary and the timeline
analyses. Both moved to the shared observability layer
(:mod:`repro.obs`) so the executable runtime emits the *same* event
stream; this module re-exports them under their original names, and
:class:`TraceRecorder` is the shared :class:`~repro.obs.events.EventLog`
(the simulator records at simulated timestamps via ``record``; the
runtime stamps wall-clock time via ``emit``).

A :class:`TraceRecorder` passed to :class:`~repro.sim.simulation.
CloudBurstSimulation` captures a timestamped event stream — job
assignments, chunk fetches, local reductions, group acknowledgements, the
combine/ship/merge tail — that post-run analyses consume:

* :func:`worker_intervals` — per-worker busy intervals by activity;
* :func:`utilization` — fraction of the makespan each worker spent
  retrieving vs computing vs idle (the per-worker version of Figure 3's
  decomposition);
* :func:`render_gantt` — a text Gantt chart of the run, one row per
  worker ('r' = retrieval, 'P' = processing, '.' = idle).

Tracing is off by default and costs nothing when disabled.
"""

from __future__ import annotations

from ..obs.analysis import Interval, render_gantt, utilization, worker_intervals
from ..obs.events import KINDS, EventLog, TraceEvent

__all__ = [
    "KINDS",
    "TraceEvent",
    "TraceRecorder",
    "Interval",
    "worker_intervals",
    "utilization",
    "render_gantt",
]

#: The shared event log under its historical simulator name.
TraceRecorder = EventLog
