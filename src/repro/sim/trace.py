"""Execution tracing for the simulator.

A :class:`TraceRecorder` passed to :class:`~repro.sim.simulation.
CloudBurstSimulation` captures a timestamped event stream — job
assignments, chunk fetches, local reductions, group acknowledgements, the
combine/ship/merge tail — that post-run analyses consume:

* :func:`worker_intervals` — per-worker busy intervals by activity;
* :func:`utilization` — fraction of the makespan each worker spent
  retrieving vs computing vs idle (the per-worker version of Figure 3's
  decomposition);
* :func:`render_gantt` — a text Gantt chart of the run, one row per
  worker ('r' = retrieval, 'P' = processing, '.' = idle).

Tracing is off by default and costs nothing when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SimulationError

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "Interval",
    "worker_intervals",
    "utilization",
    "render_gantt",
]

#: Event kinds emitted by the simulated nodes.
KINDS = (
    "fetch_start",
    "fetch_end",
    "compute_start",
    "compute_end",
    "job_done",
    "group_assigned",
    "group_acked",
    "combine_done",
    "robj_sent",
    "merge_done",
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence."""

    time: float
    kind: str
    cluster: str = ""
    worker: int = -1
    job_id: int = -1
    file_id: int = -1
    detail: str = ""


@dataclass
class TraceRecorder:
    """Collects trace events during a simulation run."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, time: float, kind: str, **fields: Any) -> None:
        if kind not in KINDS:
            raise SimulationError(f"unknown trace event kind {kind!r}")
        self.events.append(TraceEvent(time=time, kind=kind, **fields))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_worker(self, worker: int) -> list[TraceEvent]:
        return [e for e in self.events if e.worker == worker]

    def workers(self) -> list[int]:
        return sorted({e.worker for e in self.events if e.worker >= 0})

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class Interval:
    """A worker activity interval."""

    start: float
    end: float
    activity: str  # 'retrieval' | 'processing'

    @property
    def duration(self) -> float:
        return self.end - self.start


_PAIRS = {
    "fetch_start": ("fetch_end", "retrieval"),
    "compute_start": ("compute_end", "processing"),
}


def worker_intervals(trace: TraceRecorder, worker: int) -> list[Interval]:
    """Reconstruct a worker's busy intervals from its start/end events.

    Raises :class:`SimulationError` on malformed traces (an end without a
    start, or overlapping activities) — these tests double as an internal
    consistency check on the simulated slave loop.
    """
    intervals: list[Interval] = []
    open_start: tuple[float, str] | None = None
    for event in trace.for_worker(worker):
        if event.kind in _PAIRS:
            if open_start is not None:
                raise SimulationError(
                    f"worker {worker}: {event.kind} at {event.time} while "
                    f"{open_start[1]} still open"
                )
            open_start = (event.time, _PAIRS[event.kind][1])
        elif event.kind in ("fetch_end", "compute_end"):
            if open_start is None:
                raise SimulationError(
                    f"worker {worker}: {event.kind} without a start"
                )
            start, activity = open_start
            expected_end = "fetch_end" if activity == "retrieval" else "compute_end"
            if event.kind != expected_end:
                raise SimulationError(
                    f"worker {worker}: {event.kind} closes a {activity} interval"
                )
            intervals.append(Interval(start=start, end=event.time, activity=activity))
            open_start = None
    if open_start is not None:
        raise SimulationError(f"worker {worker}: trace ends mid-{open_start[1]}")
    return intervals


def utilization(trace: TraceRecorder, makespan: float) -> dict[int, dict[str, float]]:
    """Per-worker time fractions: retrieval / processing / idle."""
    if makespan <= 0:
        raise SimulationError("makespan must be positive")
    out: dict[int, dict[str, float]] = {}
    for worker in trace.workers():
        totals = {"retrieval": 0.0, "processing": 0.0}
        for interval in worker_intervals(trace, worker):
            totals[interval.activity] += interval.duration
        busy = totals["retrieval"] + totals["processing"]
        out[worker] = {
            "retrieval": totals["retrieval"] / makespan,
            "processing": totals["processing"] / makespan,
            "idle": max(0.0, 1.0 - busy / makespan),
        }
    return out


def render_gantt(
    trace: TraceRecorder, makespan: float, *, width: int = 72
) -> str:
    """Text Gantt chart: one row per worker, time left to right."""
    if width <= 0:
        raise SimulationError("width must be positive")
    if makespan <= 0:
        raise SimulationError("makespan must be positive")
    glyph = {"retrieval": "r", "processing": "P"}
    rows = []
    for worker in trace.workers():
        cells = ["."] * width
        for interval in worker_intervals(trace, worker):
            lo = min(width - 1, int(interval.start / makespan * width))
            hi = min(width, max(lo + 1, int(interval.end / makespan * width)))
            for i in range(lo, hi):
                cells[i] = glyph[interval.activity]
        rows.append(f"w{worker:03d} |{''.join(cells)}|")
    header = f"time 0 .. {makespan:.1f}s ({'r'}=retrieval, {'P'}=processing)"
    return header + "\n" + "\n".join(rows)
