"""Fluid-flow fair-share link model.

Transfers on a shared link are modeled as fluid flows under **max-min fair
sharing** with two constraint classes:

* a per-flow cap (one S3 connection tops out at tens of MB/s no matter how
  idle the trunk is), and
* a per-group cap (all connections reading the *same file* share that
  file's service limit — the contention the head's minimum-readers stealing
  heuristic is designed to avoid).

Whenever the flow set changes, every active flow's progress is advanced at
its old rate, rates are recomputed by water-filling, and the next
completion is rescheduled. Between changes rates are constant, so progress
integration is exact — the model is not a discretized approximation.

Within one group every member has the same cap, so folding a group cap of
``G`` shared by ``k`` members into a per-flow limit of ``G / k`` is the
exact max-min allocation, and the remaining problem is classic single-
constraint water-filling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..errors import SimulationError
from .engine import Environment, Event

__all__ = ["FlowStats", "FairShareLink"]

#: Byte-resolution epsilon: flows within a nano-byte of done are done.
_EPS = 1e-9

#: Minimum wake horizon in simulated seconds. Guarantees the wake fires at
#: a time strictly greater than ``now`` (float ULP of any realistic sim
#: clock is far below this), so completion wake-ups always advance time —
#: without this, a flow whose remaining bytes underflow the clock's
#: resolution would stall the simulation in a zero-delay wake loop.
_MIN_STEP = 1e-9


@dataclass
class _Flow:
    flow_id: int
    remaining: float
    done: Event
    group: Hashable | None
    rate: float = 0.0
    started_at: float = 0.0


@dataclass
class FlowStats:
    """Aggregate accounting for tests and reports."""

    flows_started: int = 0
    flows_completed: int = 0
    bytes_served: float = 0.0
    busy_time: float = 0.0
    _busy_since: float | None = field(default=None, repr=False)


class FairShareLink:
    """A shared link serving concurrent fluid flows."""

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        *,
        latency: float = 0.0,
        per_flow_cap: float | None = None,
        group_cap: float | None = None,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"{name}: bandwidth must be positive")
        if latency < 0:
            raise SimulationError(f"{name}: negative latency")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise SimulationError(f"{name}: per_flow_cap must be positive")
        if group_cap is not None and group_cap <= 0:
            raise SimulationError(f"{name}: group_cap must be positive")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.per_flow_cap = per_flow_cap
        self.group_cap = group_cap
        self.name = name
        self._flows: dict[int, _Flow] = {}
        self._next_id = 0
        self._last_update = 0.0
        self._wake_token = 0
        self.stats = FlowStats()

    # -- public API ----------------------------------------------------------

    def transfer(self, nbytes: float, *, group: Hashable | None = None) -> Event:
        """Start a flow of ``nbytes``; the returned event fires on completion.

        The link's one-way latency is charged once, up front. Zero-byte
        transfers complete after just the latency.
        """
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer size")
        done = self.env.event()
        flow = _Flow(
            flow_id=self._next_id,
            remaining=float(nbytes),
            done=done,
            group=group,
        )
        self._next_id += 1
        if self.latency > 0:
            delay = self.env.timeout(self.latency)
            delay.callbacks.append(lambda _evt: self._admit(flow))
        else:
            self._admit(flow)
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flows_in_group(self, group: Hashable) -> int:
        return sum(1 for f in self._flows.values() if f.group == group)

    # -- internals ------------------------------------------------------------

    def _admit(self, flow: _Flow) -> None:
        self._advance()
        if flow.remaining <= _EPS:
            self.stats.flows_started += 1
            self.stats.flows_completed += 1
            flow.done.succeed()
            self._recompute()
            return
        flow.started_at = self.env.now
        self._flows[flow.flow_id] = flow
        self.stats.flows_started += 1
        if self.stats._busy_since is None:
            self.stats._busy_since = self.env.now
        self._recompute()

    def _advance(self) -> None:
        """Integrate progress at current rates up to now; complete flows."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt < -_EPS:
            raise SimulationError(f"{self.name}: time ran backwards")
        if dt <= 0 or not self._flows:
            return
        finished: list[_Flow] = []
        for flow in self._flows.values():
            moved = flow.rate * dt
            flow.remaining -= moved
            self.stats.bytes_served += moved
            if flow.remaining <= _EPS:
                finished.append(flow)
        self.stats.busy_time += dt
        for flow in finished:
            # Absorb float dust so conservation checks balance exactly.
            self.stats.bytes_served += flow.remaining
            flow.remaining = 0.0
            del self._flows[flow.flow_id]
            self.stats.flows_completed += 1
            flow.done.succeed()
        if not self._flows:
            self.stats._busy_since = None

    def _limits(self) -> dict[int, float]:
        """Per-flow rate limits: min(per-flow cap, group cap share)."""
        group_sizes: dict[Hashable, int] = {}
        if self.group_cap is not None:
            for flow in self._flows.values():
                if flow.group is not None:
                    group_sizes[flow.group] = group_sizes.get(flow.group, 0) + 1
        limits: dict[int, float] = {}
        for flow in self._flows.values():
            limit = self.per_flow_cap if self.per_flow_cap is not None else self.bandwidth
            if self.group_cap is not None and flow.group is not None:
                limit = min(limit, self.group_cap / group_sizes[flow.group])
            limits[flow.flow_id] = limit
        return limits

    def _recompute(self) -> None:
        """Water-fill rates and schedule the next completion wake-up."""
        if not self._flows:
            self._wake_token += 1
            return
        limits = self._limits()
        # Max-min fair water-filling with per-flow limits.
        unassigned = sorted(self._flows, key=lambda fid: (limits[fid], fid))
        capacity = self.bandwidth
        rates: dict[int, float] = {}
        n = len(unassigned)
        for idx, fid in enumerate(unassigned):
            fair = capacity / (n - idx)
            rate = min(limits[fid], fair)
            rates[fid] = rate
            capacity -= rate
        for fid, flow in self._flows.items():
            flow.rate = rates[fid]
        # Next completion at min remaining/rate among positive-rate flows.
        horizon = min(
            flow.remaining / flow.rate
            for flow in self._flows.values()
            if flow.rate > 0
        )
        self._wake_token += 1
        token = self._wake_token
        wake = self.env.timeout(max(horizon, _MIN_STEP))
        wake.callbacks.append(lambda _evt: self._on_wake(token))

    def _on_wake(self, token: int) -> None:
        if token != self._wake_token:
            return  # superseded by a newer recompute
        self._advance()
        self._recompute()
