"""Discrete-event performance simulator: the multi-site testbed substitute.

The simulator runs the identical scheduling policy code as the executable
runtime against calibrated models of the paper's resources (campus storage
node, S3, the WAN, EC2 cores with virtualization jitter) and reproduces the
evaluation's quantities: Figure 3/4 time decompositions, Table I job
assignment, Table II overheads.
"""

from .calibration import PAPER_CALIBRATION, SimCalibration
from .computemodel import ComputeModel
from .engine import AllOf, AnyOf, Environment, Event, Process, Timeout
from .linkmodel import FairShareLink, FlowStats
from .metrics import ClusterReport, SimReport, SlaveMetrics
from .multisite import CrossPath, MultiSiteConfig, MultiSiteSimulation, SiteSpec
from .resources import Resource, Store
from .simnodes import SimMaster, SimSlave
from .simulation import CloudBurstSimulation, simulate
from .storagemodel import SimStore, StorePath

__all__ = [
    "PAPER_CALIBRATION",
    "SimCalibration",
    "ComputeModel",
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "FairShareLink",
    "FlowStats",
    "ClusterReport",
    "SimReport",
    "SlaveMetrics",
    "CrossPath",
    "MultiSiteConfig",
    "MultiSiteSimulation",
    "SiteSpec",
    "Resource",
    "Store",
    "SimMaster",
    "SimSlave",
    "CloudBurstSimulation",
    "simulate",
    "SimStore",
    "StorePath",
]
