"""Simulation metrics and reports.

Accounting follows the paper's Figure 3 / Tables I-II decomposition:

* per slave: **processing** time (local reduction compute) and **data
  retrieval** time (chunk fetch waits), accumulated as the slave works;
* per cluster: means of those over slaves, plus **sync** = everything
  else up to the end of the run (intra-cluster barrier, reduction-object
  combine and movement, and waiting for the other cluster — exactly the
  components Section IV-B enumerates as sync);
* **idle time** (Table II): how long a cluster that exhausted the job
  supply waited for the other to finish processing;
* **global reduction** (Table II): from the moment the last cluster
  finished its intra-cluster combine to the head's final merge — dominated
  by the WAN push of the reduction object when that object is large;
* job counts and steal counts (Table I) come from the head scheduler.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..errors import SimulationError

__all__ = ["SlaveMetrics", "ClusterReport", "SimReport"]


@dataclass
class SlaveMetrics:
    """Accumulated by each simulated slave as it runs."""

    worker_id: int
    processing: float = 0.0
    retrieval: float = 0.0
    jobs: int = 0
    finish_time: float = 0.0

    @property
    def busy(self) -> float:
        return self.processing + self.retrieval


@dataclass
class ClusterReport:
    """One cluster's results — one stacked bar of Figure 3/4."""

    name: str
    site: str
    cores: int
    jobs_processed: int
    jobs_stolen: int
    mean_processing: float
    mean_retrieval: float
    sync: float
    processing_end: float  # when the last slave finished its last job
    combine_done: float  # when the intra-cluster combine finished
    robj_arrival: float  # when this cluster's robj reached the head
    idle: float  # Table II idle: waiting for the other cluster

    @property
    def total(self) -> float:
        """Bar height: processing + retrieval + sync."""
        return self.mean_processing + self.mean_retrieval + self.sync


@dataclass
class SimReport:
    """Full result of one simulated experiment."""

    experiment: str
    app: str
    makespan: float
    global_reduction: float
    clusters: dict[str, ClusterReport] = field(default_factory=dict)
    events_processed: int = 0
    #: Modeled chunk-cache accounting (zero unless the simulation was
    #: given a cache — see :class:`~repro.sim.simulation.CloudBurstSimulation`).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Modeled storage faults applied to the fetch path (zero unless the
    #: simulation was given a :class:`~repro.resilience.FaultSpec`).
    faults_injected: int = 0
    #: Elastic-bursting ledger (zero unless the simulation was given an
    #: enabled :class:`~repro.options.ScaleOptions`): dynamic slaves that
    #: joined mid-run, spot instances revoked, and modeled dollars spent
    #: on the burstable fleet.
    slaves_added: int = 0
    slaves_revoked: int = 0
    dollars_spent: float = 0.0

    def cluster(self, name: str) -> ClusterReport:
        try:
            return self.clusters[name]
        except KeyError:
            raise SimulationError(
                f"no cluster {name!r} in report (have {sorted(self.clusters)})"
            ) from None

    @property
    def total_jobs(self) -> int:
        return sum(c.jobs_processed for c in self.clusters.values())

    @property
    def total_stolen(self) -> int:
        return sum(c.jobs_stolen for c in self.clusters.values())

    def slowdown_vs(self, baseline: "SimReport") -> float:
        """Table II 'total slowdown' in seconds against env-local."""
        return self.makespan - baseline.makespan

    def slowdown_ratio_vs(self, baseline: "SimReport") -> float:
        """Fractional slowdown against a baseline's makespan."""
        if baseline.makespan <= 0:
            raise SimulationError("baseline makespan must be positive")
        return (self.makespan - baseline.makespan) / baseline.makespan

    def to_dict(self) -> dict:
        """Plain-data form for persistence or downstream tooling."""
        return {
            "experiment": self.experiment,
            "app": self.app,
            "makespan": self.makespan,
            "global_reduction": self.global_reduction,
            "events_processed": self.events_processed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "faults_injected": self.faults_injected,
            "slaves_added": self.slaves_added,
            "slaves_revoked": self.slaves_revoked,
            "dollars_spent": self.dollars_spent,
            "clusters": {name: asdict(c) for name, c in self.clusters.items()},
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: dict) -> "SimReport":
        try:
            clusters = {
                name: ClusterReport(**fields)
                for name, fields in doc["clusters"].items()
            }
            return cls(
                experiment=doc["experiment"],
                app=doc["app"],
                makespan=float(doc["makespan"]),
                global_reduction=float(doc["global_reduction"]),
                clusters=clusters,
                events_processed=int(doc.get("events_processed", 0)),
                cache_hits=int(doc.get("cache_hits", 0)),
                cache_misses=int(doc.get("cache_misses", 0)),
                faults_injected=int(doc.get("faults_injected", 0)),
                slaves_added=int(doc.get("slaves_added", 0)),
                slaves_revoked=int(doc.get("slaves_revoked", 0)),
                dollars_spent=float(doc.get("dollars_spent", 0.0)),
            )
        except (KeyError, TypeError) as exc:
            raise SimulationError(f"malformed report document: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "SimReport":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SimulationError(f"report is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    def validate(self) -> None:
        """Internal-consistency checks (integration tests call this).

        * makespan covers every cluster's activity;
        * sync is non-negative and bar totals equal the makespan (see
          metrics module docstring for the accounting convention);
        * per-category times are non-negative.
        """
        for cluster in self.clusters.values():
            if cluster.mean_processing < -1e-9 or cluster.mean_retrieval < -1e-9:
                raise SimulationError(f"negative time category in {cluster.name}")
            if cluster.sync < -1e-6:
                raise SimulationError(
                    f"negative sync in {cluster.name}: {cluster.sync}"
                )
            if cluster.processing_end - 1e-6 > self.makespan:
                raise SimulationError(
                    f"{cluster.name} finished after the makespan"
                )
            if abs(cluster.total - self.makespan) > max(1e-6, 1e-9 * self.makespan):
                raise SimulationError(
                    f"{cluster.name}: bar total {cluster.total} != makespan "
                    f"{self.makespan}"
                )
        if self.global_reduction < -1e-9:
            raise SimulationError("negative global reduction time")
