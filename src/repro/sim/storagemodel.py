"""Simulated storage services.

One model covers both of the paper's storage systems, parameterized
differently:

* the campus **storage node** — high aggregate streaming bandwidth, shared
  by every local slave, with a seek penalty and a throughput penalty for
  non-sequential access (why the head assigns *consecutive* jobs);
* **S3** — per-request latency and a hard per-connection bandwidth cap
  (why slaves open multiple retrieval threads), with high aggregate
  service capacity; the site trunk (S3->EC2, or the WAN to campus) is the
  binding aggregate constraint.

Both are built on :class:`~repro.sim.linkmodel.FairShareLink`. The per-file
``group_cap`` models file-service contention: all connections reading one
file share that file's service limit, which is the contention the head's
minimum-readers stealing heuristic avoids.

Simplification (documented in DESIGN.md): each access *path* (e.g. S3->EC2
and S3->campus) is its own fair-share link, so a file's service cap is
enforced per path rather than globally across paths. The reader counts the
heuristic responds to are per-path in all the paper's configurations, so
the shapes are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .engine import Environment, Event
from .linkmodel import FairShareLink

__all__ = ["StorePath", "SimStore"]


@dataclass(frozen=True)
class StorePath:
    """Parameters of one storage access path."""

    name: str
    bandwidth: float  # aggregate bytes/s on this path
    per_connection_cap: float | None = None
    request_latency: float = 0.0  # per-request round trip (S3 GET, ~0 for disk)
    file_service_cap: float | None = None  # shared cap per file
    seek_time: float = 0.0  # extra latency for a non-sequential read
    random_penalty: float = 1.0  # throughput inflation for random reads

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise SimulationError(f"{self.name}: bandwidth must be positive")
        if self.random_penalty < 1.0:
            raise SimulationError(f"{self.name}: random_penalty must be >= 1")
        if self.seek_time < 0 or self.request_latency < 0:
            raise SimulationError(f"{self.name}: negative latency")


class SimStore:
    """A storage service reachable over one access path."""

    def __init__(self, env: Environment, path: StorePath) -> None:
        self.env = env
        self.path = path
        self.link = FairShareLink(
            env,
            bandwidth=path.bandwidth,
            latency=path.request_latency,
            per_flow_cap=path.per_connection_cap,
            group_cap=path.file_service_cap,
            name=path.name,
        )
        self.reads = 0
        self.sequential_reads = 0
        self._stream_pos: dict[int, int] = {}  # file_id -> last chunk started

    def _is_sequential(self, file_id: int, chunk_index: int) -> bool:
        """Sequential = this chunk continues the file's read stream.

        The storage node serves a file as one stream: concurrent slaves
        draining *consecutive* chunks keep the head streaming even though
        each slave individually reads scattered chunks — which is exactly
        the benefit of the head's consecutive-job assignment. A fetch is
        sequential when it starts at the chunk after the last one started
        on this file (or opens the file at chunk 0).
        """
        last = self._stream_pos.get(file_id)
        if last is None:
            return chunk_index == 0
        return chunk_index == last + 1

    def fetch(
        self,
        file_id: int,
        nbytes: int,
        *,
        chunk_index: int = 0,
        connections: int = 1,
    ) -> Event:
        """Fetch ``nbytes`` of chunk ``chunk_index`` of ``file_id``.

        Fires when every connection's sub-range has arrived. Non-sequential
        reads pay ``seek_time`` once and move their bytes at
        ``1/random_penalty`` efficiency (modeled as byte inflation).
        """
        if connections <= 0:
            raise SimulationError("connections must be positive")
        if nbytes < 0:
            raise SimulationError("negative fetch size")
        sequential = self._is_sequential(file_id, chunk_index)
        self._stream_pos[file_id] = chunk_index
        self.reads += 1
        if sequential:
            self.sequential_reads += 1
        effective = nbytes if sequential else int(nbytes * self.path.random_penalty)
        connections = max(1, min(connections, max(1, effective)))
        share, remainder = divmod(effective, connections)

        def _go():
            if not sequential and self.path.seek_time > 0:
                yield self.env.timeout(self.path.seek_time)
            flows = [
                self.link.transfer(
                    share + (1 if i < remainder else 0), group=file_id
                )
                for i in range(connections)
            ]
            yield self.env.all_of(flows)

        return self.env.process(_go(), name=f"fetch:{self.path.name}:f{file_id}")

    @property
    def readers_now(self) -> int:
        return self.link.active_flows
