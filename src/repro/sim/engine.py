"""Discrete-event simulation core.

A compact process-based DES kernel in the style of SimPy: simulation logic
is written as Python generators that ``yield`` events; the environment owns
a time-ordered event heap and resumes each process when the event it waits
on triggers.

Design points that matter for reproducibility:

* **Determinism** — the heap is ordered by ``(time, priority, sequence)``
  where the sequence number is a monotone counter, so simultaneous events
  fire in creation order and a simulation is a pure function of its inputs.
* **Failure propagation** — a failed event re-raises inside the waiting
  process at the ``yield``; uncaught failures abort :meth:`Environment.run`
  with the original exception (silent loss of an error in a 10^6-event run
  is the classic DES debugging nightmare).
* **No wall-clock anywhere** — simulated seconds are just floats.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Environment",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]

PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

#: Generator type for process functions.
ProcessGen = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* when given a value (or failure) and *processed*
    once its callbacks have run. Each event may trigger at most once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value inspected before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value inspected before trigger")
        return self._value

    def succeed(self, value: Any = None, *, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger successfully; callbacks run at the current sim time."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, *, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger as failed; the waiting process sees ``exception`` raised."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, 0.0, priority)
        return self


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True  # scheduled immediately, fires at now+delay
        self._ok = True
        self._value = value
        env._schedule(self, delay, PRIORITY_NORMAL)


class Process(Event):
    """A running generator; as an event, it triggers when the generator
    returns (value = return value) or raises (failure)."""

    __slots__ = ("_generator", "name")

    def __init__(self, env: "Environment", generator: ProcessGen, name: str = "") -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the generator at the current time.
        boot = Event(env)
        boot._triggered = True
        boot._ok = True
        env._schedule(boot, 0.0, PRIORITY_NORMAL)
        boot.callbacks.append(self._resume)

    def _resume(self, trigger: Event) -> None:
        while True:
            try:
                if trigger._ok:
                    target = self._generator.send(trigger._value)
                else:
                    target = self._generator.throw(trigger._value)
            except StopIteration as stop:
                if not self._triggered:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                if not self._triggered:
                    self.fail(exc)
                    return
                raise
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {type(target).__name__}, "
                    "expected an Event"
                )
            if target.env is not self.env:
                raise SimulationError("process yielded an event from another environment")
            if target.callbacks is not None:
                # Event not yet processed: park until it fires.
                target.callbacks.append(self._resume)
                return
            # Already-processed event: consume its value synchronously and
            # keep driving the generator (no zero-delay reschedule storm).
            trigger = target


class AllOf(Event):
    """Triggers when every component event has triggered.

    Value is the list of component values, in construction order. Fails
    with the first component failure.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        if any(e.env is not env for e in self.events):
            raise SimulationError("condition mixes events from different environments")
        self._remaining = 0
        first_failure: Event | None = None
        for event in self.events:
            if event.callbacks is None:  # already processed
                if not event._ok and first_failure is None:
                    first_failure = event
            else:
                self._remaining += 1
                event.callbacks.append(self._observe)
        if first_failure is not None:
            self.fail(first_failure._value)
        elif self._remaining == 0:
            self.succeed([e._value for e in self.events])

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(Event):
    """Triggers with the value (or failure) of the first component to fire.

    An empty component list succeeds immediately with ``[]``.
    """

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        if any(e.env is not env for e in self.events):
            raise SimulationError("condition mixes events from different environments")
        if not self.events:
            self.succeed([])
            return
        done = next((e for e in self.events if e.callbacks is None), None)
        if done is not None:
            if done._ok:
                self.succeed(done._value)
            else:
                self.fail(done._value)
            return
        for event in self.events:
            event.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)


class Environment:
    """The simulation clock and event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGen, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        time, _priority, _seq, event = heapq.heappop(self._heap)
        if time < self._now:
            raise SimulationError("event heap produced a time in the past")
        self._now = time
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        event._processed = True
        self.events_processed += 1
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok:
            # A failed event nobody waits on: surface it rather than lose it.
            raise event._value

    def run(self, until: Event | float | None = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        * ``until is None`` — drain every event; returns ``None``.
        * numeric ``until`` — advance to that simulated time.
        * ``Event`` — run until it is processed; returns its value (or
          raises its failure).
        """
        if isinstance(until, Event):
            target = until
            while not target._processed:
                if not self._heap:
                    raise SimulationError(
                        "event heap drained before the awaited event fired "
                        "(deadlocked processes?)"
                    )
                self.step()
            if not target._ok:
                raise target._value
            return target._value
        if until is None:
            while self._heap:
                self.step()
            return None
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError("cannot run backwards in time")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None
