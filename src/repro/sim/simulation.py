"""End-to-end cloud-bursting simulation.

:class:`CloudBurstSimulation` wires an :class:`~repro.config.ExperimentConfig`
into the simulated substrate — storage paths, compute model, control
latencies — instantiates one master plus one slave per active core at each
site, runs the job pool dry, performs the two-level reduction, and returns
a :class:`~repro.sim.metrics.SimReport`.

Reduction phases (Section III-B):

1. every slave folds its chunks into its own reduction object (implicit:
   its cost is inside processing time);
2. when a cluster's slaves all finish, the master tree-combines their
   objects over the intra-cluster fabric;
3. each master ships its combined object to the head — free for the head's
   own site, a WAN push for the other (skipped entirely in single-cluster
   runs, matching the paper's note that base environments avoid the
   transfer);
4. the head merges arriving objects serially.

The head node is hosted at the campus cluster in every configuration, as
in the paper (env-cloud shows master<->head WAN delays in Section IV-B).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import TYPE_CHECKING

from ..apps.base import AppProfile, get_profile

if TYPE_CHECKING:
    from ..cache import ChunkCache
    from ..options import ScaleOptions
    from ..resilience.faults import FaultSpec
from ..config import CLOUD_SITE, LOCAL_SITE, ExperimentConfig
from ..core.index import build_index
from ..core.job import Job
from ..core.scheduler import HeadScheduler
from ..core.sync import SyncSpec, build_sync_plan, plan_roots
from ..errors import SimulationError
from .calibration import PAPER_CALIBRATION, SimCalibration
from .computemodel import ComputeModel
from .engine import Environment, Event
from ..scale.simmodel import ClusterBurst
from .linkmodel import FairShareLink
from .metrics import ClusterReport, SimReport
from .simnodes import SimMaster, SimSlave
from .storagemodel import SimStore
from .trace import TraceRecorder

__all__ = ["CloudBurstSimulation", "simulate"]

HEAD_SITE = LOCAL_SITE


class _SimSchedulerTrace:
    """Adapter so the shared :class:`HeadScheduler` (which calls
    ``trace.emit`` — wall-clock semantics) lands its steal events on the
    simulated timeline at ``env.now``."""

    def __init__(self, log: "TraceRecorder", env: Environment) -> None:
        self._log = log
        self._env = env

    def emit(self, kind: str, **fields) -> None:
        self._log.record(self._env.now, kind, **fields)


class CloudBurstSimulation:
    """One experiment, simulated."""

    def __init__(
        self,
        config: ExperimentConfig,
        calibration: SimCalibration = PAPER_CALIBRATION,
        profile: AppProfile | None = None,
        trace: "TraceRecorder | None" = None,
        static_assignment: bool = False,
        cache: "ChunkCache | None" = None,
        sync: SyncSpec | None = None,
        faults: "FaultSpec | None" = None,
        scale: "ScaleOptions | None" = None,
    ) -> None:
        self.config = config
        self.calibration = calibration
        self.profile = profile or get_profile(config.app)
        self.trace = trace
        #: Ablation baseline: pre-partition the whole job pool across the
        #: clusters round-robin instead of on-demand pooling. Disables
        #: work stealing and rate-matching — the strategy Section III-B's
        #: pooling design replaces.
        self.static_assignment = static_assignment
        #: Optional modeled chunk cache (the same LRU the executable
        #: runtime uses, keyed ``(file_id, chunk_index)`` with explicit
        #: sizes): a cross-site fetch that hits costs no transfer time,
        #: matching the runtime's behaviour so an iterative simulated run
        #: and an executed one agree on which passes touch the network.
        #: The caller owns it, so it persists across iterative passes.
        self.cache = cache
        #: Global-reduction sync plan (:class:`~repro.core.sync.SyncSpec`),
        #: modeled with the same :func:`build_sync_plan` the runtime
        #: executes. A default spec is indistinguishable from ``None`` —
        #: the original ship-and-merge path runs untouched. Encoded
        #: uploads are charged ``robj_bytes * sim_ratio`` on the wire
        #: (merge cost stays dense: decoding restores the full object).
        self.sync = None if sync is None or sync.is_default else sync
        #: Modeled storage faults (:class:`~repro.resilience.FaultSpec`):
        #: ``latency`` faults add their fixed delay to a fetch, ``slow``
        #: faults re-price the chunk at the degraded bandwidth — the same
        #: perturbations the runtime's :class:`FaultInjector` applies to
        #: real reads, so a seeded straggler appears in both substrates.
        #: Transient/permanent *errors* are runtime-only (the simulator
        #: models time, not retries) and are ignored here.
        self.faults = None if faults is None or not (
            faults.latency_rate or faults.slow_rate
        ) else faults
        #: Faults applied during the last :meth:`run` (also on the report).
        self.faults_injected = 0
        #: Elastic bursting (:mod:`repro.scale`): the cloud cluster gains
        #: a :class:`~repro.scale.simmodel.ClusterBurst` — a provisioner
        #: driving the same pure autoscaler the runtime uses, with
        #: provision latency and seeded spot revocation modeled in
        #: virtual time. Disabled specs build none of the machinery.
        self.scale = scale if scale is not None and scale.enabled else None
        #: Scaling accounting for the last :meth:`run` (the simulator's
        #: counterpart of ``RunTelemetry.slaves_added`` and friends).
        self.slaves_added = 0
        self.slaves_revoked = 0
        self.dollars_spent = 0.0

    # -- wiring ---------------------------------------------------------------

    def _build_stores(self, env: Environment) -> dict[tuple[str, str], SimStore]:
        cal = self.calibration
        return {
            (LOCAL_SITE, LOCAL_SITE): SimStore(env, cal.disk_to_local),
            (LOCAL_SITE, CLOUD_SITE): SimStore(env, cal.disk_to_cloud),
            (CLOUD_SITE, CLOUD_SITE): SimStore(env, cal.s3_to_cloud),
            (CLOUD_SITE, LOCAL_SITE): SimStore(env, cal.s3_to_local),
        }

    # -- execution ---------------------------------------------------------------

    def run(self) -> SimReport:
        config = self.config
        env = Environment()
        stores = self._build_stores(env)
        # Thread the experiment seed into the jitter models so different
        # seeds produce different (but reproducible) runs.
        local_var = replace(
            self.calibration.local_variability,
            seed=self.calibration.local_variability.seed ^ (config.seed * 2654435761),
        )
        cloud_var = replace(
            self.calibration.cloud_variability,
            seed=self.calibration.cloud_variability.seed ^ (config.seed * 40503),
        )
        compute = ComputeModel(
            profile=self.profile,
            variability={LOCAL_SITE: local_var, CLOUD_SITE: cloud_var},
            merge_seconds_per_byte=self.calibration.merge_seconds_per_byte,
        )

        index = build_index(config.dataset, config.placement)
        jobs = index.jobs()
        scheduler = HeadScheduler(
            jobs,
            config.tuning,
            seed=config.seed,
            trace=(
                _SimSchedulerTrace(self.trace, env)
                if self.trace is not None
                else None
            ),
        )

        cache = self.cache
        fault_spec = self.faults
        # Per-run deterministic dice, independent of the compute-jitter
        # streams (same seeding rule the runtime's FaultInjector uses).
        fault_rng = (
            random.Random(fault_spec.seed ^ (config.seed * 2654435761))
            if fault_spec is not None
            else None
        )
        self.faults_injected = 0
        self.slaves_added = 0
        self.slaves_revoked = 0
        self.dollars_spent = 0.0

        def _fault_delay(job: Job) -> float:
            """Extra modeled seconds the fault layer charges this fetch."""
            extra = 0.0
            if fault_spec.latency_rate and fault_rng.random() < fault_spec.latency_rate:
                extra += fault_spec.latency_seconds
                self.faults_injected += 1
                if self.trace is not None:
                    self.trace.record(
                        env.now, "fault_injected",
                        job_id=job.job_id, file_id=job.file_id,
                        detail=f"latency +{fault_spec.latency_seconds:g}s",
                    )
            if fault_spec.slow_rate and fault_rng.random() < fault_spec.slow_rate:
                slow = job.nbytes / fault_spec.slow_bandwidth
                extra += slow
                self.faults_injected += 1
                if self.trace is not None:
                    self.trace.record(
                        env.now, "fault_injected",
                        job_id=job.job_id, file_id=job.file_id,
                        detail=f"slow +{slow:.3f}s "
                        f"@{fault_spec.slow_bandwidth:g}B/s",
                    )
            return extra

        def fetch(job: Job, slave_site: str, threads: int) -> Event:
            # Cross-site chunks go through the modeled node cache exactly
            # like the runtime's DatasetReader: a hit is a local memory
            # read (no transfer), a miss pays the network and is inserted.
            if cache is not None and job.site != slave_site:
                key = (job.file_id, job.chunk_index)
                if cache.get(key) is not None:
                    return env.timeout(0.0)
                cache.put(key, True, job.nbytes)
            store = stores[(job.site, slave_site)]
            # Multi-threaded retrieval applies whenever the chunk comes off
            # the object store (even "co-located" EC2 slaves GET over the
            # network) or crosses sites; only a local disk read is a single
            # sequential stream.
            single_stream = job.site == LOCAL_SITE and slave_site == LOCAL_SITE

            def start_transfer() -> Event:
                return store.fetch(
                    job.file_id,
                    job.nbytes,
                    chunk_index=job.chunk_index,
                    connections=1 if single_stream else threads,
                )

            if fault_rng is None:
                return start_transfer()
            extra = _fault_delay(job)
            if extra <= 0.0:
                return start_transfer()

            def perturbed():
                # The fault delays the read itself: stall first, then start
                # the (contended) transfer — matching the injector's
                # position in front of the runtime's storage service.
                yield env.timeout(extra)
                yield start_transfer()

            return env.process(perturbed(), name=f"fault:{job.job_id}")

        # Dedicated WAN path for the reduction-object push (cloud -> head).
        wan_robj = FairShareLink(
            env,
            bandwidth=self.calibration.s3_to_local.bandwidth,
            latency=self.calibration.wan_latency,
            per_flow_cap=self.calibration.wan_robj_per_flow,
            name="wan-robj",
        )

        sites = config.compute.active_sites
        multi_cluster = len(sites) > 1
        robj_bytes = self.profile.robj_bytes

        spec = self.sync
        cluster_names = [f"{site}-cluster" for site in sites]
        site_of = dict(zip(cluster_names, sites))
        # ``active_sites`` puts the head's site first whenever it has
        # cores, so the plan root is the head-site master (as in the
        # runtime driver).
        plan = (
            build_sync_plan(cluster_names, spec.topology, fanout=spec.fanout)
            if spec is not None
            else None
        )
        wire_bytes = robj_bytes * spec.sim_ratio if spec is not None else robj_bytes
        upload_events = {name: env.event() for name in cluster_names}
        upload_at: dict[str, float] = {}

        masters: dict[str, SimMaster] = {}
        slaves: dict[str, list[SimSlave]] = {}
        combine_done: dict[str, float] = {}
        robj_arrival: dict[str, float] = {}
        merged_at: dict[str, float] = {}
        processing_end: dict[str, float] = {}
        head_busy_until = [0.0]  # serialize head-side merges

        # Elastic bursting: the cloud cluster's provisioner samples these
        # global gauges (the same raw vocabulary the runtime's probe
        # feeds obs.live) and the shared pure controller decides.
        burst: ClusterBurst | None = None
        jobs_total = len(jobs)

        def scale_probe() -> dict:
            crews = [s for crew in slaves.values() for s in crew]
            if burst is not None:
                crews += burst.started
            workers = len(crews)
            waiting = sum(m.idle_slaves for m in masters.values())
            return {
                "jobs_total": jobs_total,
                "jobs_done": sum(s.metrics.jobs for s in crews),
                "pool_depth": sum(len(m.pool) for m in masters.values()),
                "in_flight": sum(m.pool.in_flight for m in masters.values()),
                "workers": workers,
                "workers_busy": max(0, workers - waiting),
            }

        cluster_procs = []
        worker_id = 0
        for site in sites:
            cores = config.compute.cores_at(site)
            name = f"{site}-cluster"
            scheduler.register_cluster(name, site)
            # The pool's refill point scales with the slave count (capped)
            # so several files stay in flight at once — a pool sized well
            # below the slave count would serialize the whole cluster onto
            # a single file's chunk run — while staying shallow enough that
            # a slow cluster does not hoard jobs the other could steal.
            master = SimMaster(
                env,
                name,
                site,
                scheduler,
                control_rtt=self.calibration.control_rtt(site == HEAD_SITE),
                low_water=max(config.tuning.pool_low_water, min(cores // 2, 8)),
                group_size=config.tuning.job_group_size,
                trace=self.trace,
            )
            masters[name] = master
            crew = []
            for _ in range(cores):
                slave = SimSlave(
                    env,
                    worker_id,
                    site,
                    master,
                    fetch,
                    compute,
                    retrieval_threads=config.tuning.retrieval_threads,
                    trace=self.trace,
                )
                worker_id += 1
                crew.append(slave)
            slaves[name] = crew

            if self.scale is not None and site == CLOUD_SITE:

                def make_cloud_slave(wid, master=master):
                    return SimSlave(
                        env, wid, CLOUD_SITE, master, fetch, compute,
                        retrieval_threads=config.tuning.retrieval_threads,
                        trace=self.trace,
                    )

                burst = ClusterBurst(
                    env, master, self.scale,
                    initial=len(crew),
                    make_slave=make_cloud_slave,
                    next_worker_id=worker_id,
                    probe=scale_probe,
                    trace=self.trace,
                )
                worker_id = burst.next_worker_id
                for slave in crew:
                    burst.admit(slave)

            intra_bw = (
                self.calibration.intra_local_bandwidth
                if site == LOCAL_SITE
                else self.calibration.intra_cloud_bandwidth
            )

            def cluster_proc(
                name=name, site=site, crew=crew, intra_bw=intra_bw,
                burst_=burst if site == CLOUD_SITE else None,
            ):
                procs = [env.process(s.run(), name=f"slave:{s.worker_id}") for s in crew]
                dynamics = burst_.launch() if burst_ is not None else []
                yield env.all_of(procs)
                if burst_ is not None:
                    # The static crew drained, so the pool is dry: release
                    # the never-provisioned gates, let provisioned slaves
                    # exit at this same timestamp, and shut the ledger.
                    burst_.close()
                    yield env.all_of(dynamics)
                    burst_.finalize(env.now)
                members = crew if burst_ is None else crew + burst_.started
                processing_end[name] = env.now
                # Intra-cluster combine (tree merge of the slaves' objects).
                yield env.timeout(
                    compute.combine_seconds(robj_bytes, len(members), intra_bw)
                )
                combine_done[name] = env.now
                if self.trace is not None:
                    self.trace.record(env.now, "combine_done", cluster=name)
                # Ship the combined object to the head.
                if multi_cluster:
                    if site == HEAD_SITE:
                        yield env.timeout(
                            self.calibration.lan_latency
                            + robj_bytes / self.calibration.intra_local_bandwidth
                        )
                    else:
                        yield wan_robj.transfer(robj_bytes)
                robj_arrival[name] = env.now
                if self.trace is not None:
                    self.trace.record(env.now, "robj_sent", cluster=name)
                # Head merges serially as objects arrive.
                start = max(env.now, head_busy_until[0])
                finish = start + compute.merge_seconds(robj_bytes)
                head_busy_until[0] = finish
                yield env.timeout(finish - env.now)
                merged_at[name] = env.now
                if self.trace is not None:
                    self.trace.record(env.now, "merge_done", cluster=name)

            def cluster_proc_sync(
                name=name, site=site, crew=crew, intra_bw=intra_bw,
                burst_=burst if site == CLOUD_SITE else None,
            ):
                procs = [env.process(s.run(), name=f"slave:{s.worker_id}") for s in crew]
                dynamics = burst_.launch() if burst_ is not None else []
                yield env.all_of(procs)
                if burst_ is not None:
                    burst_.close()
                    yield env.all_of(dynamics)
                    burst_.finalize(env.now)
                members = crew if burst_ is None else crew + burst_.started
                processing_end[name] = env.now
                # Streaming flushes fold slave partials during compute, so
                # only the final watermark's worth of merging remains once
                # the last slave finishes; the barrier pays the full tree.
                if spec.stream:
                    yield env.timeout(compute.merge_seconds(robj_bytes))
                else:
                    yield env.timeout(
                        compute.combine_seconds(robj_bytes, len(members), intra_bw)
                    )
                combine_done[name] = env.now
                if self.trace is not None:
                    self.trace.record(env.now, "combine_done", cluster=name)
                node = plan[name]
                if node.children:
                    yield env.all_of([upload_events[c] for c in node.children])
                    merge = compute.merge_seconds(robj_bytes)
                    if spec.stream:
                        # Fold each child on arrival: the master thread is
                        # free while its slaves compute, so early arrivals
                        # cost nothing at the barrier.
                        busy = 0.0
                        for child in sorted(
                            node.children, key=upload_at.__getitem__
                        ):
                            busy = max(busy, upload_at[child]) + merge
                            merged_at[child] = busy
                            if self.trace is not None:
                                self.trace.record(
                                    busy, "merge_done", cluster=child
                                )
                    else:
                        busy = env.now
                        for child in node.children:
                            busy += merge
                            merged_at[child] = busy
                            if self.trace is not None:
                                self.trace.record(
                                    busy, "merge_done", cluster=child
                                )
                    if busy > env.now:
                        yield env.timeout(busy - env.now)
                # Ship the (encoded) object up the aggregation plan.
                if node.parent is not None:
                    if site_of[node.parent] == site:
                        yield env.timeout(
                            self.calibration.lan_latency + wire_bytes / intra_bw
                        )
                    else:
                        yield wan_robj.transfer(wire_bytes)
                elif multi_cluster:
                    # Plan root: the hop to the head (LAN for its own site).
                    if site == HEAD_SITE:
                        yield env.timeout(
                            self.calibration.lan_latency
                            + wire_bytes / self.calibration.intra_local_bandwidth
                        )
                    else:
                        yield wan_robj.transfer(wire_bytes)
                robj_arrival[name] = env.now
                upload_at[name] = env.now
                if self.trace is not None:
                    self.trace.record(env.now, "robj_sent", cluster=name)
                upload_events[name].succeed()
                if node.parent is None and spec.stream:
                    # Head merges arriving roots immediately, serialized.
                    start = max(env.now, head_busy_until[0])
                    finish = start + compute.merge_seconds(robj_bytes)
                    head_busy_until[0] = finish
                    yield env.timeout(finish - env.now)
                    merged_at[name] = env.now
                    if self.trace is not None:
                        self.trace.record(env.now, "merge_done", cluster=name)

            proc = cluster_proc_sync() if spec is not None else cluster_proc()
            cluster_procs.append(env.process(proc, name=f"cluster:{name}"))

        if spec is not None and not spec.stream:
            # Barrier global reduction: the head waits for every plan root
            # and merges them serially in plan order (as the runtime does).
            roots = plan_roots(plan)

            def head_barrier_proc():
                yield env.all_of([upload_events[r] for r in roots])
                finish = env.now
                for root in roots:
                    finish += compute.merge_seconds(robj_bytes)
                    merged_at[root] = finish
                    if self.trace is not None:
                        self.trace.record(finish, "merge_done", cluster=root)
                yield env.timeout(finish - env.now)

            cluster_procs.append(
                env.process(head_barrier_proc(), name="head:barrier")
            )

        if self.static_assignment:
            # Deal the whole pool out round-robin before time starts, then
            # close every master's intake.
            names = list(masters)
            turn = 0
            while not scheduler.exhausted:
                group = scheduler.request_jobs(names[turn % len(names)])
                if group is None:
                    break
                masters[names[turn % len(names)]].preload(group)
                turn += 1
            for master in masters.values():
                master.close_intake()

        # The cache outlives the run in iterative use; report this pass's
        # delta, mirroring the executable driver's accounting.
        cache_before = (0, 0)
        if cache is not None:
            cache_before = (cache.stats.hits, cache.stats.misses)

        done = env.all_of(cluster_procs)
        env.run(done)
        env.run()  # drain stragglers (acks in flight)

        if burst is not None:
            # Fold the dynamic slaves into the cloud crew so the report's
            # jobs-processed invariant and per-cluster means account for
            # every worker that actually ran, and copy the scaling ledger.
            cloud_name = f"{CLOUD_SITE}-cluster"
            slaves[cloud_name] = slaves[cloud_name] + burst.started
            self.slaves_added = burst.slaves_added
            self.slaves_revoked = burst.slaves_revoked
            self.dollars_spent = burst.dollars_spent

        report = self._report(
            env, scheduler, masters, slaves,
            processing_end, combine_done, robj_arrival, merged_at,
        )
        if cache is not None:
            report.cache_hits = cache.stats.hits - cache_before[0]
            report.cache_misses = cache.stats.misses - cache_before[1]
        report.faults_injected = self.faults_injected
        report.slaves_added = self.slaves_added
        report.slaves_revoked = self.slaves_revoked
        report.dollars_spent = self.dollars_spent
        return report

    # -- reporting ---------------------------------------------------------------

    def _report(
        self,
        env: Environment,
        scheduler: HeadScheduler,
        masters: dict[str, SimMaster],
        slaves: dict[str, list[SimSlave]],
        processing_end: dict[str, float],
        combine_done: dict[str, float],
        robj_arrival: dict[str, float],
        merged_at: dict[str, float],
    ) -> SimReport:
        if scheduler.jobs_remaining != 0:
            raise SimulationError(
                f"simulation ended with {scheduler.jobs_remaining} jobs unassigned"
            )
        makespan = max(merged_at.values())
        last_processing_end = max(processing_end.values())
        # Table II's "global reduction": the elapsed time combining the
        # final object — the longest ship-and-merge span over clusters
        # (dominated by the WAN push when the object is large).
        global_reduction = max(
            merged_at[name] - combine_done[name] for name in merged_at
        )

        clusters: dict[str, ClusterReport] = {}
        for name, crew in slaves.items():
            stats = scheduler.clusters[name]
            jobs = sum(s.metrics.jobs for s in crew)
            if jobs != stats.jobs_assigned:
                raise SimulationError(
                    f"{name}: processed {jobs} jobs but was assigned "
                    f"{stats.jobs_assigned}"
                )
            mean_proc = sum(s.metrics.processing for s in crew) / len(crew)
            mean_retr = sum(s.metrics.retrieval for s in crew) / len(crew)
            clusters[name] = ClusterReport(
                name=name,
                site=masters[name].site,
                cores=len(crew),
                jobs_processed=jobs,
                jobs_stolen=stats.jobs_stolen,
                mean_processing=mean_proc,
                mean_retrieval=mean_retr,
                sync=makespan - mean_proc - mean_retr,
                processing_end=processing_end[name],
                combine_done=combine_done[name],
                robj_arrival=robj_arrival[name],
                idle=max(0.0, last_processing_end - processing_end[name]),
            )
        report = SimReport(
            experiment=self.config.name,
            app=self.config.app,
            makespan=makespan,
            global_reduction=global_reduction,
            clusters=clusters,
            events_processed=env.events_processed,
        )
        report.validate()
        return report


def simulate(
    config: ExperimentConfig,
    calibration: SimCalibration = PAPER_CALIBRATION,
    profile: AppProfile | None = None,
) -> SimReport:
    """Convenience one-shot: build and run a simulation.

    .. deprecated::
        Prefer :func:`repro.run` with ``RunConfig(mode="simulate")`` for
        new code; this shim stays (the facade drives the same
        :class:`CloudBurstSimulation`) and will not be removed.
    """
    return CloudBurstSimulation(config, calibration, profile).run()
