"""Paper-calibrated simulator parameters.

The resource numbers below are derived from the paper's Section IV setup
and its reported timings rather than measured on the original testbed
(which no longer exists). Where the paper gives a number we use it; where
it gives a curve we back the parameter out of the curve:

* campus storage node: 120 GB retrieved by 32 slaves in ~215 s in
  env-local (Fig. 3a) -> ~18 MB/s per slave ingest, ~600 MB/s trunk;
* S3 -> EC2: env-cloud knn retrieval is *shorter* than env-local
  (Section IV-B) -> ~5 MB/s per connection x 4 retrieval threads
  (why multi-threaded retrieval pays), ~700 MB/s trunk;
* WAN S3 -> campus: knn env-17/83 slowdown growth (Table II) ->
  ~120 MB/s aggregate, ~3 MB/s per connection;
* reduction-object WAN push: pagerank's ~300 MB object takes ~37-42 s
  (Table II) -> ~8 MB/s effective single-flow rate, which the per-flow
  cap reproduces;
* EC2 variability sigma from the paper's note on virtualization jitter.

With these values the simulator lands an average hybrid slowdown of ~9%
(paper: 15.55%) and an average speedup per core-doubling of ~83%
(paper: 81%), with every qualitative ordering preserved (see
EXPERIMENTS.md for the full paper-vs-measured table).

All values live in one frozen dataclass so ablations can ``replace`` a
single knob.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster.variability import EC2_VARIABILITY, LOCAL_VARIABILITY, VariabilityModel
from ..errors import CalibrationError
from ..units import GB, MB
from .storagemodel import StorePath

__all__ = ["SimCalibration", "PAPER_CALIBRATION"]


@dataclass(frozen=True)
class SimCalibration:
    """Every resource parameter the simulator needs."""

    # Storage access paths (bytes/second, seconds).
    disk_to_local: StorePath
    s3_to_cloud: StorePath
    s3_to_local: StorePath  # WAN: cloud storage -> campus slaves
    disk_to_cloud: StorePath  # WAN: campus storage -> EC2 slaves

    # Control-plane one-way latencies.
    lan_latency: float = 0.0002
    wan_latency: float = 0.055

    # Reduction-object movement.
    intra_local_bandwidth: float = 1.5 * GB  # Infiniband fabric
    intra_cloud_bandwidth: float = 400 * MB  # EC2 internal network
    wan_robj_per_flow: float = 8 * MB  # single-stream WAN push rate
    merge_seconds_per_byte: float = 1.0 / (2.0 * GB)

    # Compute-time jitter per site.
    local_variability: VariabilityModel = LOCAL_VARIABILITY
    cloud_variability: VariabilityModel = EC2_VARIABILITY

    def __post_init__(self) -> None:
        for name in ("lan_latency", "wan_latency"):
            if getattr(self, name) < 0:
                raise CalibrationError(f"{name} cannot be negative")
        for name in (
            "intra_local_bandwidth",
            "intra_cloud_bandwidth",
            "wan_robj_per_flow",
        ):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")
        if self.merge_seconds_per_byte < 0:
            raise CalibrationError("merge_seconds_per_byte cannot be negative")

    def with_changes(self, **changes) -> "SimCalibration":
        """Ablation helper: replace selected knobs."""
        return replace(self, **changes)

    def control_rtt(self, same_site: bool) -> float:
        """Round-trip time of one control exchange (request + reply)."""
        one_way = self.lan_latency if same_site else self.wan_latency
        return 2.0 * one_way


PAPER_CALIBRATION = SimCalibration(
    # The slave-side ingest rate (NFS client / chunk pipeline), not the
    # storage array, is the binding constraint at the paper's scale: that
    # is what makes hybrid retrieval time roughly invariant to halving the
    # cores (each slave still ingests its share at the same rate), which
    # Figure 3 exhibits. The trunk matters only near 32 concurrent readers.
    disk_to_local=StorePath(
        name="disk->local",
        bandwidth=600 * MB,
        per_connection_cap=18 * MB,
        request_latency=0.0005,
        file_service_cap=None,  # one disk array: aggregate bw is the cap
        seek_time=0.008,
        random_penalty=1.6,
    ),
    s3_to_cloud=StorePath(
        name="s3->ec2",
        bandwidth=700 * MB,
        per_connection_cap=5 * MB,
        request_latency=0.045,
        file_service_cap=None,  # S3 range-GETs scale per key inside AWS
        seek_time=0.0,
        random_penalty=1.0,
    ),
    s3_to_local=StorePath(
        name="s3->campus(wan)",
        bandwidth=120 * MB,
        per_connection_cap=3 * MB,
        request_latency=0.065,
        file_service_cap=64 * MB,
        seek_time=0.0,
        random_penalty=1.0,
    ),
    disk_to_cloud=StorePath(
        name="disk->ec2(wan)",
        bandwidth=110 * MB,
        per_connection_cap=3 * MB,
        request_latency=0.065,
        file_service_cap=64 * MB,
        seek_time=0.008,
        random_penalty=1.3,
    ),
)
