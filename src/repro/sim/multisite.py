"""N-site cloud bursting — the paper's generality claim, implemented.

Section II: "our solution will also be applicable if the data and/or
processing power is spread across two different cloud providers." The
two-site simulator (:mod:`repro.sim.simulation`) hard-codes campus + AWS;
this module generalizes it to any number of sites, each with its own
compute pool, storage service, compute-speed factor, jitter model, and
cross-site network paths. The scheduling policy
(:class:`~repro.core.scheduler.HeadScheduler`) already handles N clusters
unchanged — which is itself evidence for the paper's claim.

Configuration pieces:

* :class:`SiteSpec` — one provider/site: cores, hosted file count, the
  storage path its own slaves use, a compute-slowdown factor, jitter;
* :class:`CrossPath` — the network path a slave at ``dst`` uses to fetch
  chunks stored at ``src``;
* :class:`MultiSiteConfig` — sites + paths + dataset shape + head site.

The run loop mirrors the two-site simulator; the report is the same
:class:`~repro.sim.metrics.SimReport` keyed by site-named clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..apps.base import AppProfile, get_profile

if TYPE_CHECKING:
    from ..options import ScaleOptions
from ..config import DatasetSpec, MiddlewareTuning
from ..core.index import DataIndex, FileEntry
from ..core.job import Job
from ..core.scheduler import HeadScheduler
from ..core.sync import SyncSpec, build_sync_plan, plan_roots
from ..cluster.variability import LOCAL_VARIABILITY, VariabilityModel
from ..errors import ConfigurationError, SimulationError
from ..scale.simmodel import ClusterBurst
from ..units import MB
from .computemodel import ComputeModel
from .engine import Environment, Event
from .linkmodel import FairShareLink
from .metrics import ClusterReport, SimReport
from .simnodes import SimMaster, SimSlave
from .storagemodel import SimStore, StorePath
from .trace import TraceRecorder

__all__ = [
    "SiteSpec",
    "CrossPath",
    "MultiSiteConfig",
    "MultiSiteSimulation",
    "load_multisite_config",
]


@dataclass(frozen=True)
class SiteSpec:
    """One site (a campus cluster or a cloud provider region)."""

    name: str
    cores: int
    data_files: int
    storage: StorePath  # path its own slaves use for same-site fetches
    compute_slowdown: float = 1.0
    variability: VariabilityModel = LOCAL_VARIABILITY
    intra_bandwidth: float = 1.0 * 1024**3  # combine fabric, bytes/s

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("site name must be non-empty")
        if self.cores < 0 or self.data_files < 0:
            raise ConfigurationError(f"site {self.name!r}: negative cores/files")
        if self.compute_slowdown <= 0:
            raise ConfigurationError(
                f"site {self.name!r}: compute_slowdown must be positive"
            )
        if self.intra_bandwidth <= 0:
            raise ConfigurationError(
                f"site {self.name!r}: intra_bandwidth must be positive"
            )


@dataclass(frozen=True)
class CrossPath:
    """The path slaves at ``dst`` use for chunks stored at ``src``."""

    src: str
    dst: str
    path: StorePath


@dataclass(frozen=True)
class MultiSiteConfig:
    """A complete N-site experiment."""

    name: str
    app: str
    dataset: DatasetSpec
    sites: tuple[SiteSpec, ...]
    cross_paths: tuple[CrossPath, ...] = ()
    head_site: str = ""
    tuning: MiddlewareTuning = field(default_factory=MiddlewareTuning)
    control_latency: float = 0.03  # one-way inter-site control latency
    robj_flow_rate: float = 8 * MB  # WAN push rate for reduction objects
    #: Shared trunk into the head site for reduction-object uploads,
    #: bytes/s. ``None`` keeps the legacy model (each remote site gets an
    #: independent path). When set, every upload bound for the head site
    #: fair-shares this one link — which is what makes star aggregation
    #: (n concurrent flows) lose to a tree (~fanout concurrent flows).
    head_ingress_bandwidth: float | None = None
    seed: int = 2011

    def __post_init__(self) -> None:
        if len(self.sites) < 1:
            raise ConfigurationError("need at least one site")
        names = [s.name for s in self.sites]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate site names: {names}")
        if sum(s.data_files for s in self.sites) != self.dataset.num_files:
            raise ConfigurationError(
                "sites must host exactly the dataset's files "
                f"({sum(s.data_files for s in self.sites)} != "
                f"{self.dataset.num_files})"
            )
        if sum(s.cores for s in self.sites) <= 0:
            raise ConfigurationError("at least one core across all sites")
        head = self.head_site or names[0]
        if head not in names:
            raise ConfigurationError(f"head site {head!r} is not a site")
        if self.control_latency < 0:
            raise ConfigurationError("control_latency cannot be negative")
        if self.robj_flow_rate <= 0:
            raise ConfigurationError("robj_flow_rate must be positive")
        if (
            self.head_ingress_bandwidth is not None
            and self.head_ingress_bandwidth <= 0
        ):
            raise ConfigurationError("head_ingress_bandwidth must be positive")

    @property
    def head(self) -> str:
        return self.head_site or self.sites[0].name

    def site(self, name: str) -> SiteSpec:
        for s in self.sites:
            if s.name == name:
                return s
        raise ConfigurationError(f"unknown site {name!r}")

    def build_index(self) -> DataIndex:
        """Prefix placement across sites in declaration order."""
        units_per_chunk = self.dataset.units_per_chunk
        entries: list[FileEntry] = []
        file_id = 0
        for site in self.sites:
            for _ in range(site.data_files):
                entries.append(
                    FileEntry(
                        file_id=file_id,
                        site=site.name,
                        path=f"data/part-{file_id:05d}.bin",
                        nbytes=self.dataset.file_bytes,
                        chunk_bytes=self.dataset.chunk_bytes,
                        units_per_chunk=units_per_chunk,
                    )
                )
                file_id += 1
        return DataIndex(files=entries)


def load_multisite_config(text: str) -> MultiSiteConfig:
    """Build a :class:`MultiSiteConfig` from a JSON document.

    The declarative form used by ``python -m repro multisite``::

        {
          "name": "two-providers", "app": "knn", "head_site": "campus",
          "dataset": {"total_bytes": ..., "num_files": ..., "chunk_bytes": ...,
                      "record_bytes": ...},
          "sites": [
            {"name": "campus", "cores": 16, "data_files": 10,
             "storage": {"bandwidth": ..., "per_connection_cap": ...,
                         "request_latency": ...},
             "compute_slowdown": 1.0},
            ...
          ],
          "cross_paths": [
            {"src": "campus", "dst": "aws",
             "path": {"bandwidth": ..., ...}},
            ...
          ]
        }

    Storage/path objects accept every :class:`~repro.sim.storagemodel.
    StorePath` field except ``name`` (synthesized from context). Unknown
    keys raise :class:`~repro.errors.ConfigurationError` so typos fail
    loudly.
    """
    import json

    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"multisite config is not valid JSON: {exc}") from exc

    def build_path(name: str, fields: dict) -> StorePath:
        allowed = {
            "bandwidth", "per_connection_cap", "request_latency",
            "file_service_cap", "seek_time", "random_penalty",
        }
        unknown = set(fields) - allowed
        if unknown:
            raise ConfigurationError(
                f"path {name!r}: unknown keys {sorted(unknown)}"
            )
        return StorePath(name=name, **fields)

    try:
        dataset = DatasetSpec(**doc["dataset"])
        sites = tuple(
            SiteSpec(
                name=s["name"],
                cores=int(s["cores"]),
                data_files=int(s["data_files"]),
                storage=build_path(f"{s['name']}-storage", s["storage"]),
                compute_slowdown=float(s.get("compute_slowdown", 1.0)),
                intra_bandwidth=float(s.get("intra_bandwidth", 1.0 * 1024**3)),
            )
            for s in doc["sites"]
        )
        cross = tuple(
            CrossPath(
                src=c["src"],
                dst=c["dst"],
                path=build_path(f"{c['src']}->{c['dst']}", c["path"]),
            )
            for c in doc.get("cross_paths", ())
        )
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed multisite config: {exc}") from exc
    return MultiSiteConfig(
        name=str(doc.get("name", "multisite")),
        app=str(doc["app"]),
        dataset=dataset,
        sites=sites,
        cross_paths=cross,
        head_site=str(doc.get("head_site", "")),
        control_latency=float(doc.get("control_latency", 0.03)),
        robj_flow_rate=float(doc.get("robj_flow_rate", 8 * MB)),
        head_ingress_bandwidth=(
            float(doc["head_ingress_bandwidth"])
            if doc.get("head_ingress_bandwidth") is not None
            else None
        ),
        seed=int(doc.get("seed", 2011)),
    )


class MultiSiteSimulation:
    """Simulate one N-site experiment."""

    def __init__(
        self,
        config: MultiSiteConfig,
        profile: AppProfile | None = None,
        merge_seconds_per_byte: float = 1.0 / (2.0 * 1024**3),
        trace: "TraceRecorder | None" = None,
        sync: SyncSpec | None = None,
        scale: "ScaleOptions | None" = None,
        scale_site: str | None = None,
    ) -> None:
        self.config = config
        self.profile = profile or get_profile(config.app)
        self.merge_seconds_per_byte = merge_seconds_per_byte
        self.trace = trace
        #: Sync plan, as in :class:`~repro.sim.simulation.CloudBurstSimulation`;
        #: a default spec collapses to the legacy star path.
        self.sync = None if sync is None or sync.is_default else sync
        #: Elastic bursting, modeled exactly as in the two-site simulator:
        #: the burstable site (``scale_site``, defaulting to the first
        #: active non-head site — the "cloud" in a campus-plus-provider
        #: layout) gains a :class:`~repro.scale.simmodel.ClusterBurst`.
        self.scale = scale if scale is not None and scale.enabled else None
        self.scale_site = scale_site
        if self.scale is not None and scale_site is not None:
            if not any(
                s.name == scale_site and s.cores > 0 for s in config.sites
            ):
                raise ConfigurationError(
                    f"scale_site {scale_site!r} is not an active site"
                )
        #: Scaling ledger for the last :meth:`run`.
        self.slaves_added = 0
        self.slaves_revoked = 0
        self.dollars_spent = 0.0

    def _build_stores(self, env: Environment) -> dict[tuple[str, str], SimStore]:
        stores: dict[tuple[str, str], SimStore] = {}
        for site in self.config.sites:
            stores[(site.name, site.name)] = SimStore(env, site.storage)
        for cross in self.config.cross_paths:
            key = (cross.src, cross.dst)
            if key in stores:
                raise ConfigurationError(f"duplicate cross path {key}")
            stores[key] = SimStore(env, cross.path)
        return stores

    def run(self) -> SimReport:
        config = self.config
        env = Environment()
        stores = self._build_stores(env)
        compute = ComputeModel(
            profile=self.profile,
            variability={
                s.name: replace(s.variability,
                                seed=s.variability.seed ^ (config.seed * 7919))
                for s in config.sites
            },
            merge_seconds_per_byte=self.merge_seconds_per_byte,
            site_slowdowns={s.name: s.compute_slowdown for s in config.sites},
        )
        index = config.build_index()
        jobs = index.jobs()
        scheduler = HeadScheduler(jobs, config.tuning, seed=config.seed)

        def fetch(job: Job, slave_site: str, threads: int) -> Event:
            store = stores.get((job.site, slave_site))
            if store is None:
                raise SimulationError(
                    f"no path from {job.site!r} to {slave_site!r}; "
                    "add a CrossPath"
                )
            connections = 1 if job.site == slave_site else threads
            return store.fetch(
                job.file_id,
                job.nbytes,
                chunk_index=job.chunk_index,
                connections=connections,
            )

        head = config.head
        # Shared trunk into the head site: every reduction-object upload
        # bound for the head fair-shares it when configured.
        ingress = None
        if config.head_ingress_bandwidth is not None:
            ingress = FairShareLink(
                env,
                bandwidth=config.head_ingress_bandwidth,
                latency=config.control_latency,
                per_flow_cap=config.robj_flow_rate,
                name=f"robj-ingress:{head}",
            )
        robj_links: dict[str, FairShareLink] = {}
        for cross in config.cross_paths:
            if cross.dst == head and cross.src != head:
                robj_links[cross.src] = FairShareLink(
                    env,
                    bandwidth=cross.path.bandwidth,
                    latency=config.control_latency,
                    per_flow_cap=config.robj_flow_rate,
                    name=f"robj:{cross.src}->{head}",
                )
        # Tree/ring aggregation ships between arbitrary site pairs; build
        # those reduction-object links lazily from the cross paths.
        cross_by_key = {(c.src, c.dst): c for c in config.cross_paths}
        pair_links: dict[tuple[str, str], FairShareLink] = {}

        def robj_link(src: str, dst: str) -> FairShareLink:
            if dst == head and ingress is not None:
                return ingress
            if dst == head and src in robj_links:
                return robj_links[src]
            key = (src, dst)
            if key not in pair_links:
                cross = cross_by_key.get(key)
                if cross is None:
                    raise SimulationError(
                        f"no path to ship {src!r}'s reduction object to "
                        f"{dst!r}; add a CrossPath"
                    )
                pair_links[key] = FairShareLink(
                    env,
                    bandwidth=cross.path.bandwidth,
                    latency=config.control_latency,
                    per_flow_cap=config.robj_flow_rate,
                    name=f"robj:{src}->{dst}",
                )
            return pair_links[key]

        active_sites = [s for s in config.sites if s.cores > 0]
        multi_cluster = len(active_sites) > 1
        robj_bytes = self.profile.robj_bytes

        spec = self.sync
        # Plan order puts the head-site cluster first (when it has cores)
        # so the final hop to the head stays off the WAN, matching the
        # two-site simulator and the runtime driver.
        ordered_sites = sorted(
            (s.name for s in active_sites), key=lambda n: n != head
        )
        cluster_names = [f"{n}-cluster" for n in ordered_sites]
        site_of = {f"{s.name}-cluster": s for s in active_sites}
        plan = (
            build_sync_plan(cluster_names, spec.topology, fanout=spec.fanout)
            if spec is not None
            else None
        )
        wire_bytes = robj_bytes * spec.sim_ratio if spec is not None else robj_bytes
        upload_events = {name: env.event() for name in cluster_names}
        upload_at: dict[str, float] = {}
        masters: dict[str, SimMaster] = {}
        slaves: dict[str, list[SimSlave]] = {}
        processing_end: dict[str, float] = {}
        combine_done: dict[str, float] = {}
        robj_arrival: dict[str, float] = {}
        merged_at: dict[str, float] = {}
        head_busy_until = [0.0]

        # Elastic bursting: same probe vocabulary and shared ClusterBurst
        # as the two-site simulator, attached to the burstable site.
        self.slaves_added = 0
        self.slaves_revoked = 0
        self.dollars_spent = 0.0
        burst: ClusterBurst | None = None
        burst_site: str | None = None
        if self.scale is not None:
            burst_site = self.scale_site or next(
                (s.name for s in active_sites if s.name != head),
                active_sites[0].name,
            )
        jobs_total = len(jobs)

        def scale_probe() -> dict:
            crews = [s for crew in slaves.values() for s in crew]
            if burst is not None:
                crews += burst.started
            workers = len(crews)
            waiting = sum(m.idle_slaves for m in masters.values())
            return {
                "jobs_total": jobs_total,
                "jobs_done": sum(s.metrics.jobs for s in crews),
                "pool_depth": sum(len(m.pool) for m in masters.values()),
                "in_flight": sum(m.pool.in_flight for m in masters.values()),
                "workers": workers,
                "workers_busy": max(0, workers - waiting),
            }

        cluster_procs = []
        worker_id = 0
        for site in active_sites:
            name = f"{site.name}-cluster"
            scheduler.register_cluster(name, site.name)
            rtt = (
                2 * 0.0002
                if site.name == head
                else 2 * config.control_latency
            )
            master = SimMaster(
                env, name, site.name, scheduler,
                control_rtt=rtt,
                low_water=max(config.tuning.pool_low_water,
                              min(site.cores // 2, 8)),
                group_size=config.tuning.job_group_size,
                trace=self.trace,
            )
            masters[name] = master
            crew = []
            for _ in range(site.cores):
                crew.append(
                    SimSlave(
                        env, worker_id, site.name, master, fetch, compute,
                        retrieval_threads=config.tuning.retrieval_threads,
                        trace=self.trace,
                    )
                )
                worker_id += 1
            slaves[name] = crew

            if burst_site is not None and site.name == burst_site:

                def make_burst_slave(wid, master=master, site=site):
                    return SimSlave(
                        env, wid, site.name, master, fetch, compute,
                        retrieval_threads=config.tuning.retrieval_threads,
                        trace=self.trace,
                    )

                burst = ClusterBurst(
                    env, master, self.scale,
                    initial=len(crew),
                    make_slave=make_burst_slave,
                    next_worker_id=worker_id,
                    probe=scale_probe,
                    trace=self.trace,
                )
                worker_id = burst.next_worker_id
                for slave in crew:
                    burst.admit(slave)

            def cluster_proc(
                name=name, site=site, crew=crew,
                burst_=burst if site.name == burst_site else None,
            ):
                procs = [env.process(s.run(), name=f"slave:{s.worker_id}")
                         for s in crew]
                dynamics = burst_.launch() if burst_ is not None else []
                yield env.all_of(procs)
                if burst_ is not None:
                    burst_.close()
                    yield env.all_of(dynamics)
                    burst_.finalize(env.now)
                members = crew if burst_ is None else crew + burst_.started
                processing_end[name] = env.now
                yield env.timeout(
                    compute.combine_seconds(robj_bytes, len(members),
                                            site.intra_bandwidth)
                )
                combine_done[name] = env.now
                if multi_cluster and site.name != head:
                    link = ingress or robj_links.get(site.name)
                    if link is None:
                        raise SimulationError(
                            f"no path to ship {site.name!r}'s reduction "
                            f"object to the head at {head!r}"
                        )
                    yield link.transfer(robj_bytes)
                elif multi_cluster:
                    yield env.timeout(
                        0.0002 + robj_bytes / site.intra_bandwidth
                    )
                robj_arrival[name] = env.now
                start = max(env.now, head_busy_until[0])
                finish = start + compute.merge_seconds(robj_bytes)
                head_busy_until[0] = finish
                yield env.timeout(finish - env.now)
                merged_at[name] = env.now

            def cluster_proc_sync(
                name=name, site=site, crew=crew,
                burst_=burst if site.name == burst_site else None,
            ):
                procs = [env.process(s.run(), name=f"slave:{s.worker_id}")
                         for s in crew]
                dynamics = burst_.launch() if burst_ is not None else []
                yield env.all_of(procs)
                if burst_ is not None:
                    burst_.close()
                    yield env.all_of(dynamics)
                    burst_.finalize(env.now)
                members = crew if burst_ is None else crew + burst_.started
                processing_end[name] = env.now
                if spec.stream:
                    # Streamed partials were folded during compute; only
                    # the final watermark's merge remains at the barrier.
                    yield env.timeout(compute.merge_seconds(robj_bytes))
                else:
                    yield env.timeout(
                        compute.combine_seconds(robj_bytes, len(members),
                                                site.intra_bandwidth)
                    )
                combine_done[name] = env.now
                node = plan[name]
                if node.children:
                    yield env.all_of([upload_events[c] for c in node.children])
                    merge = compute.merge_seconds(robj_bytes)
                    if spec.stream:
                        busy = 0.0
                        for child in sorted(
                            node.children, key=upload_at.__getitem__
                        ):
                            busy = max(busy, upload_at[child]) + merge
                            merged_at[child] = busy
                    else:
                        busy = env.now
                        for child in node.children:
                            busy += merge
                            merged_at[child] = busy
                    if busy > env.now:
                        yield env.timeout(busy - env.now)
                if node.parent is not None:
                    parent_site = site_of[node.parent].name
                    yield robj_link(site.name, parent_site).transfer(wire_bytes)
                elif multi_cluster:
                    if site.name == head:
                        yield env.timeout(
                            0.0002 + wire_bytes / site.intra_bandwidth
                        )
                    else:
                        yield robj_link(site.name, head).transfer(wire_bytes)
                robj_arrival[name] = env.now
                upload_at[name] = env.now
                upload_events[name].succeed()
                if node.parent is None and spec.stream:
                    start = max(env.now, head_busy_until[0])
                    finish = start + compute.merge_seconds(robj_bytes)
                    head_busy_until[0] = finish
                    yield env.timeout(finish - env.now)
                    merged_at[name] = env.now

            proc = cluster_proc_sync() if spec is not None else cluster_proc()
            cluster_procs.append(env.process(proc, name=f"cluster:{name}"))

        if spec is not None and not spec.stream:
            roots = plan_roots(plan)

            def head_barrier_proc():
                yield env.all_of([upload_events[r] for r in roots])
                finish = env.now
                for root in roots:
                    finish += compute.merge_seconds(robj_bytes)
                    merged_at[root] = finish
                yield env.timeout(finish - env.now)

            cluster_procs.append(
                env.process(head_barrier_proc(), name="head:barrier")
            )

        env.run(env.all_of(cluster_procs))
        env.run()

        if burst is not None:
            # Fold dynamic slaves into the burst site's report crew and
            # copy the scaling ledger (as the two-site simulator does).
            burst_name = f"{burst_site}-cluster"
            slaves[burst_name] = slaves[burst_name] + burst.started
            self.slaves_added = burst.slaves_added
            self.slaves_revoked = burst.slaves_revoked
            self.dollars_spent = burst.dollars_spent

        if scheduler.jobs_remaining != 0:
            raise SimulationError(
                f"{scheduler.jobs_remaining} jobs unassigned at end of run"
            )
        makespan = max(merged_at.values())
        last_processing = max(processing_end.values())
        clusters: dict[str, ClusterReport] = {}
        for name, crew in slaves.items():
            stats = scheduler.clusters[name]
            mean_proc = sum(s.metrics.processing for s in crew) / len(crew)
            mean_retr = sum(s.metrics.retrieval for s in crew) / len(crew)
            clusters[name] = ClusterReport(
                name=name,
                site=masters[name].site,
                cores=len(crew),
                jobs_processed=sum(s.metrics.jobs for s in crew),
                jobs_stolen=stats.jobs_stolen,
                mean_processing=mean_proc,
                mean_retrieval=mean_retr,
                sync=makespan - mean_proc - mean_retr,
                processing_end=processing_end[name],
                combine_done=combine_done[name],
                robj_arrival=robj_arrival[name],
                idle=max(0.0, last_processing - processing_end[name]),
            )
        report = SimReport(
            experiment=config.name,
            app=config.app,
            makespan=makespan,
            global_reduction=max(
                merged_at[name] - combine_done[name] for name in merged_at
            ),
            clusters=clusters,
            events_processed=env.events_processed,
            slaves_added=self.slaves_added,
            slaves_revoked=self.slaves_revoked,
            dollars_spent=self.dollars_spent,
        )
        report.validate()
        return report
