"""Shared-resource primitives for the simulation kernel.

* :class:`Resource` — counted slots (cores, disk streams) acquired with
  ``yield resource.request()`` and returned with ``release``;
* :class:`Store` — an unbounded FIFO channel of items, the message-queue
  primitive the simulated masters and slaves communicate through (the
  in-sim analogue of :mod:`repro.runtime.transport`).

Both wake waiters in strict FIFO order, which keeps simulations
deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..errors import SimulationError
from .engine import Environment, Event

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO admission."""

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._waiting: deque[Event] = deque()
        self._active: set[int] = set()
        #: total grant count, for tests/metrics
        self.grants = 0

    @property
    def in_use(self) -> int:
        return len(self._active)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Event:
        """Returns an event that fires when a slot is granted."""
        event = self.env.event()
        if len(self._active) < self.capacity:
            self._grant(event)
        else:
            self._waiting.append(event)
        return event

    def _grant(self, event: Event) -> None:
        self._active.add(id(event))
        self.grants += 1
        event.succeed(event)

    def release(self, request: Event) -> None:
        """Return the slot granted to ``request``."""
        if id(request) not in self._active:
            raise SimulationError("release of a request that does not hold the resource")
        self._active.remove(id(request))
        if self._waiting:
            self._grant(self._waiting.popleft())


class Store:
    """Unbounded FIFO item channel."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.puts = 0
        self.gets = 0

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest waiting getter, if any."""
        self.puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Returns an event whose value is the next item."""
        self.gets += 1
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
