"""Message types of the middleware protocol.

The three node tiers communicate exclusively through these messages
(Section III-B): masters request job groups from the head and acknowledge
their completion; slaves request jobs from their master and report results;
masters upload their cluster's combined reduction object to the head.

The executable runtime moves these over queues; the protocol (who sends
what when) is identical to what the simulator models with latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from queue import Queue
from typing import Any

from ..core.job import Job, JobGroup

__all__ = [
    "JobRequest",
    "JobReply",
    "GroupComplete",
    "ReductionUpload",
    "SlaveJobRequest",
    "SlaveJobReply",
    "SlaveJobDone",
    "SlaveFailed",
    "SlaveReduction",
    "SlaveAttach",
    "SlaveDetach",
    "HeadResult",
]


# -- master -> head ---------------------------------------------------------


@dataclass(frozen=True)
class JobRequest:
    """A master asks the head for another group of jobs."""

    cluster: str
    reply_to: "Queue[JobReply]"
    max_jobs: int | None = None


@dataclass(frozen=True)
class JobReply:
    """Head's answer: a job group, or ``None`` when the pool is exhausted."""

    group: JobGroup | None


@dataclass(frozen=True)
class GroupComplete:
    """A master reports that every job of a group has been processed."""

    cluster: str
    group_id: int


@dataclass(frozen=True)
class ReductionUpload:
    """A master ships its cluster's combined reduction object (serialized).

    With a sync topology configured the upload may travel to a *parent
    master* instead of the head, carrying the merged contribution of
    ``origins`` (this cluster plus every descendant already folded in) as
    a wire-encoded blob (:mod:`repro.core.wire`). Legacy senders leave
    ``origins`` empty, meaning just ``cluster``, and ``blob`` is a plain
    ``to_bytes`` envelope.
    """

    cluster: str
    blob: bytes
    origins: tuple[str, ...] = ()

    @property
    def covered(self) -> tuple[str, ...]:
        return self.origins or (self.cluster,)


# -- slave <-> master ------------------------------------------------------------


@dataclass(frozen=True)
class SlaveJobRequest:
    """A slave asks its master for the next job."""

    slave_id: int
    reply_to: "Queue[SlaveJobReply]"


@dataclass(frozen=True)
class SlaveJobReply:
    """Master's answer: a job, or ``None`` when the run is over."""

    job: Job | None


@dataclass(frozen=True)
class SlaveJobDone:
    """A slave reports one processed job."""

    slave_id: int
    job: Job


@dataclass(frozen=True)
class SlaveFailed:
    """A slave worker died. Its reduction object is lost, so every job it
    ever processed (plus its in-flight job) must be re-executed.

    ``revoked`` distinguishes a simulated spot-instance revocation
    (:class:`~repro.errors.SpotRevocation`) from a genuine crash: the
    recovery path is identical, the telemetry account is not.
    """

    slave_id: int
    in_flight: Job | None
    revoked: bool = False


# -- driver -> master (elastic scaling) --------------------------------------


@dataclass(frozen=True)
class SlaveAttach:
    """The autoscaler hands the master freshly built slave workers.

    The master starts them inside its protocol loop and raises its
    expected-reduction count atomically with respect to that loop, so a
    scale-up can never race the end-of-run accounting. An attach that
    arrives after the loop exited is simply never started (the driver
    joins only started slaves).
    """

    workers: tuple  # of repro.runtime.slave.SlaveWorker


@dataclass(frozen=True)
class SlaveDetach:
    """The autoscaler asks the master to retire ``count`` slaves.

    Retirement is cooperative: the master answers the next ``count`` job
    requests with ``None``, so each victim exits its loop cleanly and
    hands over its final reduction object — nothing is lost and nothing
    re-executes. The master never retires its last active slave (jobs
    still pooled or in flight would strand forever).
    """

    count: int


@dataclass(frozen=True)
class SlaveReduction:
    """A slave hands its reduction object to the master (same process, so
    the live object is passed; cross-cluster transfers serialize).

    Streaming mode flushes *partial* objects mid-run: ``partial=True``
    marks a watermark flush, and ``job_ids`` lists the jobs whose
    contribution the object carries. The master commits those jobs —
    they are never re-executed even if this slave later dies — and
    merges the partial immediately, overlapping global reduction with
    the tail of compute. The final hand-off has ``partial=False``.
    """

    slave_id: int
    robj: Any
    partial: bool = False
    job_ids: tuple[int, ...] = ()


# -- head -> driver ------------------------------------------------------------


@dataclass(frozen=True)
class HeadResult:
    """Final merged reduction object (serialized) plus run accounting."""

    blob: bytes
    clusters_reported: tuple[str, ...]
