"""The per-cluster master node.

Keeps the cluster's job pool filled from the head (on-demand pooling —
the load-balancing mechanism of Section III-B), serves slaves one job at a
time, acknowledges completed groups, and, when its slaves have drained the
global pool, combines their reduction objects and uploads the result to
the head.
"""

from __future__ import annotations

import threading
from collections import deque

from ..config import MiddlewareTuning
from ..core.jobpool import JobPool
from ..core.reduction import merge_all
from ..errors import RuntimeProtocolError
from ..obs.events import EventLog
from .messages import (
    GroupComplete,
    JobRequest,
    ReductionUpload,
    SlaveFailed,
    SlaveJobReply,
    SlaveJobRequest,
    SlaveJobDone,
    SlaveReduction,
)
from .transport import Mailbox

__all__ = ["MasterNode"]


class MasterNode:
    """Runs as one thread per cluster."""

    def __init__(
        self,
        name: str,
        site: str,
        head_inbox: Mailbox,
        num_slaves: int,
        tuning: MiddlewareTuning | None = None,
        *,
        trace: EventLog | None = None,
        take_timeout: float = 60.0,
    ) -> None:
        if num_slaves <= 0:
            raise RuntimeProtocolError("a cluster needs at least one slave")
        self.name = name
        self.site = site
        self.head_inbox = head_inbox
        self.num_slaves = num_slaves
        self.tuning = tuning or MiddlewareTuning()
        self.trace = trace
        #: Mailbox-receive timeout, threaded from the driver's
        #: ``join_timeout`` (see :class:`~repro.runtime.driver.CloudBurstingRuntime`).
        self.take_timeout = take_timeout
        self.inbox = Mailbox(f"master:{name}")
        self._head_reply = Mailbox(f"master:{name}:head-reply")
        low_water = max(self.tuning.pool_low_water, min(num_slaves // 2, 8))
        self.pool = JobPool(low_water=low_water)
        self.combine_seconds = 0.0
        self.slaves_failed = 0
        self.jobs_reexecuted = 0
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name=f"master:{self.name}", daemon=True
        )
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is None:
            raise RuntimeProtocolError(f"master {self.name!r} was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeProtocolError(f"master {self.name!r} did not finish")
        if self._failure is not None:
            raise self._failure

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- protocol loop ------------------------------------------------------------

    def _run(self) -> None:
        try:
            self._serve()
        except BaseException as exc:
            self._failure = exc

    def _fetch_from_head(self) -> bool:
        """Request one group; returns False when the head is exhausted."""
        self.head_inbox.post(
            JobRequest(
                cluster=self.name,
                reply_to=self._head_reply,
                max_jobs=self.tuning.job_group_size,
            )
        )
        reply = self._head_reply.take(timeout=self.take_timeout)
        if reply.group is None:
            return False
        self.pool.add_group(reply.group)
        if self.trace is not None:
            group = reply.group
            self.trace.emit(
                "group_assigned", cluster=self.name, file_id=group.file_id,
                detail=f"group {group.group_id} x{len(group)}",
            )
        return True

    def _serve(self) -> None:
        import time

        head_exhausted = False
        waiting: deque[SlaveJobRequest] = deque()
        robjs: list[SlaveReduction] = []
        expected_robjs = self.num_slaves
        # Slaves reported dead. A prefetching slave can have a job request
        # in flight when it crashes; answering it with a job would strand
        # that job forever (nobody will process it), so requests from dead
        # slaves — parked or late-arriving — are answered ``None``.
        dead: set[int] = set()
        # Every job ever handed to each slave: a dead slave's reduction
        # object is lost, so all of this must be re-executed (FREERIDE-style
        # recovery).
        jobs_by_slave: dict[int, list] = {}

        def refill() -> None:
            nonlocal head_exhausted
            while not head_exhausted and (self.pool.needs_refill or waiting):
                if not self._fetch_from_head():
                    head_exhausted = True
                if len(self.pool) > self.pool.low_water and not waiting:
                    break
                if waiting and len(self.pool) >= len(waiting):
                    break

        def run_over() -> bool:
            """No job will ever become available again.

            The in-flight check matters for fault tolerance: while any job
            is still being processed, its holder might die and the job
            return to the pool, so idle slaves park rather than exit.
            """
            return head_exhausted and len(self.pool) == 0 and self.pool.in_flight == 0

        def serve_waiting() -> None:
            while waiting:
                job = self.pool.take()
                if job is None:
                    if run_over():
                        while waiting:
                            waiting.popleft().reply_to.post(SlaveJobReply(None))
                    break
                request = waiting.popleft()
                jobs_by_slave.setdefault(request.slave_id, []).append(job)
                request.reply_to.post(SlaveJobReply(job))

        while len(robjs) < expected_robjs:
            message = self.inbox.take(timeout=self.take_timeout)
            if isinstance(message, SlaveJobRequest):
                if message.slave_id in dead:
                    message.reply_to.post(SlaveJobReply(None))
                    continue
                waiting.append(message)
                refill()
                serve_waiting()
            elif isinstance(message, SlaveJobDone):
                group_id = self.pool.mark_done(message.job.job_id)
                if group_id is not None:
                    self.head_inbox.post(
                        GroupComplete(cluster=self.name, group_id=group_id)
                    )
                serve_waiting()  # a drained pool may have just become final
            elif isinstance(message, SlaveFailed):
                expected_robjs -= 1
                self.slaves_failed += 1
                dead.add(message.slave_id)
                for _ in range(len(waiting)):
                    request = waiting.popleft()
                    if request.slave_id == message.slave_id:
                        request.reply_to.post(SlaveJobReply(None))
                    else:
                        waiting.append(request)
                lost = jobs_by_slave.pop(message.slave_id, [])
                self.pool.requeue(lost)
                self.jobs_reexecuted += len(lost)
                if self.trace is not None:
                    self.trace.emit(
                        "slave_failed", cluster=self.name,
                        worker=message.slave_id,
                        detail=f"{len(lost)} jobs to re-execute",
                    )
                    for job in lost:
                        self.trace.emit(
                            "job_reexecuted", cluster=self.name,
                            worker=message.slave_id, job_id=job.job_id,
                            file_id=job.file_id,
                        )
                if expected_robjs == 0:
                    raise RuntimeProtocolError(
                        f"master {self.name!r}: every slave failed"
                    )
                serve_waiting()  # recovered jobs wake parked slaves
            elif isinstance(message, SlaveReduction):
                robjs.append(message)
            else:
                raise RuntimeProtocolError(
                    f"master {self.name!r} received {type(message).__name__}"
                )
        # Intra-cluster combine, then upload to the head.
        started = time.perf_counter()
        combined = merge_all(sorted_robjs(robjs))
        self.combine_seconds = time.perf_counter() - started
        if self.trace is not None:
            self.trace.emit("combine_done", cluster=self.name)
        self.head_inbox.post(
            ReductionUpload(cluster=self.name, blob=combined.to_bytes())
        )
        if self.trace is not None:
            self.trace.emit("robj_sent", cluster=self.name)


def sorted_robjs(messages: list[SlaveReduction]):
    """Merge slave objects in slave-id order so runs are deterministic."""
    return [m.robj for m in sorted(messages, key=lambda m: m.slave_id)]
