"""The per-cluster master node.

Keeps the cluster's job pool filled from the head (on-demand pooling —
the load-balancing mechanism of Section III-B), serves slaves one job at a
time, acknowledges completed groups, and, when its slaves have drained the
global pool, combines their reduction objects and uploads the result to
the head.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from ..config import MiddlewareTuning
from ..core.jobpool import JobPool
from ..core.reduction import ReductionObject, merge_all
from ..core.sync import SyncCodec
from ..errors import RuntimeProtocolError
from ..obs.events import EventLog
from .messages import (
    GroupComplete,
    JobRequest,
    ReductionUpload,
    SlaveAttach,
    SlaveDetach,
    SlaveFailed,
    SlaveJobReply,
    SlaveJobRequest,
    SlaveJobDone,
    SlaveReduction,
)
from .transport import Mailbox

__all__ = ["MasterSync", "MasterNode"]


@dataclass(frozen=True)
class MasterSync:
    """This master's slice of the global-reduction sync plan.

    ``parent_inbox`` is where the combined object goes — another master's
    inbox in tree/ring layouts, the head's for plan roots. ``children``
    are the clusters whose :class:`ReductionUpload` this master must fold
    in before shipping its own. ``stream`` turns on merge-on-arrival for
    slave partials and child uploads instead of the barrier.
    """

    codec: SyncCodec
    parent_inbox: Mailbox
    children: tuple[str, ...] = ()
    stream: bool = False


class MasterNode:
    """Runs as one thread per cluster."""

    def __init__(
        self,
        name: str,
        site: str,
        head_inbox: Mailbox,
        num_slaves: int,
        tuning: MiddlewareTuning | None = None,
        *,
        trace: EventLog | None = None,
        take_timeout: float = 60.0,
        sync: MasterSync | None = None,
    ) -> None:
        if num_slaves <= 0:
            raise RuntimeProtocolError("a cluster needs at least one slave")
        self.name = name
        self.site = site
        self.head_inbox = head_inbox
        self.num_slaves = num_slaves
        self.tuning = tuning or MiddlewareTuning()
        self.trace = trace
        #: Mailbox-receive timeout, threaded from the driver's
        #: ``join_timeout`` (see :class:`~repro.runtime.driver.CloudBurstingRuntime`).
        self.take_timeout = take_timeout
        self.inbox = Mailbox(f"master:{name}")
        self._head_reply = Mailbox(f"master:{name}:head-reply")
        low_water = max(self.tuning.pool_low_water, min(num_slaves // 2, 8))
        self.pool = JobPool(low_water=low_water)
        self.combine_seconds = 0.0
        self.slaves_failed = 0
        self.slaves_revoked = 0
        self.slaves_added = 0
        self.jobs_reexecuted = 0
        self.sync = sync
        self.sync_partials = 0
        self.sync_child_uploads = 0
        self.sync_wire_bytes = 0
        self.sync_dense_bytes = 0
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name=f"master:{self.name}", daemon=True
        )
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is None:
            raise RuntimeProtocolError(f"master {self.name!r} was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeProtocolError(f"master {self.name!r} did not finish")
        if self._failure is not None:
            raise self._failure

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- protocol loop ------------------------------------------------------------

    def _run(self) -> None:
        try:
            self._serve()
        except BaseException as exc:
            self._failure = exc

    def _fetch_from_head(self) -> bool:
        """Request one group; returns False when the head is exhausted."""
        self.head_inbox.post(
            JobRequest(
                cluster=self.name,
                reply_to=self._head_reply,
                max_jobs=self.tuning.job_group_size,
            )
        )
        reply = self._head_reply.take(timeout=self.take_timeout)
        if reply.group is None:
            return False
        self.pool.add_group(reply.group)
        if self.trace is not None:
            group = reply.group
            self.trace.emit(
                "group_assigned", cluster=self.name, file_id=group.file_id,
                detail=f"group {group.group_id} x{len(group)}",
            )
        return True

    def _serve(self) -> None:
        import time

        head_exhausted = False
        waiting: deque[SlaveJobRequest] = deque()
        robjs: list[SlaveReduction] = []
        expected_robjs = self.num_slaves
        sync = self.sync
        stream = sync is not None and sync.stream
        expected_children = len(sync.children) if sync is not None else 0
        # Streamed slave partials (and, in stream mode, child uploads)
        # are folded on arrival into one accumulator; barrier-mode child
        # uploads are held and merged in plan order for determinism.
        stream_acc: ReductionObject | None = None
        child_robjs: dict[str, ReductionObject] = {}
        child_origins: list[str] = []
        children_seen = 0
        # Slaves reported dead. A prefetching slave can have a job request
        # in flight when it crashes; answering it with a job would strand
        # that job forever (nobody will process it), so requests from dead
        # slaves — parked or late-arriving — are answered ``None``.
        dead: set[int] = set()
        # Elastic scaling state: slaves retired by a SlaveDetach (they
        # exit cleanly and still deliver their final reduction object),
        # pending retirements, and the count of slaves still working.
        retired: set[int] = set()
        retire_pending = 0
        active_slaves = self.num_slaves
        # Every job ever handed to each slave: a dead slave's reduction
        # object is lost, so all of this must be re-executed (FREERIDE-style
        # recovery).
        jobs_by_slave: dict[int, list] = {}

        def refill() -> None:
            nonlocal head_exhausted
            while not head_exhausted and (self.pool.needs_refill or waiting):
                if not self._fetch_from_head():
                    head_exhausted = True
                if len(self.pool) > self.pool.low_water and not waiting:
                    break
                if waiting and len(self.pool) >= len(waiting):
                    break

        def run_over() -> bool:
            """No job will ever become available again.

            The in-flight check matters for fault tolerance: while any job
            is still being processed, its holder might die and the job
            return to the pool, so idle slaves park rather than exit.
            """
            return head_exhausted and len(self.pool) == 0 and self.pool.in_flight == 0

        def serve_waiting() -> None:
            while waiting:
                job = self.pool.take()
                if job is None:
                    if run_over():
                        while waiting:
                            waiting.popleft().reply_to.post(SlaveJobReply(None))
                    break
                request = waiting.popleft()
                jobs_by_slave.setdefault(request.slave_id, []).append(job)
                request.reply_to.post(SlaveJobReply(job))

        while len(robjs) < expected_robjs or children_seen < expected_children:
            message = self.inbox.take(timeout=self.take_timeout)
            if isinstance(message, SlaveJobRequest):
                if message.slave_id in dead or message.slave_id in retired:
                    message.reply_to.post(SlaveJobReply(None))
                    continue
                if retire_pending > 0 and active_slaves > 1:
                    # Cooperative scale-down: answer ``None`` so the slave
                    # exits its loop and delivers its final reduction
                    # object. Never retire the last active slave — jobs
                    # pooled or in flight would strand forever.
                    retire_pending -= 1
                    active_slaves -= 1
                    retired.add(message.slave_id)
                    message.reply_to.post(SlaveJobReply(None))
                    if self.trace is not None:
                        self.trace.emit(
                            "scale_down", cluster=self.name,
                            worker=message.slave_id, detail="slave retired",
                        )
                    continue
                waiting.append(message)
                refill()
                serve_waiting()
            elif isinstance(message, SlaveJobDone):
                group_id = self.pool.mark_done(message.job.job_id)
                if group_id is not None:
                    self.head_inbox.post(
                        GroupComplete(cluster=self.name, group_id=group_id)
                    )
                serve_waiting()  # a drained pool may have just become final
            elif isinstance(message, SlaveFailed):
                expected_robjs -= 1
                active_slaves -= 1
                if message.revoked:
                    self.slaves_revoked += 1
                else:
                    self.slaves_failed += 1
                dead.add(message.slave_id)
                for _ in range(len(waiting)):
                    request = waiting.popleft()
                    if request.slave_id == message.slave_id:
                        request.reply_to.post(SlaveJobReply(None))
                    else:
                        waiting.append(request)
                lost = jobs_by_slave.pop(message.slave_id, [])
                self.pool.requeue(lost)
                self.jobs_reexecuted += len(lost)
                if self.trace is not None:
                    if not message.revoked:
                        # A revocation already traced itself at raise time.
                        self.trace.emit(
                            "slave_failed", cluster=self.name,
                            worker=message.slave_id,
                            detail=f"{len(lost)} jobs to re-execute",
                        )
                    for job in lost:
                        self.trace.emit(
                            "job_reexecuted", cluster=self.name,
                            worker=message.slave_id, job_id=job.job_id,
                            file_id=job.file_id,
                        )
                if expected_robjs == 0:
                    raise RuntimeProtocolError(
                        f"master {self.name!r}: every slave failed"
                    )
                serve_waiting()  # recovered jobs wake parked slaves
            elif isinstance(message, SlaveReduction):
                if message.job_ids and message.slave_id in jobs_by_slave:
                    # These jobs' contribution is now safe in the delivered
                    # object — never re-execute them for this slave.
                    committed = set(message.job_ids)
                    jobs_by_slave[message.slave_id] = [
                        job
                        for job in jobs_by_slave[message.slave_id]
                        if job.job_id not in committed
                    ]
                if message.partial:
                    self.sync_partials += 1
                    started = time.perf_counter()
                    if stream_acc is None:
                        stream_acc = message.robj
                    else:
                        stream_acc.merge(message.robj)
                    self.combine_seconds += time.perf_counter() - started
                    if self.trace is not None:
                        self.trace.emit(
                            "sync_merge", cluster=self.name,
                            worker=message.slave_id,
                            detail=f"partial of {len(message.job_ids)} jobs",
                        )
                else:
                    robjs.append(message)
            elif isinstance(message, ReductionUpload):
                if sync is None or message.cluster not in sync.children:
                    raise RuntimeProtocolError(
                        f"master {self.name!r} received an unexpected upload "
                        f"from {message.cluster!r}"
                    )
                children_seen += 1
                self.sync_child_uploads += 1
                decoded = sync.codec.decode(message.cluster, message.blob)
                child_origins.extend(message.covered)
                if stream:
                    started = time.perf_counter()
                    if stream_acc is None:
                        stream_acc = decoded
                    else:
                        stream_acc.merge(decoded)
                    self.combine_seconds += time.perf_counter() - started
                else:
                    child_robjs[message.cluster] = decoded
                if self.trace is not None:
                    self.trace.emit(
                        "sync_merge", cluster=self.name,
                        detail=f"upload from {message.cluster}",
                    )
            elif isinstance(message, SlaveAttach):
                # Scale-up: start the new workers from inside the protocol
                # loop so expected_robjs grows atomically with the workers
                # that will satisfy it.
                for worker in message.workers:
                    expected_robjs += 1
                    active_slaves += 1
                    self.slaves_added += 1
                    worker.start()
                    if self.trace is not None:
                        self.trace.emit(
                            "provision", cluster=self.name,
                            worker=worker.slave_id, detail="slave attached",
                        )
            elif isinstance(message, SlaveDetach):
                retire_pending += message.count
            else:
                raise RuntimeProtocolError(
                    f"master {self.name!r} received {type(message).__name__}"
                )
        # Intra-cluster combine (plus any tree/ring child contributions),
        # then upload to the parent aggregation point.
        started = time.perf_counter()
        parts: list[ReductionObject] = sorted_robjs(robjs)
        if stream_acc is not None:
            parts = [stream_acc, *parts]
        if sync is not None and not stream:
            parts += [child_robjs[name] for name in sync.children]
        combined = merge_all(parts)
        self.combine_seconds += time.perf_counter() - started
        if self.trace is not None:
            self.trace.emit("combine_done", cluster=self.name)
        if sync is None:
            self.head_inbox.post(
                ReductionUpload(cluster=self.name, blob=combined.to_bytes())
            )
        else:
            encoded = sync.codec.encode(self.name, combined)
            self.sync_wire_bytes += len(encoded.blob)
            self.sync_dense_bytes += len(encoded.dense)
            if self.trace is not None:
                self.trace.emit(
                    "sync_upload", cluster=self.name,
                    detail=(
                        f"{encoded.encoding}+{encoded.compression} "
                        f"{len(encoded.blob)}/{len(encoded.dense)}B"
                    ),
                )
            sync.parent_inbox.post(
                ReductionUpload(
                    cluster=self.name,
                    blob=encoded.blob,
                    origins=(self.name, *child_origins),
                )
            )
        if self.trace is not None:
            self.trace.emit("robj_sent", cluster=self.name)


def sorted_robjs(messages: list[SlaveReduction]):
    """Merge slave objects in slave-id order so runs are deterministic."""
    return [m.robj for m in sorted(messages, key=lambda m: m.slave_id)]
