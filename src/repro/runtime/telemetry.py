"""Wall-clock telemetry for the executable runtime.

Mirrors the simulator's metric decomposition at functional scale: per-slave
processing and retrieval seconds, per-cluster aggregation, and run totals.
These numbers are *measurements* of the in-process run — useful for the
examples and the API-overhead comparisons — not the paper's testbed
prediction (that is the simulator's job).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Callable

from ..errors import DataFormatError

__all__ = ["Stopwatch", "SlaveTelemetry", "ClusterTelemetry", "RunTelemetry"]


class Stopwatch:
    """Accumulating timer: ``with watch: ...`` adds the block's duration.

    ``clock`` is injectable so tests can drive a fake time source instead
    of sleeping for real (see :mod:`repro.clock`).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.total = 0.0
        self._clock = clock
        self._started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = self._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started is not None
        self.total += self._clock() - self._started
        self._started = None


@dataclass
class SlaveTelemetry:
    """One slave's accumulated timings."""

    slave_id: int
    cluster: str
    processing: Stopwatch = field(default_factory=Stopwatch)
    retrieval: Stopwatch = field(default_factory=Stopwatch)
    jobs: int = 0


@dataclass
class ClusterTelemetry:
    """Aggregated per-cluster view."""

    cluster: str
    site: str
    slaves: int
    jobs: int
    stolen: int
    mean_processing: float
    mean_retrieval: float

    @staticmethod
    def aggregate(
        cluster: str, site: str, slaves: list[SlaveTelemetry], stolen: int
    ) -> "ClusterTelemetry":
        n = max(1, len(slaves))
        return ClusterTelemetry(
            cluster=cluster,
            site=site,
            slaves=len(slaves),
            jobs=sum(s.jobs for s in slaves),
            stolen=stolen,
            mean_processing=sum(s.processing.total for s in slaves) / n,
            mean_retrieval=sum(s.retrieval.total for s in slaves) / n,
        )


@dataclass
class RunTelemetry:
    """Whole-run accounting returned alongside the application result.

    ``metrics`` is the :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    taken at the end of the run when the driver was given a registry —
    plain data, so it serializes with the rest.
    """

    wall_seconds: float
    clusters: dict[str, ClusterTelemetry] = field(default_factory=dict)
    slaves_failed: int = 0
    jobs_reexecuted: int = 0
    #: Elastic-bursting accounting (see :mod:`repro.scale`): slaves the
    #: autoscaler attached mid-run, spot instances revoked out from under
    #: their jobs, and the controller's accrued cloud spend in dollars.
    slaves_added: int = 0
    slaves_revoked: int = 0
    dollars_spent: float = 0.0
    #: Data-path recovery accounting (see :mod:`repro.resilience`): filled
    #: by the driver from the reader's shared stats when a retry policy is
    #: active; all zero otherwise.
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    timeouts: int = 0
    circuit_opens: int = 0
    faults_injected: int = 0
    #: Chunk-cache and prefetch accounting (see :mod:`repro.cache`):
    #: filled by the driver when a cache/prefetcher is active; all zero
    #: otherwise. ``bytes_saved`` counts remote bytes served from cache
    #: instead of the network.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    bytes_saved: int = 0
    prefetches: int = 0
    #: Global-reduction sync accounting (see :mod:`repro.core.sync`):
    #: filled by the driver when a :class:`~repro.core.sync.SyncSpec` is
    #: active. ``sync_bytes_saved`` is dense-minus-wire across every
    #: upload this run; ``sync_partial_merges`` counts streamed slave
    #: flushes folded before the barrier.
    sync_uploads: int = 0
    sync_bytes_sent: int = 0
    sync_bytes_saved: int = 0
    sync_partial_merges: int = 0
    #: Zero-copy data-path accounting (see :mod:`repro.data.dataset`):
    #: ``zero_copy_reads`` counts chunk reads served as read-only views
    #: over an existing buffer (cache hits, in-memory object-store
    #: ranges); ``bytes_copied`` counts the bytes that had to be
    #: materialized (retriever-joined remote reads, non-view backends).
    #: A hot read loop proves itself copy-free when this stays 0.
    zero_copy_reads: int = 0
    bytes_copied: int = 0
    metrics: dict | None = None
    #: Causal-span digest (:func:`repro.obs.spans.span_summary`): per-phase
    #: time totals and the critical path through the makespan. Filled by
    #: the driver when the run was traced; ``None`` otherwise.
    spans: dict | None = None

    @property
    def total_jobs(self) -> int:
        return sum(c.jobs for c in self.clusters.values())

    @property
    def total_stolen(self) -> int:
        return sum(c.stolen for c in self.clusters.values())

    # -- serialization (mirrors SimReport's, so examples and benches can
    # persist runtime measurements the same way they persist sim reports) --

    def to_dict(self) -> dict:
        """Plain-data form for persistence or downstream tooling."""
        return {
            "wall_seconds": self.wall_seconds,
            "slaves_failed": self.slaves_failed,
            "jobs_reexecuted": self.jobs_reexecuted,
            "slaves_added": self.slaves_added,
            "slaves_revoked": self.slaves_revoked,
            "dollars_spent": self.dollars_spent,
            "retries": self.retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "timeouts": self.timeouts,
            "circuit_opens": self.circuit_opens,
            "faults_injected": self.faults_injected,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "bytes_saved": self.bytes_saved,
            "prefetches": self.prefetches,
            "sync_uploads": self.sync_uploads,
            "sync_bytes_sent": self.sync_bytes_sent,
            "sync_bytes_saved": self.sync_bytes_saved,
            "sync_partial_merges": self.sync_partial_merges,
            "zero_copy_reads": self.zero_copy_reads,
            "bytes_copied": self.bytes_copied,
            "clusters": {name: asdict(c) for name, c in self.clusters.items()},
            "metrics": self.metrics,
            "spans": self.spans,
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: dict) -> "RunTelemetry":
        try:
            clusters = {
                name: ClusterTelemetry(**fields)
                for name, fields in doc["clusters"].items()
            }
            return cls(
                wall_seconds=float(doc["wall_seconds"]),
                clusters=clusters,
                slaves_failed=int(doc.get("slaves_failed", 0)),
                jobs_reexecuted=int(doc.get("jobs_reexecuted", 0)),
                slaves_added=int(doc.get("slaves_added", 0)),
                slaves_revoked=int(doc.get("slaves_revoked", 0)),
                dollars_spent=float(doc.get("dollars_spent", 0.0)),
                retries=int(doc.get("retries", 0)),
                hedges=int(doc.get("hedges", 0)),
                hedge_wins=int(doc.get("hedge_wins", 0)),
                timeouts=int(doc.get("timeouts", 0)),
                circuit_opens=int(doc.get("circuit_opens", 0)),
                faults_injected=int(doc.get("faults_injected", 0)),
                cache_hits=int(doc.get("cache_hits", 0)),
                cache_misses=int(doc.get("cache_misses", 0)),
                cache_evictions=int(doc.get("cache_evictions", 0)),
                bytes_saved=int(doc.get("bytes_saved", 0)),
                prefetches=int(doc.get("prefetches", 0)),
                sync_uploads=int(doc.get("sync_uploads", 0)),
                sync_bytes_sent=int(doc.get("sync_bytes_sent", 0)),
                sync_bytes_saved=int(doc.get("sync_bytes_saved", 0)),
                sync_partial_merges=int(doc.get("sync_partial_merges", 0)),
                zero_copy_reads=int(doc.get("zero_copy_reads", 0)),
                bytes_copied=int(doc.get("bytes_copied", 0)),
                metrics=doc.get("metrics"),
                spans=doc.get("spans"),
            )
        except (KeyError, TypeError) as exc:
            raise DataFormatError(f"malformed telemetry document: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "RunTelemetry":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DataFormatError(f"telemetry is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)
