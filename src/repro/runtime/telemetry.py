"""Wall-clock telemetry for the executable runtime.

Mirrors the simulator's metric decomposition at functional scale: per-slave
processing and retrieval seconds, per-cluster aggregation, and run totals.
These numbers are *measurements* of the in-process run — useful for the
examples and the API-overhead comparisons — not the paper's testbed
prediction (that is the simulator's job).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "SlaveTelemetry", "ClusterTelemetry", "RunTelemetry"]


class Stopwatch:
    """Accumulating timer: ``with watch: ...`` adds the block's duration."""

    def __init__(self) -> None:
        self.total = 0.0
        self._started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started is not None
        self.total += time.perf_counter() - self._started
        self._started = None


@dataclass
class SlaveTelemetry:
    """One slave's accumulated timings."""

    slave_id: int
    cluster: str
    processing: Stopwatch = field(default_factory=Stopwatch)
    retrieval: Stopwatch = field(default_factory=Stopwatch)
    jobs: int = 0


@dataclass
class ClusterTelemetry:
    """Aggregated per-cluster view."""

    cluster: str
    site: str
    slaves: int
    jobs: int
    stolen: int
    mean_processing: float
    mean_retrieval: float

    @staticmethod
    def aggregate(
        cluster: str, site: str, slaves: list[SlaveTelemetry], stolen: int
    ) -> "ClusterTelemetry":
        n = max(1, len(slaves))
        return ClusterTelemetry(
            cluster=cluster,
            site=site,
            slaves=len(slaves),
            jobs=sum(s.jobs for s in slaves),
            stolen=stolen,
            mean_processing=sum(s.processing.total for s in slaves) / n,
            mean_retrieval=sum(s.retrieval.total for s in slaves) / n,
        )


@dataclass
class RunTelemetry:
    """Whole-run accounting returned alongside the application result."""

    wall_seconds: float
    clusters: dict[str, ClusterTelemetry] = field(default_factory=dict)
    slaves_failed: int = 0
    jobs_reexecuted: int = 0

    @property
    def total_jobs(self) -> int:
        return sum(c.jobs for c in self.clusters.values())

    @property
    def total_stolen(self) -> int:
        return sum(c.stolen for c in self.clusters.values())
