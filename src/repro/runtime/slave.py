"""The slave worker.

One thread per active core: request a job, retrieve the chunk (sequential
local read or multi-threaded remote fetch — :class:`DatasetReader` picks),
decode into data units, run the local reduction over cache-sized unit
groups, report completion; when the master answers ``None`` the slave hands
over its private reduction object and exits. This is the executable
counterpart of :class:`repro.sim.simnodes.SimSlave`.

With ``prefetch=True`` the job acquisition and chunk fetch move to a
:class:`~repro.cache.Prefetcher` pipeline stage: while this thread runs
the reduction over job *N*, the prefetcher is already asking the master
for job *N+1* and pulling its bytes, so retrieval overlaps compute. The
default path constructs none of that machinery.

With a ``process_slave`` (see :mod:`repro.runtime.procpool`) this thread
becomes a proxy: it still owns the whole master conversation and the
chunk fetch, but decode + local reduction run in a dedicated worker
process fed through shared memory — the GIL-free substrate. The partials
it posts (watermark flushes and the final hand-over) come from
``process_slave.take()``, so the master cannot tell the substrates
apart.
"""

from __future__ import annotations

import threading

from typing import Callable

from ..cache import Prefetcher
from ..core.api import GeneralizedReductionApp
from ..core.job import Job
from ..data.dataset import DatasetReader
from ..errors import RuntimeProtocolError, SpotRevocation, WorkerFailure
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from .messages import SlaveFailed, SlaveJobDone, SlaveJobRequest, SlaveReduction
from .telemetry import SlaveTelemetry
from .transport import Mailbox

__all__ = ["SlaveWorker", "FaultHook"]

#: Fault-injection hook, called before each job is processed. Raising
#: :class:`~repro.errors.WorkerFailure` "crashes" this worker; the master
#: re-executes its work on the survivors.
FaultHook = Callable[[int, Job], None]


class SlaveWorker:
    """Runs as one thread."""

    def __init__(
        self,
        slave_id: int,
        cluster: str,
        site: str,
        app: GeneralizedReductionApp,
        reader: DatasetReader,
        master_inbox: Mailbox,
        *,
        units_per_group: int = 4096,
        fault_hook: FaultHook | None = None,
        trace: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
        take_timeout: float = 60.0,
        prefetch: bool = False,
        sync_watermark: int = 0,
        process_slave=None,
    ) -> None:
        self.slave_id = slave_id
        self.cluster = cluster
        self.site = site
        self.app = app
        self.reader = reader
        self.master_inbox = master_inbox
        self.units_per_group = units_per_group
        self.fault_hook = fault_hook
        self.trace = trace
        #: Double-buffer job acquisition + fetch behind compute.
        self.prefetch = prefetch
        self.prefetches = 0
        #: Streaming partial merges: after this many completed jobs the
        #: slave flushes its reduction object to the master and starts a
        #: fresh one, so global reduction overlaps the compute tail.
        #: ``0`` (the default) keeps the original hand-over-at-exit path.
        self.sync_watermark = sync_watermark
        self.sync_flushes = 0
        #: Optional :class:`~repro.runtime.procpool.ProcessSlave`: when
        #: set, this thread proxies decode + local reduction to a worker
        #: process instead of running them under the GIL.
        self.process_slave = process_slave
        self._robj = None
        self._flushed_jobs: list[int] = []
        self._metrics = metrics
        #: Mailbox-receive timeout, threaded from the driver's
        #: ``join_timeout`` so short-deadline fault tests are not pinned
        #: to a hard-coded minute.
        self.take_timeout = take_timeout
        # Instruments are registry-wide: every slave shares one histogram,
        # fetched once here so the job loop stays allocation-free.
        self._fetch_hist = metrics.histogram("fetch_seconds") if metrics else None
        self._compute_hist = (
            metrics.histogram("compute_seconds") if metrics else None
        )
        self._jobs_counter = metrics.counter("jobs_done") if metrics else None
        self.reply = Mailbox(f"slave:{cluster}:{slave_id}")
        self.telemetry = SlaveTelemetry(slave_id=slave_id, cluster=cluster)
        self.crashed = False
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name=f"slave:{self.cluster}:{self.slave_id}", daemon=True
        )
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is None:
            raise RuntimeProtocolError(f"slave {self.slave_id} was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeProtocolError(f"slave {self.slave_id} did not finish")
        if self._failure is not None:
            raise self._failure

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- worker loop --------------------------------------------------------

    def _run(self) -> None:
        current: list[Job | None] = [None]
        try:
            self._work(current)
        except WorkerFailure as exc:
            # An injected crash: the worker dies, the middleware recovers.
            # A SpotRevocation is the same death with different paperwork —
            # the master accounts it as a revocation, not a failure.
            self.crashed = True
            self.master_inbox.post(
                SlaveFailed(
                    slave_id=self.slave_id,
                    in_flight=current[0],
                    revoked=isinstance(exc, SpotRevocation),
                )
            )
        except BaseException as exc:
            # A genuine bug: recover the run (re-execute this worker's jobs
            # elsewhere so the result stays correct) but surface the error
            # when the driver joins this slave.
            self._failure = exc
            self.crashed = True
            self.master_inbox.post(
                SlaveFailed(slave_id=self.slave_id, in_flight=current[0])
            )

    def _work(self, current: list) -> None:
        self._robj = self.app.create_reduction_object()
        self._flushed_jobs.clear()
        if self.prefetch:
            self._work_pipelined(current)
        else:
            self._work_sequential(current)
        if self.process_slave is not None:
            # Pull the worker process's accumulated partial so the final
            # hand-over below is identical to a threaded slave's.
            self._robj = self.process_slave.take()
        self.master_inbox.post(
            SlaveReduction(
                slave_id=self.slave_id,
                robj=self._robj,
                partial=False,
                job_ids=tuple(self._flushed_jobs),
            )
        )

    def _maybe_flush(self) -> None:
        """Streaming mode: hand the accumulated partial to the master at
        the watermark and start fresh. The listed jobs are committed —
        the master will not re-execute them if this slave later dies."""
        if not self.sync_watermark:
            return
        if len(self._flushed_jobs) < self.sync_watermark:
            return
        if self.process_slave is not None:
            self._robj = self.process_slave.take()
        self.master_inbox.post(
            SlaveReduction(
                slave_id=self.slave_id,
                robj=self._robj,
                partial=True,
                job_ids=tuple(self._flushed_jobs),
            )
        )
        self.sync_flushes += 1
        if self.trace is not None:
            self.trace.emit(
                "sync_partial", cluster=self.cluster, worker=self.slave_id,
                detail=f"{len(self._flushed_jobs)} jobs committed",
            )
        self._robj = self.app.create_reduction_object()
        self._flushed_jobs = []

    def _work_sequential(self, current: list) -> None:
        telemetry = self.telemetry
        trace = self.trace
        while True:
            self.master_inbox.post(
                SlaveJobRequest(slave_id=self.slave_id, reply_to=self.reply)
            )
            reply = self.reply.take(timeout=self.take_timeout)
            job = reply.job
            if job is None:
                break
            current[0] = job
            if self.fault_hook is not None:
                self.fault_hook(self.slave_id, job)
            if trace is not None:
                trace.emit(
                    "fetch_start", cluster=self.cluster, worker=self.slave_id,
                    job_id=job.job_id, file_id=job.file_id,
                )
            before_fetch = telemetry.retrieval.total
            with telemetry.retrieval:
                raw = self.reader.read_job(job, from_site=self.site)
            if trace is not None:
                trace.emit(
                    "fetch_end", cluster=self.cluster, worker=self.slave_id,
                    job_id=job.job_id, file_id=job.file_id,
                )
            if self._fetch_hist is not None:
                self._fetch_hist.observe(telemetry.retrieval.total - before_fetch)
            self._process(job, raw)
            current[0] = None

    def _work_pipelined(self, current: list) -> None:
        """Two-stage pipeline: the prefetcher acquires and fetches job
        *N+1* while this thread reduces job *N*.

        The next request is issued *before* computing the current job,
        never before reporting it done — the master parks a request on an
        empty pool until the in-flight count drains, and our own
        ``SlaveJobDone`` is what drains it, so the pipeline always
        terminates (the parked final request is answered ``None``).
        """
        telemetry = self.telemetry
        prefetcher = Prefetcher(
            self._acquire, self._fetch_for_prefetch,
            cluster=self.cluster, worker=self.slave_id,
            trace=self.trace, metrics=self._metrics,
        )
        try:
            prefetcher.request()
            while True:
                before_fetch = telemetry.retrieval.total
                # The stopwatch sees only the *blocked* wait: bytes
                # fetched while we were computing cost nothing here.
                with telemetry.retrieval:
                    job, raw = prefetcher.take(timeout=self.take_timeout)
                if job is None:
                    break
                current[0] = job
                if self.fault_hook is not None:
                    self.fault_hook(self.slave_id, job)
                prefetcher.request()
                if self._fetch_hist is not None:
                    self._fetch_hist.observe(
                        telemetry.retrieval.total - before_fetch
                    )
                self._process(job, raw)
                current[0] = None
        finally:
            self.prefetches = prefetcher.prefetches
            prefetcher.close()

    def _acquire(self) -> Job | None:
        """Prefetcher stage 1: ask the master for the next job (blocking)."""
        self.master_inbox.post(
            SlaveJobRequest(slave_id=self.slave_id, reply_to=self.reply)
        )
        return self.reply.take(timeout=self.take_timeout).job

    def _fetch_for_prefetch(self, job: Job) -> bytes:
        """Prefetcher stage 2: pull the chunk's bytes (cache first)."""
        return self.reader.read_job(job, from_site=self.site)

    def _process(self, job: Job, raw: bytes) -> None:
        """Decode + local reduction + completion accounting for one job."""
        robj = self._robj
        telemetry = self.telemetry
        trace = self.trace
        if trace is not None:
            trace.emit(
                "compute_start", cluster=self.cluster, worker=self.slave_id,
                job_id=job.job_id,
            )
        before_compute = telemetry.processing.total
        with telemetry.processing:
            if self.process_slave is not None:
                # Stage the bytes into shared memory and block until the
                # worker process has decoded + reduced them.
                self.process_slave.reduce(raw)
            else:
                units = self.app.decode_chunk(raw)
                for group in self.app.unit_groups(units, self.units_per_group):
                    self.app.local_reduction(robj, group)
        if trace is not None:
            trace.emit(
                "compute_end", cluster=self.cluster, worker=self.slave_id,
                job_id=job.job_id,
            )
            trace.emit(
                "job_done", cluster=self.cluster, worker=self.slave_id,
                job_id=job.job_id,
            )
        if self._compute_hist is not None:
            self._compute_hist.observe(
                telemetry.processing.total - before_compute
            )
        if self._jobs_counter is not None:
            self._jobs_counter.inc()
        telemetry.jobs += 1
        self.master_inbox.post(SlaveJobDone(slave_id=self.slave_id, job=job))
        self._flushed_jobs.append(job.job_id)
        self._maybe_flush()
