"""The slave worker.

One thread per active core: request a job, retrieve the chunk (sequential
local read or multi-threaded remote fetch — :class:`DatasetReader` picks),
decode into data units, run the local reduction over cache-sized unit
groups, report completion; when the master answers ``None`` the slave hands
over its private reduction object and exits. This is the executable
counterpart of :class:`repro.sim.simnodes.SimSlave`.
"""

from __future__ import annotations

import threading

from typing import Callable

from ..core.api import GeneralizedReductionApp
from ..core.job import Job
from ..data.dataset import DatasetReader
from ..errors import RuntimeProtocolError, WorkerFailure
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from .messages import SlaveFailed, SlaveJobDone, SlaveJobRequest, SlaveReduction
from .telemetry import SlaveTelemetry
from .transport import Mailbox

__all__ = ["SlaveWorker", "FaultHook"]

#: Fault-injection hook, called before each job is processed. Raising
#: :class:`~repro.errors.WorkerFailure` "crashes" this worker; the master
#: re-executes its work on the survivors.
FaultHook = Callable[[int, Job], None]


class SlaveWorker:
    """Runs as one thread."""

    def __init__(
        self,
        slave_id: int,
        cluster: str,
        site: str,
        app: GeneralizedReductionApp,
        reader: DatasetReader,
        master_inbox: Mailbox,
        *,
        units_per_group: int = 4096,
        fault_hook: FaultHook | None = None,
        trace: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
        take_timeout: float = 60.0,
    ) -> None:
        self.slave_id = slave_id
        self.cluster = cluster
        self.site = site
        self.app = app
        self.reader = reader
        self.master_inbox = master_inbox
        self.units_per_group = units_per_group
        self.fault_hook = fault_hook
        self.trace = trace
        #: Mailbox-receive timeout, threaded from the driver's
        #: ``join_timeout`` so short-deadline fault tests are not pinned
        #: to a hard-coded minute.
        self.take_timeout = take_timeout
        # Instruments are registry-wide: every slave shares one histogram,
        # fetched once here so the job loop stays allocation-free.
        self._fetch_hist = metrics.histogram("fetch_seconds") if metrics else None
        self._compute_hist = (
            metrics.histogram("compute_seconds") if metrics else None
        )
        self._jobs_counter = metrics.counter("jobs_done") if metrics else None
        self.reply = Mailbox(f"slave:{cluster}:{slave_id}")
        self.telemetry = SlaveTelemetry(slave_id=slave_id, cluster=cluster)
        self.crashed = False
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name=f"slave:{self.cluster}:{self.slave_id}", daemon=True
        )
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is None:
            raise RuntimeProtocolError(f"slave {self.slave_id} was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeProtocolError(f"slave {self.slave_id} did not finish")
        if self._failure is not None:
            raise self._failure

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- worker loop --------------------------------------------------------

    def _run(self) -> None:
        current: list[Job | None] = [None]
        try:
            self._work(current)
        except WorkerFailure:
            # An injected crash: the worker dies, the middleware recovers.
            self.crashed = True
            self.master_inbox.post(
                SlaveFailed(slave_id=self.slave_id, in_flight=current[0])
            )
        except BaseException as exc:
            # A genuine bug: recover the run (re-execute this worker's jobs
            # elsewhere so the result stays correct) but surface the error
            # when the driver joins this slave.
            self._failure = exc
            self.crashed = True
            self.master_inbox.post(
                SlaveFailed(slave_id=self.slave_id, in_flight=current[0])
            )

    def _work(self, current: list) -> None:
        robj = self.app.create_reduction_object()
        telemetry = self.telemetry
        trace = self.trace
        while True:
            self.master_inbox.post(
                SlaveJobRequest(slave_id=self.slave_id, reply_to=self.reply)
            )
            reply = self.reply.take(timeout=self.take_timeout)
            job = reply.job
            if job is None:
                break
            current[0] = job
            if self.fault_hook is not None:
                self.fault_hook(self.slave_id, job)
            if trace is not None:
                trace.emit(
                    "fetch_start", cluster=self.cluster, worker=self.slave_id,
                    job_id=job.job_id, file_id=job.file_id,
                )
            before_fetch = telemetry.retrieval.total
            with telemetry.retrieval:
                raw = self.reader.read_job(job, from_site=self.site)
            if trace is not None:
                trace.emit(
                    "fetch_end", cluster=self.cluster, worker=self.slave_id,
                    job_id=job.job_id, file_id=job.file_id,
                )
            if self._fetch_hist is not None:
                self._fetch_hist.observe(telemetry.retrieval.total - before_fetch)
            if trace is not None:
                trace.emit(
                    "compute_start", cluster=self.cluster, worker=self.slave_id,
                    job_id=job.job_id,
                )
            before_compute = telemetry.processing.total
            with telemetry.processing:
                units = self.app.decode_chunk(raw)
                for group in self.app.unit_groups(units, self.units_per_group):
                    self.app.local_reduction(robj, group)
            if trace is not None:
                trace.emit(
                    "compute_end", cluster=self.cluster, worker=self.slave_id,
                    job_id=job.job_id,
                )
                trace.emit(
                    "job_done", cluster=self.cluster, worker=self.slave_id,
                    job_id=job.job_id,
                )
            if self._compute_hist is not None:
                self._compute_hist.observe(
                    telemetry.processing.total - before_compute
                )
            if self._jobs_counter is not None:
                self._jobs_counter.inc()
            telemetry.jobs += 1
            self.master_inbox.post(SlaveJobDone(slave_id=self.slave_id, job=job))
            current[0] = None
        self.master_inbox.post(SlaveReduction(slave_id=self.slave_id, robj=robj))
