"""Executable middleware: head/master/slave threads over real data.

Functional twin of the simulator — the same scheduler and protocol with
real bytes. Used by the integration tests (distributed result == serial
oracle) and the examples.
"""

from .centralized import centralized_runtime, run_centralized
from .driver import SLAVE_MODES, CloudBurstingRuntime, RuntimeResult, run_iterative
from .head import HeadNode
from .master import MasterNode
from .procpool import ProcessSlave, ProcessSlavePool
from .slave import SlaveWorker
from .telemetry import ClusterTelemetry, RunTelemetry, SlaveTelemetry, Stopwatch
from .transport import Mailbox

__all__ = [
    "centralized_runtime",
    "run_centralized",
    "CloudBurstingRuntime",
    "RuntimeResult",
    "run_iterative",
    "SLAVE_MODES",
    "HeadNode",
    "MasterNode",
    "ProcessSlave",
    "ProcessSlavePool",
    "SlaveWorker",
    "ClusterTelemetry",
    "RunTelemetry",
    "SlaveTelemetry",
    "Stopwatch",
    "Mailbox",
]
