"""Executable middleware: head/master/slave threads over real data.

Functional twin of the simulator — the same scheduler and protocol with
real bytes. Used by the integration tests (distributed result == serial
oracle) and the examples.
"""

from .centralized import centralized_runtime, run_centralized
from .driver import CloudBurstingRuntime, RuntimeResult, run_iterative
from .head import HeadNode
from .master import MasterNode
from .slave import SlaveWorker
from .telemetry import ClusterTelemetry, RunTelemetry, SlaveTelemetry, Stopwatch
from .transport import Mailbox

__all__ = [
    "centralized_runtime",
    "run_centralized",
    "CloudBurstingRuntime",
    "RuntimeResult",
    "run_iterative",
    "HeadNode",
    "MasterNode",
    "SlaveWorker",
    "ClusterTelemetry",
    "RunTelemetry",
    "SlaveTelemetry",
    "Stopwatch",
    "Mailbox",
]
