"""The head node.

Responsibilities (Section III-B): turn the data index into the job pool,
serve masters' job requests with the locality-aware scheduler, track group
completions for the contention heuristic, and — once every cluster has
uploaded its combined reduction object — perform the global reduction and
publish the final object.
"""

from __future__ import annotations

import threading

from ..core.reduction import ReductionObject, from_bytes
from ..core.scheduler import HeadScheduler
from ..errors import RuntimeProtocolError, RuntimeTimeoutError
from ..obs.events import EventLog
from .messages import GroupComplete, HeadResult, JobReply, JobRequest, ReductionUpload
from .transport import Mailbox

__all__ = ["HeadNode"]


class HeadNode:
    """Runs as one thread; owns the scheduler and the final merge."""

    def __init__(
        self,
        scheduler: HeadScheduler,
        expected_clusters: list[str],
        *,
        mailbox: Mailbox | None = None,
        trace: EventLog | None = None,
        take_timeout: float = 60.0,
    ) -> None:
        if not expected_clusters:
            raise RuntimeProtocolError("head needs at least one cluster")
        self.scheduler = scheduler
        self.expected = list(expected_clusters)
        self.trace = trace
        #: Mailbox-receive timeout, threaded from the driver's ``join_timeout``.
        self.take_timeout = take_timeout
        self.inbox = mailbox or Mailbox("head")
        self.result: HeadResult | None = None
        self.global_reduction_seconds = 0.0
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run, name="head", daemon=True)
        self._thread.start()

    def join(self, timeout: float | None = None) -> HeadResult:
        if self._thread is None:
            raise RuntimeProtocolError("head was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeTimeoutError(f"head did not finish within {timeout}s")
        if self._failure is not None:
            raise self._failure
        assert self.result is not None
        return self.result

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- the protocol loop ----------------------------------------------------

    def _run(self) -> None:
        try:
            self._serve()
        except BaseException as exc:  # surface in join()
            self._failure = exc

    def _serve(self) -> None:
        import time

        uploads: dict[str, ReductionObject] = {}
        while len(uploads) < len(self.expected):
            message = self.inbox.take(timeout=self.take_timeout)
            if isinstance(message, JobRequest):
                group = self.scheduler.request_jobs(message.cluster, message.max_jobs)
                message.reply_to.post(JobReply(group))
            elif isinstance(message, GroupComplete):
                self.scheduler.complete_group(message.group_id)
                if self.trace is not None:
                    self.trace.emit(
                        "group_acked", cluster=message.cluster,
                        detail=f"group {message.group_id}",
                    )
            elif isinstance(message, ReductionUpload):
                if message.cluster in uploads:
                    raise RuntimeProtocolError(
                        f"cluster {message.cluster!r} uploaded twice"
                    )
                if message.cluster not in self.expected:
                    raise RuntimeProtocolError(
                        f"upload from unknown cluster {message.cluster!r}"
                    )
                uploads[message.cluster] = from_bytes(message.blob)
            else:
                raise RuntimeProtocolError(
                    f"head received unexpected message {type(message).__name__}"
                )
        # Global reduction: merge in registration order for determinism.
        started = time.perf_counter()
        merged: ReductionObject | None = None
        for cluster in self.expected:
            robj = uploads[cluster]
            if merged is None:
                merged = robj.clone_empty()
            merged.merge(robj)
            if self.trace is not None:
                self.trace.emit("merge_done", cluster=cluster)
        assert merged is not None
        self.global_reduction_seconds = time.perf_counter() - started
        self.result = HeadResult(
            blob=merged.to_bytes(), clusters_reported=tuple(self.expected)
        )
