"""The head node.

Responsibilities (Section III-B): turn the data index into the job pool,
serve masters' job requests with the locality-aware scheduler, track group
completions for the contention heuristic, and — once every cluster has
uploaded its combined reduction object — perform the global reduction and
publish the final object.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..clock import SYSTEM_CLOCK
from ..core.reduction import ReductionObject, from_bytes
from ..core.scheduler import HeadScheduler
from ..core.sync import SyncCodec
from ..errors import RuntimeProtocolError, RuntimeTimeoutError
from ..obs.events import EventLog
from .messages import GroupComplete, HeadResult, JobReply, JobRequest, ReductionUpload
from .transport import Mailbox

__all__ = ["HeadSync", "HeadNode"]


@dataclass(frozen=True)
class HeadSync:
    """The head's slice of the sync plan: which clusters upload directly
    (the plan roots — all of them under star, fewer under tree/ring) and
    whether to merge on arrival (``stream``) or behind the barrier."""

    codec: SyncCodec
    roots: tuple[str, ...]
    stream: bool = False


class HeadNode:
    """Runs as one thread; owns the scheduler and the final merge."""

    def __init__(
        self,
        scheduler: HeadScheduler,
        expected_clusters: list[str],
        *,
        mailbox: Mailbox | None = None,
        trace: EventLog | None = None,
        take_timeout: float = 60.0,
        clock=None,
        sync: HeadSync | None = None,
    ) -> None:
        if not expected_clusters:
            raise RuntimeProtocolError("head needs at least one cluster")
        self.scheduler = scheduler
        self.expected = list(expected_clusters)
        self.trace = trace
        #: Timing source for the global-reduction stopwatch — injectable
        #: so tests can pin it (:class:`repro.clock.FakeClock`).
        self.clock = clock or SYSTEM_CLOCK
        self.sync = sync
        #: Mailbox-receive timeout, threaded from the driver's ``join_timeout``.
        self.take_timeout = take_timeout
        self.inbox = mailbox or Mailbox("head")
        self.result: HeadResult | None = None
        self.global_reduction_seconds = 0.0
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run, name="head", daemon=True)
        self._thread.start()

    def join(self, timeout: float | None = None) -> HeadResult:
        if self._thread is None:
            raise RuntimeProtocolError("head was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeTimeoutError(f"head did not finish within {timeout}s")
        if self._failure is not None:
            raise self._failure
        assert self.result is not None
        return self.result

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- the protocol loop ----------------------------------------------------

    def _run(self) -> None:
        try:
            self._serve()
        except BaseException as exc:  # surface in join()
            self._failure = exc

    def _serve(self) -> None:
        sync = self.sync
        stream = sync is not None and sync.stream
        # Under tree/ring aggregation only the plan roots reach the head;
        # their uploads carry ``origins`` proving descendant coverage.
        uploaders = list(sync.roots) if sync is not None else self.expected
        clock = self.clock
        uploads: dict[str, ReductionObject] = {}
        covered: set[str] = set()
        merged: ReductionObject | None = None
        while len(uploads) < len(uploaders):
            message = self.inbox.take(timeout=self.take_timeout)
            if isinstance(message, JobRequest):
                group = self.scheduler.request_jobs(message.cluster, message.max_jobs)
                message.reply_to.post(JobReply(group))
            elif isinstance(message, GroupComplete):
                self.scheduler.complete_group(message.group_id)
                if self.trace is not None:
                    self.trace.emit(
                        "group_acked", cluster=message.cluster,
                        detail=f"group {message.group_id}",
                    )
            elif isinstance(message, ReductionUpload):
                if message.cluster in uploads:
                    raise RuntimeProtocolError(
                        f"cluster {message.cluster!r} uploaded twice"
                    )
                if message.cluster not in uploaders:
                    raise RuntimeProtocolError(
                        f"upload from unknown cluster {message.cluster!r}"
                    )
                if sync is not None:
                    robj = sync.codec.decode(message.cluster, message.blob)
                else:
                    robj = from_bytes(message.blob)
                covered.update(message.covered)
                uploads[message.cluster] = robj
                if stream:
                    started = clock.monotonic()
                    if merged is None:
                        merged = robj.clone_empty()
                    merged.merge(robj)
                    self.global_reduction_seconds += clock.monotonic() - started
                    if self.trace is not None:
                        self.trace.emit("merge_done", cluster=message.cluster)
            else:
                raise RuntimeProtocolError(
                    f"head received unexpected message {type(message).__name__}"
                )
        if covered != set(self.expected):
            missing = sorted(set(self.expected) - covered)
            extra = sorted(covered - set(self.expected))
            raise RuntimeProtocolError(
                f"global reduction coverage mismatch: missing {missing}, "
                f"unknown {extra}"
            )
        if merged is None:
            # Barrier: merge in plan order for determinism.
            started = clock.monotonic()
            for cluster in uploaders:
                robj = uploads[cluster]
                if merged is None:
                    merged = robj.clone_empty()
                merged.merge(robj)
                if self.trace is not None:
                    self.trace.emit("merge_done", cluster=cluster)
            self.global_reduction_seconds = clock.monotonic() - started
        assert merged is not None
        self.result = HeadResult(
            blob=merged.to_bytes(), clusters_reported=tuple(self.expected)
        )
