"""Queue transport between runtime components.

Every node owns a :class:`Mailbox`. The executable runtime runs all nodes
as threads in one process, so a mailbox is a thin wrapper over
:class:`queue.Queue` that adds message counting and an optional wall-clock
delay injector (used by examples to make the WAN visible; tests and normal
runs leave it off). Replacing this module with real sockets is the
intended extension point for a multi-process deployment.
"""

from __future__ import annotations

import queue
import time
from typing import Any, Callable

from ..errors import RuntimeProtocolError

__all__ = ["Mailbox"]


class Mailbox:
    """A named FIFO message endpoint."""

    def __init__(
        self,
        name: str,
        *,
        delay: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if delay < 0:
            raise RuntimeProtocolError(f"mailbox {name!r}: negative delay")
        self.name = name
        self.delay = delay
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._clock = clock
        self.sent = 0
        self.received = 0

    def post(self, message: Any) -> None:
        """Deliver a message (after the configured delay, if any)."""
        if self.delay > 0:
            time.sleep(self.delay)
        self.sent += 1
        self._queue.put(message)

    def take(self, timeout: float | None = None) -> Any:
        """Blocking receive; raises :class:`RuntimeProtocolError` on timeout."""
        try:
            message = self._queue.get(timeout=timeout)
        except queue.Empty:
            raise RuntimeProtocolError(
                f"mailbox {self.name!r}: no message within {timeout}s"
            ) from None
        self.received += 1
        return message

    def __len__(self) -> int:
        return self._queue.qsize()
