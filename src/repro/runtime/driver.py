"""End-to-end executable runtime.

:class:`CloudBurstingRuntime` assembles head + masters + slaves as threads
over real data in the storage layer, runs an application to completion, and
returns the final result with telemetry. It is the functional twin of
:class:`repro.sim.simulation.CloudBurstSimulation`: same index, same
scheduler, same protocol — real bytes instead of modeled costs.

:func:`run_iterative` drives iterative applications (kmeans to
convergence, pagerank power iterations) by re-running the single-pass
runtime and feeding each result back through the app's ``update`` hook.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from ..cache import ChunkCache
from ..config import CLOUD_SITE, ComputeSpec, MiddlewareTuning
from ..core.api import GeneralizedReductionApp
from ..core.index import DataIndex
from ..core.reduction import from_bytes
from ..core.scheduler import HeadScheduler
from ..core.sync import SyncCodec, SyncSpec, build_sync_plan, plan_roots
from ..data.dataset import DatasetReader
from ..errors import ConfigurationError, RuntimeTimeoutError
from ..obs.events import EventLog
from ..obs.live import RunMonitor
from ..obs.metrics import MetricsRegistry
from ..obs.spans import span_summary
from ..options import ScaleOptions
from ..resilience.faults import FaultInjector
from ..resilience.retry import RetryPolicy
from ..scale import Autoscaler, SpotRevoker
from ..storage.base import StorageService
from ..core.shmem import ShmemStrategy
from .head import HeadNode, HeadSync
from .master import MasterNode, MasterSync
from .messages import SlaveAttach, SlaveDetach
from .procpool import ProcessSlavePool
from .slave import SlaveWorker
from .telemetry import ClusterTelemetry, RunTelemetry

__all__ = ["RuntimeResult", "CloudBurstingRuntime", "run_iterative", "SLAVE_MODES"]

#: The slave substrates the runtime can execute on.
SLAVE_MODES = ("thread", "process")


@dataclass
class RuntimeResult:
    """Application result plus run accounting."""

    value: Any
    telemetry: RunTelemetry
    global_reduction_seconds: float


class CloudBurstingRuntime:
    """Executable middleware over in-process clusters."""

    def __init__(
        self,
        app: GeneralizedReductionApp,
        index: DataIndex,
        stores: Mapping[str, StorageService],
        compute: ComputeSpec,
        *,
        tuning: MiddlewareTuning | None = None,
        seed: int = 2011,
        fault_hook=None,
        trace: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
        join_timeout: float = 600.0,
        retry_policy: RetryPolicy | None = None,
        cache: ChunkCache | None = None,
        prefetch: bool = False,
        sync: SyncSpec | None = None,
        monitor: RunMonitor | None = None,
        scale: ScaleOptions | None = None,
        slave_mode: str = "thread",
        process_strategy: ShmemStrategy | str = ShmemStrategy.FULL_REPLICATION,
        process_start_method: str | None = None,
    ) -> None:
        if compute.total_cores <= 0:
            raise ConfigurationError("need at least one core")
        if join_timeout <= 0:
            raise ConfigurationError("join_timeout must be positive")
        if slave_mode not in SLAVE_MODES:
            raise ConfigurationError(
                f"unknown slave_mode {slave_mode!r}; expected one of {SLAVE_MODES}"
            )
        self.app = app
        self.index = index
        self.stores = stores
        self.compute = compute
        self.tuning = tuning or MiddlewareTuning()
        self.seed = seed
        self.fault_hook = fault_hook
        #: Optional observability hooks: a shared event log every node
        #: emits into, and a metrics registry the slaves feed. Both are
        #: off (``None``) by default and cost nothing when disabled.
        self.trace = trace
        self.metrics = metrics
        self.join_timeout = join_timeout
        #: Optional :class:`~repro.resilience.RetryPolicy` applied to every
        #: chunk read (retry/backoff, hedging, circuit-breaker degradation).
        self.retry_policy = retry_policy
        #: Optional node-wide :class:`~repro.cache.ChunkCache` consulted by
        #: the shared reader before any remote fetch. Owned by the caller
        #: so it persists across iterative passes (``run()`` builds a
        #: fresh reader each pass, but the cache survives).
        self.cache = cache
        #: Overlap each slave's next fetch with its current reduction via
        #: a :class:`~repro.cache.Prefetcher`. Off by default: the slave
        #: loop is the original strictly-sequential one.
        self.prefetch = prefetch
        #: Global-reduction sync plan (:class:`~repro.core.sync.SyncSpec`).
        #: A default spec is indistinguishable from ``None``: the original
        #: star/dense/barrier path runs with zero sync machinery. The
        #: codec (and its delta baselines) is owned here so it persists
        #: across iterative passes — that persistence is what makes
        #: pass-N delta uploads tiny.
        self.sync = None if sync is None or sync.is_default else sync
        self._sync_codec = SyncCodec(self.sync) if self.sync is not None else None
        #: Optional live run-health sampler (:class:`~repro.obs.live.
        #: RunMonitor`). ``run()`` binds it to a probe over this run's
        #: masters/scheduler/cache/codec and starts/stops it around the
        #: execution. Off (``None``) by default: the disabled path is a
        #: single ``None`` check.
        self.monitor = monitor
        #: Optional :class:`~repro.options.ScaleOptions`: elastic cloud
        #: bursting. ``autoscale=True`` drives a pure
        #: :class:`~repro.scale.Autoscaler` off the monitor's sample
        #: stream (an internal monitor is built when none was given) and
        #: attaches/detaches cloud slaves mid-run; ``revocation`` arms a
        #: seeded :class:`~repro.scale.SpotRevoker` on the cloud crew.
        #: ``None`` (or all-defaults) builds none of this machinery.
        self.scale = scale if scale is not None and scale.enabled else None
        #: ``"thread"`` (the original in-process slaves) or ``"process"``
        #: (a :class:`~repro.runtime.procpool.ProcessSlavePool`: decode +
        #: local reduction in worker processes fed over shared memory —
        #: GIL-free compute). The control plane is identical either way.
        self.slave_mode = slave_mode
        #: Reduction-object sharing discipline for process slaves
        #: (:class:`~repro.core.shmem.ShmemStrategy`): full replication
        #: (default) or chunk merge. Ignored in thread mode.
        self.process_strategy = ShmemStrategy(process_strategy)
        self.process_start_method = process_start_method

    def run(self) -> RuntimeResult:
        started = time.perf_counter()
        # Injector counters are cumulative across passes (run_iterative
        # reuses the stores); report this run's delta.
        faults_before = sum(
            store.counters.total
            for store in self.stores.values()
            if isinstance(store, FaultInjector)
        )
        trace = self.trace
        if trace is not None:
            trace.start()  # idempotent: iterative passes share one origin
        scheduler = HeadScheduler(
            self.index.jobs(), self.tuning, seed=self.seed, trace=trace
        )
        sites = self.compute.active_sites
        cluster_names = [f"{site}-cluster" for site in sites]
        for name, site in zip(cluster_names, sites):
            scheduler.register_cluster(name, site)

        spec = self.sync
        codec = self._sync_codec
        plan = (
            build_sync_plan(cluster_names, spec.topology, fanout=spec.fanout)
            if spec is not None
            else None
        )
        head_sync = None
        if spec is not None and plan is not None and codec is not None:
            head_sync = HeadSync(
                codec=codec, roots=tuple(plan_roots(plan)), stream=spec.stream
            )
        head = HeadNode(
            scheduler, cluster_names, trace=trace, take_timeout=self.join_timeout,
            sync=head_sync,
        )
        reader = DatasetReader(
            self.index,
            self.stores,
            retrieval_threads=self.tuning.retrieval_threads,
            trace=trace,
            retry=self.retry_policy,
            metrics=self.metrics,
            cache=self.cache,
        )
        # Cache counters are cumulative across iterative passes (the cache
        # outlives this run); report this pass's delta, like the injector.
        cache_before = (0, 0, 0, 0)
        if self.cache is not None:
            s = self.cache.stats
            cache_before = (s.hits, s.misses, s.evictions, s.bytes_saved)
        # Codec accounting is likewise cumulative (baselines and stats
        # persist so deltas stay small across passes); report the delta.
        sync_before = (0, 0, 0)
        if codec is not None:
            st = codec.stats
            sync_before = (st.uploads, st.wire_bytes, st.dense_bytes)

        # -- elastic bursting wiring ----------------------------------------
        scale = self.scale
        cloud_cluster = f"{CLOUD_SITE}-cluster" if CLOUD_SITE in sites else None
        autoscaling = (
            scale is not None and scale.autoscale and cloud_cluster is not None
        )
        revoker: SpotRevoker | None = None
        if scale is not None and cloud_cluster is not None:
            rev_spec = scale.revocation_spec
            if rev_spec is not None:
                revoker = SpotRevoker(rev_spec, trace=trace)
        initial_cloud = self.compute.cores_at(CLOUD_SITE) if cloud_cluster else 0
        # Dynamic slaves a scale-up may attach beyond the initial crew.
        # Revocations free fleet slots but never slave ids (a dead id
        # stays dead to the master), so revocable runs get id headroom.
        dynamic_headroom = 0
        if autoscaling:
            dynamic_headroom = max(0, scale.max_slaves - initial_cloud)
            if revoker is not None:
                dynamic_headroom += scale.max_slaves

        def cloud_fault_hook(slave_id: int, job) -> None:
            if revoker is not None:
                revoker.hook(slave_id, job)
            if self.fault_hook is not None:
                self.fault_hook(slave_id, job)

        pool: ProcessSlavePool | None = None
        if self.slave_mode == "process":
            # Workers must exist before any runtime thread starts (fork
            # safety), and one shared-memory segment per slave is sized to
            # the largest chunk it can ever be handed. Autoscaling
            # pre-sizes the pool so mid-run attaches find their worker
            # process already forked.
            pool = ProcessSlavePool(
                self.app,
                sum(self.compute.cores_at(site) for site in sites)
                + dynamic_headroom,
                max_chunk_bytes=max(e.chunk_bytes for e in self.index.files),
                units_per_group=self.tuning.units_per_group,
                strategy=self.process_strategy,
                start_method=self.process_start_method,
                timeout=self.join_timeout,
            )

        masters: list[MasterNode] = []
        masters_by_name: dict[str, MasterNode] = {}
        slaves: list[SlaveWorker] = []
        slave_id = 0
        for name, site in zip(cluster_names, sites):
            cores = self.compute.cores_at(site)
            master_sync = None
            if spec is not None and plan is not None and codec is not None:
                node = plan[name]
                # Heap indexing guarantees a parent's index precedes its
                # children's, so the parent master already exists here.
                parent_inbox = (
                    head.inbox
                    if node.parent is None
                    else masters_by_name[node.parent].inbox
                )
                master_sync = MasterSync(
                    codec=codec,
                    parent_inbox=parent_inbox,
                    children=node.children,
                    stream=spec.stream,
                )
            master = MasterNode(
                name, site, head.inbox, cores, self.tuning, trace=trace,
                take_timeout=self.join_timeout, sync=master_sync,
            )
            masters.append(master)
            masters_by_name[name] = master
            for _ in range(cores):
                if revoker is not None and site == CLOUD_SITE:
                    revoker.admit(slave_id)
                slaves.append(
                    SlaveWorker(
                        slave_id,
                        name,
                        site,
                        self.app,
                        reader,
                        master.inbox,
                        units_per_group=self.tuning.units_per_group,
                        fault_hook=(
                            cloud_fault_hook
                            if revoker is not None and site == CLOUD_SITE
                            else self.fault_hook
                        ),
                        trace=trace,
                        metrics=self.metrics,
                        take_timeout=self.join_timeout,
                        prefetch=self.prefetch,
                        sync_watermark=(
                            spec.watermark if spec is not None and spec.stream else 0
                        ),
                        process_slave=(
                            pool.slaves[slave_id] if pool is not None else None
                        ),
                    )
                )
                slave_id += 1

        monitor = self.monitor
        if monitor is None and autoscaling:
            # The controller needs a sample stream; build a private one.
            monitor = RunMonitor(scale.interval)
        slaves_lock = threading.Lock()
        if monitor is not None:
            jobs_total = len(self.index.jobs())
            cache = self.cache

            def probe() -> dict:
                pool_depth = sum(len(m.pool) for m in masters)
                in_flight = sum(m.pool.in_flight for m in masters)
                with slaves_lock:
                    crew = tuple(slaves)
                workers = (
                    sum(1 for s in crew if s.is_alive())
                    if autoscaling
                    else len(crew)
                )
                gauges = {
                    "jobs_total": jobs_total,
                    "jobs_done": sum(m.pool.jobs_done for m in masters),
                    "pool_depth": pool_depth,
                    "in_flight": in_flight,
                    "steals": sum(
                        c.jobs_stolen for c in scheduler.clusters.values()
                    ),
                    "workers": workers,
                    # A taken-but-unfinished job occupies a worker; the
                    # pool's in-flight count is the cheap busy gauge.
                    "workers_busy": min(in_flight, workers),
                    "remote_fetches": reader.remote_fetches,
                }
                if cache is not None:
                    gauges["cache_hits"] = cache.stats.hits
                    gauges["cache_misses"] = cache.stats.misses
                if codec is not None:
                    gauges["sync_bytes_sent"] = codec.stats.wire_bytes
                return gauges

            monitor.bind(probe)

        controller: Autoscaler | None = None
        scale_state = {"added": 0, "removed": 0, "next_id": slave_id,
                       "applying": True}
        if autoscaling and monitor is not None:
            controller = Autoscaler(
                min_slaves=scale.min_slaves,
                max_slaves=scale.max_slaves,
                deadline=scale.deadline,
                budget=scale.budget,
                dollars_per_slave_hour=scale.dollars_per_slave_hour,
                damping=scale.damping,
            )
            cloud_master = masters_by_name[cloud_cluster]
            watermark = spec.watermark if spec is not None and spec.stream else 0

            def build_dynamic_slave(sid: int) -> SlaveWorker:
                return SlaveWorker(
                    sid,
                    cloud_cluster,
                    CLOUD_SITE,
                    self.app,
                    reader,
                    cloud_master.inbox,
                    units_per_group=self.tuning.units_per_group,
                    fault_hook=(
                        cloud_fault_hook
                        if revoker is not None
                        else self.fault_hook
                    ),
                    trace=trace,
                    metrics=self.metrics,
                    take_timeout=self.join_timeout,
                    prefetch=self.prefetch,
                    sync_watermark=watermark,
                    process_slave=(
                        pool.slaves[sid] if pool is not None else None
                    ),
                )

            def on_sample(sample) -> None:
                revoked = (
                    revoker.revoked
                    if revoker is not None
                    else cloud_master.slaves_revoked
                )
                fleet = max(
                    0,
                    initial_cloud
                    + scale_state["added"]
                    - scale_state["removed"]
                    - revoked,
                )
                decision = controller.observe(sample, fleet)
                if not scale_state["applying"]:
                    # The run is tearing down: keep accruing dollars for
                    # the closing sample, stop changing the fleet.
                    return
                if decision.action == "add":
                    workers = []
                    for _ in range(decision.count):
                        sid = scale_state["next_id"]
                        if pool is not None and sid >= len(pool.slaves):
                            break  # process slots exhausted; skip the add
                        scale_state["next_id"] = sid + 1
                        worker = build_dynamic_slave(sid)
                        if revoker is not None:
                            revoker.admit(sid)
                        workers.append(worker)
                    if workers:
                        with slaves_lock:
                            slaves.extend(workers)
                        scale_state["added"] += len(workers)
                        cloud_master.inbox.post(
                            SlaveAttach(workers=tuple(workers))
                        )
                        if trace is not None:
                            trace.emit(
                                "scale_up", cluster=cloud_cluster,
                                detail=f"+{len(workers)}: {decision.reason}",
                            )
                elif decision.action == "remove":
                    count = min(decision.count, max(0, fleet - 1))
                    if count > 0:
                        scale_state["removed"] += count
                        cloud_master.inbox.post(SlaveDetach(count=count))
                        # The master traces one scale_down per slave it
                        # actually retires (its floor may defer some).

            monitor.subscribe(on_sample)

        head.start()
        for master in masters:
            master.start()
        for slave in slaves:
            slave.start()
        if monitor is not None:
            monitor.start()

        try:
            try:
                result = head.join(timeout=self.join_timeout)
            except RuntimeTimeoutError:
                alive_masters = [m.name for m in masters if m.is_alive()]
                with slaves_lock:
                    crew = tuple(slaves)
                alive_slaves = [s.slave_id for s in crew if s.is_alive()]
                raise RuntimeTimeoutError(
                    f"run did not complete within {self.join_timeout:g}s: the "
                    f"head node is still waiting; masters still alive: "
                    f"{alive_masters or 'none'}; slaves still alive: "
                    f"{alive_slaves or 'none'} — a hung slave or a lost "
                    f"message keeps the reduction from converging"
                ) from None
            finally:
                scale_state["applying"] = False
                if monitor is not None:
                    monitor.stop()
            for master in masters:
                master.join(timeout=self.join_timeout)
            with slaves_lock:
                slaves = list(slaves)
            for slave in slaves:
                # A scale-up posted in the run's last instants may never
                # have been started by the master; there is nothing to join.
                if slave._thread is not None:
                    slave.join(timeout=self.join_timeout)
        finally:
            if pool is not None:
                pool.close()

        wall = time.perf_counter() - started
        telemetry = RunTelemetry(wall_seconds=wall)
        for master, site in zip(masters, sites):
            name = master.name
            crew = [
                s.telemetry
                for s in slaves
                if s.cluster == name and s._thread is not None
            ]
            telemetry.clusters[name] = ClusterTelemetry.aggregate(
                name, site, crew, stolen=scheduler.clusters[name].jobs_stolen
            )
            telemetry.slaves_failed += master.slaves_failed
            telemetry.slaves_revoked += master.slaves_revoked
            telemetry.slaves_added += master.slaves_added
            telemetry.jobs_reexecuted += master.jobs_reexecuted
        if controller is not None:
            telemetry.dollars_spent = controller.dollars_spent

        telemetry.bytes_copied = reader.bytes_copied
        telemetry.zero_copy_reads = reader.zero_copy_reads
        if trace is not None:
            # A one-line data-path digest on the timeline, so a trace read
            # back from disk (`repro report`) can render the section.
            trace.emit(
                "data_path",
                detail=(
                    f"{reader.zero_copy_reads} zero-copy reads, "
                    f"{reader.bytes_copied}B copied"
                ),
            )
        resilience = reader.resilience
        telemetry.retries = resilience.retries
        telemetry.hedges = resilience.hedges
        telemetry.hedge_wins = resilience.hedge_wins
        telemetry.timeouts = resilience.timeouts
        telemetry.circuit_opens = sum(
            b.opens for b in reader.breakers().values()
        )
        telemetry.faults_injected = (
            sum(
                store.counters.total
                for store in self.stores.values()
                if isinstance(store, FaultInjector)
            )
            - faults_before
        )
        if self.cache is not None:
            s = self.cache.stats
            telemetry.cache_hits = s.hits - cache_before[0]
            telemetry.cache_misses = s.misses - cache_before[1]
            telemetry.cache_evictions = s.evictions - cache_before[2]
            telemetry.bytes_saved = s.bytes_saved - cache_before[3]
        if self.prefetch:
            telemetry.prefetches = sum(s.prefetches for s in slaves)
        if codec is not None:
            st = codec.stats
            telemetry.sync_uploads = st.uploads - sync_before[0]
            telemetry.sync_bytes_sent = st.wire_bytes - sync_before[1]
            telemetry.sync_bytes_saved = (
                st.dense_bytes - sync_before[2]
            ) - telemetry.sync_bytes_sent
            telemetry.sync_partial_merges = sum(m.sync_partials for m in masters)

        if trace is not None:
            # The causal-span digest (per-phase totals + critical path).
            telemetry.spans = span_summary(trace)

        if self.metrics is not None:
            registry = self.metrics
            registry.counter("jobs_stolen").inc(telemetry.total_stolen)
            registry.counter("slaves_failed").inc(telemetry.slaves_failed)
            registry.counter("slaves_revoked").inc(telemetry.slaves_revoked)
            registry.counter("slaves_added").inc(telemetry.slaves_added)
            registry.counter("jobs_reexecuted").inc(telemetry.jobs_reexecuted)
            registry.counter("groups_assigned").inc(
                sum(c.groups_assigned for c in scheduler.clusters.values())
            )
            registry.counter("retries").inc(telemetry.retries)
            registry.counter("hedges").inc(telemetry.hedges)
            registry.counter("circuit_opens").inc(telemetry.circuit_opens)
            registry.counter("faults_injected").inc(telemetry.faults_injected)
            registry.counter("zero_copy_reads").inc(telemetry.zero_copy_reads)
            registry.counter("bytes_copied").inc(telemetry.bytes_copied)
            if codec is not None:
                registry.counter("sync_uploads").inc(telemetry.sync_uploads)
                registry.counter("sync_bytes_sent").inc(telemetry.sync_bytes_sent)
                registry.counter("sync_bytes_saved").inc(telemetry.sync_bytes_saved)
                registry.counter("sync_partial_merges").inc(
                    telemetry.sync_partial_merges
                )
            registry.gauge("workers").set(len(slaves))
            registry.gauge("clusters").set(len(masters))
            telemetry.metrics = registry.snapshot()

        final_robj = from_bytes(result.blob)
        return RuntimeResult(
            value=self.app.finalize(final_robj),
            telemetry=telemetry,
            global_reduction_seconds=head.global_reduction_seconds,
        )


def run_iterative(
    runtime: CloudBurstingRuntime,
    update: Callable[[Any], None],
    *,
    iterations: int = 10,
    tolerance: float | None = None,
    distance: Callable[[Any, Any], float] | None = None,
) -> tuple[Any, int]:
    """Run the app repeatedly, feeding results back via ``update``.

    Stops after ``iterations`` passes, or earlier when ``distance(prev,
    cur) <= tolerance`` (with the default distance being the max absolute
    difference of array results). Returns ``(final_result, passes_run)``.
    """
    if iterations <= 0:
        raise ConfigurationError("iterations must be positive")

    def default_distance(a: Any, b: Any) -> float:
        return float(np.max(np.abs(np.asarray(a) - np.asarray(b))))

    dist = distance or default_distance
    previous: Any = None
    result: Any = None
    passes = 0
    for _ in range(iterations):
        result = runtime.run().value
        passes += 1
        if (
            tolerance is not None
            and previous is not None
            and dist(previous, result) <= tolerance
        ):
            break
        previous = result
        update(result)
    return result, passes
