"""Centralized-processing baseline.

The paper's baseline configurations (env-local, env-cloud) store the whole
dataset at one site and process it with that site's cores. This module
builds that runtime in one call — it is the same middleware with a single
cluster, which is exactly how the paper frames it.
"""

from __future__ import annotations

from typing import Mapping

from ..config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from ..core.api import GeneralizedReductionApp
from ..core.index import build_index
from ..errors import ConfigurationError
from ..storage.base import StorageService
from .driver import CloudBurstingRuntime, RuntimeResult

__all__ = ["centralized_runtime", "run_centralized"]


def centralized_runtime(
    app: GeneralizedReductionApp,
    dataset: DatasetSpec,
    store: StorageService,
    *,
    site: str = LOCAL_SITE,
    cores: int = 4,
    tuning: MiddlewareTuning | None = None,
    path_prefix: str = "data/part",
) -> CloudBurstingRuntime:
    """A single-site runtime whose data is entirely at ``site``."""
    if site == LOCAL_SITE:
        placement = PlacementSpec(local_fraction=1.0)
        compute = ComputeSpec(local_cores=cores, cloud_cores=0)
    elif site == CLOUD_SITE:
        placement = PlacementSpec(local_fraction=0.0)
        compute = ComputeSpec(local_cores=0, cloud_cores=cores)
    else:
        raise ConfigurationError(f"unknown site {site!r}")
    index = build_index(dataset, placement, path_prefix=path_prefix)
    stores: Mapping[str, StorageService] = {site: store}
    return CloudBurstingRuntime(app, index, stores, compute, tuning=tuning)


def run_centralized(
    app: GeneralizedReductionApp,
    dataset: DatasetSpec,
    store: StorageService,
    *,
    site: str = LOCAL_SITE,
    cores: int = 4,
    tuning: MiddlewareTuning | None = None,
    path_prefix: str = "data/part",
) -> RuntimeResult:
    """Build and run the centralized baseline in one call."""
    return centralized_runtime(
        app,
        dataset,
        store,
        site=site,
        cores=cores,
        tuning=tuning,
        path_prefix=path_prefix,
    ).run()
