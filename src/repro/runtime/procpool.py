"""GIL-free slave substrate: one worker *process* per slave.

The threaded runtime keeps every ``local_reduction`` under one
interpreter lock, so a CPU-bound application gains nothing from extra
cores. :class:`ProcessSlavePool` moves the reduction kernel into worker
processes while leaving the whole control plane — head, masters, the
slave threads and their message protocol — exactly where it was: each
:class:`~repro.runtime.slave.SlaveWorker` thread becomes a thin proxy
that still requests jobs and fetches chunk bytes in the main process
(sharing the reader, cache, and retry machinery), then hands the bytes
to its worker process for decode + local reduction.

The hand-off is engineered around the zero-copy data path:

* chunk bytes cross the process boundary through one
  :mod:`multiprocessing.shared_memory` segment per slave — a single
  staging write on the proxy side, then a read-only ``np.frombuffer``
  view on the worker side (no pickling, no pipe copies of data);
* the reduction object crosses back through its existing
  ``to_bytes()``/``from_bytes()`` envelope, under one of the
  :class:`~repro.core.shmem.ShmemStrategy` sharing disciplines:
  **full replication** (each worker accumulates privately and ships the
  partial on flush — the FREERIDE default) or **chunk merge** (the
  worker returns a per-chunk scratch object and the proxy folds it into
  a main-process accumulator). Full locking needs a single object under
  one lock, which separate address spaces cannot share; asking for it
  raises.

The master merges the proxies' reduction objects exactly as it merges
threaded slaves' — the substrate is invisible above the slave.
"""

from __future__ import annotations

import pickle
import traceback
from multiprocessing import get_all_start_methods, get_context
from multiprocessing import shared_memory

from ..core.api import GeneralizedReductionApp
from ..core.reduction import ReductionObject, from_bytes
from ..core.shmem import ShmemStrategy
from ..errors import ConfigurationError, RuntimeProtocolError

__all__ = ["ProcessSlave", "ProcessSlavePool", "default_start_method"]


def default_start_method() -> str:
    """``fork`` where available (fast, POSIX), else ``spawn``.

    The pool is always constructed *before* the runtime starts any
    thread, so forking is safe; ``spawn`` works everywhere and is
    exercised by the tests, at ~1 s of interpreter start-up per worker.
    """
    return "fork" if "fork" in get_all_start_methods() else "spawn"


def _worker_main(
    conn,
    shm_name: str,
    app_blob: bytes,
    units_per_group: int,
    replicated: bool,
) -> None:
    """Worker-process loop: serve reduce/flush requests until told to exit.

    Runs at module level so the ``spawn`` start method can import it.
    Any exception inside a request is reported back as an ``("error",
    traceback)`` reply and ends the worker — the proxy surfaces it as a
    slave failure and the master re-executes the in-flight job elsewhere.
    """
    # Attaching registers the segment with the resource tracker again,
    # but workers share the parent's tracker (its registry is a set), so
    # the pool's own unlink-at-close remains the single cleanup point.
    shm = shared_memory.SharedMemory(name=shm_name)
    app: GeneralizedReductionApp = pickle.loads(app_blob)
    buf = memoryview(shm.buf)
    robj = app.create_reduction_object() if replicated else None

    def serve_reduce(nbytes: int) -> tuple:
        # A read-only view straight over shared memory: the decode is
        # zero-copy across the process boundary, and a kernel mutating
        # its units raises here exactly as it would in a thread.
        units = app.decode_chunk(buf[:nbytes].toreadonly())
        target = robj if replicated else app.create_reduction_object()
        for group in app.unit_groups(units, units_per_group):
            app.local_reduction(target, group)
        if replicated:
            return ("ok", None)
        return ("robj", target.to_bytes())

    try:
        while True:
            try:
                op, arg = conn.recv()
            except (EOFError, OSError):
                break
            if op == "exit":
                break
            try:
                if op == "reduce":
                    reply = serve_reduce(arg)
                elif op == "flush":
                    reply = ("robj", robj.to_bytes())
                    robj = app.create_reduction_object()
                else:
                    reply = ("error", f"unknown op {op!r}")
            except BaseException:
                reply = ("error", traceback.format_exc())
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            if reply[0] == "error":
                break
    finally:
        buf.release()
        shm.close()
        conn.close()


class ProcessSlave:
    """Parent-side handle for one worker process.

    Used by exactly one :class:`~repro.runtime.slave.SlaveWorker` proxy
    thread, so no internal locking is needed. ``reduce`` stages the
    chunk into shared memory and blocks until the worker has consumed it
    (the single buffer is reused per job; fetch/compute overlap comes
    from the existing prefetcher, which pulls job *N+1*'s bytes while
    the worker reduces job *N*). ``take`` returns the reduction partial
    accumulated since the last ``take`` — the proxy calls it at the sync
    watermark and at end of run, feeding the master the same
    ``SlaveReduction`` messages a threaded slave would.
    """

    def __init__(
        self,
        ctx,
        slave_id: int,
        app: GeneralizedReductionApp,
        app_blob: bytes,
        *,
        capacity: int,
        units_per_group: int,
        strategy: ShmemStrategy,
        timeout: float,
    ) -> None:
        self.slave_id = slave_id
        self.timeout = timeout
        self.strategy = strategy
        self._app = app
        self._capacity = capacity
        self._replicated = strategy is ShmemStrategy.FULL_REPLICATION
        self._acc: ReductionObject | None = None  # chunk-merge accumulator
        #: Bytes staged into shared memory — the one intentional copy of
        #: the process hand-off (the read path itself stays zero-copy).
        self.shm_bytes = 0
        self.chunks_reduced = 0
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(capacity, 1)
        )
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._shm.name,
                app_blob,
                units_per_group,
                self._replicated,
            ),
            name=f"slave-proc:{slave_id}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def _recv(self) -> tuple:
        if not self._conn.poll(self.timeout):
            raise RuntimeProtocolError(
                f"worker process for slave {self.slave_id} did not reply "
                f"within {self.timeout:g}s"
            )
        try:
            kind, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise RuntimeProtocolError(
                f"worker process for slave {self.slave_id} died mid-request "
                f"(exitcode={self._process.exitcode})"
            ) from exc
        if kind == "error":
            raise RuntimeProtocolError(
                f"worker process for slave {self.slave_id} failed:\n{payload}"
            )
        return kind, payload

    def reduce(self, raw: "bytes | memoryview") -> None:
        """Run decode + local reduction for one chunk in the worker."""
        nbytes = raw.nbytes if isinstance(raw, memoryview) else len(raw)
        if nbytes > self._capacity:
            raise RuntimeProtocolError(
                f"chunk of {nbytes} B exceeds slave {self.slave_id}'s "
                f"shared-memory capacity of {self._capacity} B"
            )
        self._shm.buf[:nbytes] = raw
        self.shm_bytes += nbytes
        self._conn.send(("reduce", nbytes))
        kind, payload = self._recv()
        self.chunks_reduced += 1
        if kind == "robj":  # chunk-merge: fold the scratch object here
            scratch = from_bytes(payload)
            if self._acc is None:
                self._acc = scratch
            else:
                self._acc.merge(scratch)

    def take(self) -> ReductionObject:
        """The partial accumulated since the last ``take`` (resets it)."""
        if self._replicated:
            self._conn.send(("flush", None))
            _, payload = self._recv()
            return from_bytes(payload)
        acc = self._acc
        self._acc = None
        return acc if acc is not None else self._app.create_reduction_object()

    def close(self) -> None:
        """Stop the worker and release the shared-memory segment."""
        try:
            self._conn.send(("exit", None))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._conn.close()
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:
            pass


class ProcessSlavePool:
    """All the worker processes for one run, created up front.

    Construct *before* starting any runtime thread (forking a threaded
    process is where the dragons live); the driver does exactly that.
    ``slaves[i]`` plugs into ``SlaveWorker(process_slave=...)``.
    """

    def __init__(
        self,
        app: GeneralizedReductionApp,
        workers: int,
        *,
        max_chunk_bytes: int,
        units_per_group: int = 4096,
        strategy: ShmemStrategy | str = ShmemStrategy.FULL_REPLICATION,
        start_method: str | None = None,
        timeout: float = 600.0,
    ) -> None:
        if workers <= 0:
            raise ConfigurationError("process pool needs at least one worker")
        if max_chunk_bytes <= 0:
            raise ConfigurationError("max_chunk_bytes must be positive")
        strategy = ShmemStrategy(strategy)
        if strategy is ShmemStrategy.FULL_LOCKING:
            raise ConfigurationError(
                "full-locking shares one reduction object under one lock; "
                "worker processes have separate address spaces — use "
                "full-replication or chunk-merge"
            )
        self.strategy = strategy
        ctx = get_context(start_method or default_start_method())
        app_blob = pickle.dumps(app)
        self.slaves: list[ProcessSlave] = []
        try:
            for slave_id in range(workers):
                self.slaves.append(
                    ProcessSlave(
                        ctx,
                        slave_id,
                        app,
                        app_blob,
                        capacity=max_chunk_bytes,
                        units_per_group=units_per_group,
                        strategy=strategy,
                        timeout=timeout,
                    )
                )
        except BaseException:
            self.close()
            raise

    @property
    def shm_bytes(self) -> int:
        """Total bytes staged into shared memory across all slaves."""
        return sum(s.shm_bytes for s in self.slaves)

    @property
    def chunks_reduced(self) -> int:
        return sum(s.chunks_reduced for s in self.slaves)

    def close(self) -> None:
        for slave in self.slaves:
            slave.close()

    def __enter__(self) -> "ProcessSlavePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
