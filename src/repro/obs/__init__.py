"""Unified observability layer shared by the simulator and the runtime.

One event vocabulary, one analysis toolkit, one set of exporters — so a
simulated run and a real :class:`~repro.runtime.driver.CloudBurstingRuntime`
run render identically (Gantt charts, utilization tables, Perfetto
timelines). See ``docs/OBSERVABILITY.md`` for the event schema and the
export formats.
"""

from .analysis import Interval, render_gantt, utilization, worker_intervals
from .events import KINDS, RUNTIME_KINDS, SIM_KINDS, EventLog, TraceEvent
from .export import (
    event_to_dict,
    read_jsonl,
    render_report,
    to_perfetto,
    write_jsonl,
    write_perfetto,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "KINDS",
    "SIM_KINDS",
    "RUNTIME_KINDS",
    "TraceEvent",
    "EventLog",
    "Interval",
    "worker_intervals",
    "utilization",
    "render_gantt",
    "event_to_dict",
    "write_jsonl",
    "read_jsonl",
    "to_perfetto",
    "write_perfetto",
    "render_report",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
