"""Unified observability layer shared by the simulator and the runtime.

One event vocabulary, one analysis toolkit, one set of exporters — so a
simulated run and a real :class:`~repro.runtime.driver.CloudBurstingRuntime`
run render identically (Gantt charts, utilization tables, Perfetto
timelines, causal job spans, critical paths, live run-health samples).
See ``docs/OBSERVABILITY.md`` for the event schema and the export
formats.
"""

from .analysis import Interval, render_gantt, utilization, worker_intervals
from .anomaly import (
    Straggler,
    StragglerReport,
    annotate,
    detect_stragglers,
    render_stragglers,
)
from .events import (
    ANALYSIS_KINDS,
    KINDS,
    RUNTIME_KINDS,
    SIM_KINDS,
    EventLog,
    TraceEvent,
)
from .export import (
    event_to_dict,
    read_jsonl,
    render_report,
    to_perfetto,
    write_jsonl,
    write_perfetto,
)
from .live import RunMonitor, RunSample, samples_from_log
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import (
    PHASES,
    CriticalSegment,
    JobSpan,
    Phase,
    build_spans,
    critical_path,
    phase_totals,
    render_critical_path,
    span_summary,
)

__all__ = [
    "KINDS",
    "SIM_KINDS",
    "RUNTIME_KINDS",
    "ANALYSIS_KINDS",
    "TraceEvent",
    "EventLog",
    "Interval",
    "worker_intervals",
    "utilization",
    "render_gantt",
    "event_to_dict",
    "write_jsonl",
    "read_jsonl",
    "to_perfetto",
    "write_perfetto",
    "render_report",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASES",
    "Phase",
    "JobSpan",
    "CriticalSegment",
    "build_spans",
    "phase_totals",
    "critical_path",
    "render_critical_path",
    "span_summary",
    "RunSample",
    "RunMonitor",
    "samples_from_log",
    "Straggler",
    "StragglerReport",
    "detect_stragglers",
    "annotate",
    "render_stragglers",
]
