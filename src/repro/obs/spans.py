"""Causal per-job spans and the critical path through the makespan.

The event stream records *occurrences*; this module reconstructs the
*causal story* the paper's time decomposition implies (Figure 3, Tables
I-II): each job's life as a span of ordered phases

``queued -> fetch -> stall -> compute``

chained per worker (a job is *queued* from the moment its worker finished
the previous job), plus the run's closing phases

``combine -> upload -> merge``

(master folds its slaves' objects, ships the result, head merges). Both
substrates emit the same vocabulary, so a simulated and a real run of the
same app produce spans with identical phase names.

* :func:`build_spans` — one :class:`JobSpan` per (worker, job cycle),
  with steal and re-execution links;
* :func:`phase_totals` — per-phase time across all spans;
* :func:`critical_path` — the single causal chain of
  :class:`CriticalSegment` that tiles ``[0, makespan]``: walk back from
  the final merge through the upload, the gating cluster's combine, and
  the gating worker's job cycles down to time zero;
* :func:`span_summary` — the plain-data form carried on
  :class:`~repro.runtime.telemetry.RunTelemetry`.

Jobs processed through the prefetch pipeline have no ``fetch_start`` /
``fetch_end`` events (retrieval is hidden behind compute by design); such
cycles reconstruct with a zero-width fetch phase anchored at
``compute_start``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TraceError
from .analysis import _ordered
from .events import EventLog

__all__ = [
    "PHASES",
    "Phase",
    "JobSpan",
    "CriticalSegment",
    "build_spans",
    "phase_totals",
    "critical_path",
    "render_critical_path",
    "span_summary",
]

#: The shared span-phase vocabulary, in causal order.
PHASES = ("queued", "fetch", "stall", "compute", "combine", "upload", "merge")

_CYCLE_KINDS = ("fetch_start", "fetch_end", "compute_start", "compute_end")


@dataclass(frozen=True)
class Phase:
    """One contiguous slice of a span's lifetime."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class JobSpan:
    """One job's causal span on one worker.

    ``queued_from`` is when the worker became free for this job (the
    previous cycle's ``compute_end``, or 0.0 for the first cycle) — the
    span's phases tile ``[queued_from, compute_end]`` exactly, so they
    are non-overlapping, cover the lifetime, and sum to the end-to-end
    latency.
    """

    job_id: int
    file_id: int
    worker: int
    cluster: str
    queued_from: float
    fetch_start: float | None
    fetch_end: float | None
    compute_start: float
    compute_end: float
    stolen: bool = False
    attempt: int = 1
    reexecution: bool = False

    @property
    def phases(self) -> tuple[Phase, ...]:
        """The span tiled into its ordered phases (zero-width kept)."""
        if self.fetch_start is None:
            anchor = self.compute_start
            mid: tuple[Phase, ...] = (
                Phase("fetch", anchor, anchor),
                Phase("stall", anchor, anchor),
            )
        else:
            anchor = self.fetch_start
            mid = (
                Phase("fetch", self.fetch_start, self.fetch_end),
                Phase("stall", self.fetch_end, self.compute_start),
            )
        return (
            Phase("queued", self.queued_from, anchor),
            *mid,
            Phase("compute", self.compute_start, self.compute_end),
        )

    @property
    def latency(self) -> float:
        """End-to-end latency: queued through compute completion."""
        return self.compute_end - self.queued_from

    @property
    def execution(self) -> float:
        """Fetch through compute (the straggler detector's signal)."""
        start = self.fetch_start if self.fetch_start is not None else self.compute_start
        return self.compute_end - start


@dataclass(frozen=True)
class CriticalSegment:
    """One link of the critical path's causal chain."""

    phase: str
    start: float
    end: float
    cluster: str = ""
    worker: int = -1
    job_id: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


def _worker_cycles(log: EventLog, worker: int) -> list[JobSpan]:
    """Pair one worker's fetch/compute events into chained job cycles."""
    events = [e for e in log.for_worker(worker) if e.kind in _CYCLE_KINDS]
    spans: list[JobSpan] = []
    queued_from = 0.0
    fetch_start = fetch_end = None
    compute_start = None
    file_id = -1
    cluster = ""
    for event in _ordered(events, worker):
        if event.kind == "fetch_start":
            fetch_start = event.time
            file_id = event.file_id
            cluster = event.cluster
        elif event.kind == "fetch_end":
            fetch_end = event.time
        elif event.kind == "compute_start":
            compute_start = event.time
            if fetch_start is None:  # prefetch pipeline: fetch is hidden
                file_id = event.file_id
                cluster = event.cluster
        elif event.kind == "compute_end":
            if compute_start is None:
                raise TraceError(
                    f"worker {worker}: compute_end at {event.time} "
                    "without a compute_start"
                )
            spans.append(
                JobSpan(
                    job_id=event.job_id,
                    file_id=file_id,
                    worker=worker,
                    cluster=cluster or event.cluster,
                    queued_from=queued_from,
                    fetch_start=fetch_start,
                    fetch_end=fetch_end,
                    compute_start=compute_start,
                    compute_end=event.time,
                )
            )
            queued_from = event.time
            fetch_start = fetch_end = compute_start = None
            file_id = -1
            cluster = ""
    return spans


def build_spans(log: EventLog) -> list[JobSpan]:
    """Reconstruct every job's causal span from the event stream.

    Steal links come from the scheduler's ``steal`` events (matched on
    (cluster, file_id) — the whole stolen group is remote work);
    re-execution links from ``job_reexecuted`` (every later attempt of a
    re-executed job id is flagged, and ``attempt`` counts duplicates in
    completion order).
    """
    spans: list[JobSpan] = []
    for worker in log.workers():
        spans.extend(_worker_cycles(log, worker))

    stolen = {
        (e.cluster, e.file_id)
        for e in log.of_kind("steal")
        if e.file_id >= 0
    }
    reexecuted = {e.job_id for e in log.of_kind("job_reexecuted") if e.job_id >= 0}

    by_job: dict[int, list[int]] = {}
    for i, span in enumerate(spans):
        by_job.setdefault(span.job_id, []).append(i)

    out = list(spans)
    for job_id, indexes in by_job.items():
        indexes.sort(key=lambda i: spans[i].compute_end)
        for attempt, i in enumerate(indexes, start=1):
            span = spans[i]
            out[i] = JobSpan(
                job_id=span.job_id,
                file_id=span.file_id,
                worker=span.worker,
                cluster=span.cluster,
                queued_from=span.queued_from,
                fetch_start=span.fetch_start,
                fetch_end=span.fetch_end,
                compute_start=span.compute_start,
                compute_end=span.compute_end,
                stolen=(span.cluster, span.file_id) in stolen,
                attempt=attempt,
                # A later attempt is a re-execution; so is a sole cycle of
                # a job the master re-issued (the first try died before
                # its compute_end ever hit the log).
                reexecution=attempt > 1
                or (job_id in reexecuted and len(indexes) == 1),
            )
    out.sort(key=lambda s: (s.compute_end, s.worker))
    return out


def phase_totals(spans: list[JobSpan]) -> dict[str, float]:
    """Total seconds per phase across all spans (worker-phases only)."""
    totals = {name: 0.0 for name in ("queued", "fetch", "stall", "compute")}
    for span in spans:
        for phase in span.phases:
            totals[phase.name] += phase.duration
    return totals


def _last_before(events, cursor: float, **match):
    """The latest event at or before ``cursor`` matching the fields."""
    best = None
    for e in events:
        if e.time > cursor + 1e-12:
            continue
        if any(getattr(e, k) != v for k, v in match.items()):
            continue
        if best is None or e.time > best.time:
            best = e
    return best


def critical_path(
    log: EventLog, makespan: float | None = None
) -> list[CriticalSegment]:
    """The causal chain that gates the makespan, tiling ``[0, makespan]``.

    Walk backwards from the run's end: the head's final merge waits on
    the last ``robj_sent`` (merge), which waits on its cluster's
    ``combine_done`` (upload), which waits on that cluster's last
    ``compute_end`` (combine), which chains through the gating worker's
    job cycles — compute, stall, fetch, queued — down to time zero.
    Consecutive segments share boundaries, so the phase durations sum to
    the makespan exactly.
    """
    if not len(log):
        raise TraceError("cannot compute a critical path on an empty trace")
    if makespan is None:
        makespan = log.makespan()
    if makespan <= 0:
        raise TraceError("makespan must be positive")

    events = log.snapshot()
    spans = build_spans(log)
    if not spans:
        raise TraceError("trace has no completed job cycles")

    segments: list[CriticalSegment] = []
    cursor = makespan
    gate_cluster = ""
    gate_worker = -1

    robj = _last_before(
        [e for e in events if e.kind == "robj_sent"], cursor
    )
    if robj is not None and robj.time < cursor:
        segments.append(
            CriticalSegment("merge", robj.time, cursor, cluster=robj.cluster)
        )
        cursor = robj.time
    if robj is not None:
        gate_cluster = robj.cluster
        combine = _last_before(
            [e for e in events if e.kind == "combine_done"],
            cursor,
            cluster=gate_cluster,
        )
        if combine is not None and combine.time < cursor:
            segments.append(
                CriticalSegment(
                    "upload", combine.time, cursor, cluster=gate_cluster
                )
            )
            cursor = combine.time

    # The gating worker: the last compute_end in the gating cluster (or
    # anywhere, when the trace carries no sync tail).
    candidates = [
        s for s in spans
        if s.compute_end <= cursor + 1e-12
        and (not gate_cluster or s.cluster == gate_cluster)
    ] or [s for s in spans if s.compute_end <= cursor + 1e-12] or spans
    last = max(candidates, key=lambda s: s.compute_end)
    gate_worker = last.worker
    if last.compute_end < cursor:
        segments.append(
            CriticalSegment(
                "combine",
                last.compute_end,
                cursor,
                cluster=last.cluster,
                worker=gate_worker,
            )
        )
        cursor = last.compute_end

    # Walk the gating worker's cycles back to time zero.
    cycles = sorted(
        (s for s in spans if s.worker == gate_worker),
        key=lambda s: s.compute_end,
        reverse=True,
    )
    for span in cycles:
        if span.compute_end > cursor + 1e-12:
            continue
        for phase in reversed(span.phases):
            end = min(phase.end, cursor)
            start = min(phase.start, end)
            segments.append(
                CriticalSegment(
                    phase.name,
                    start,
                    end,
                    cluster=span.cluster,
                    worker=span.worker,
                    job_id=span.job_id,
                )
            )
            cursor = start
        if cursor <= 0:
            break
    if cursor > 0:
        # The worker's first cycle started after 0 only if queued_from
        # was clamped; close the chain explicitly.
        segments.append(
            CriticalSegment("queued", 0.0, cursor, worker=gate_worker)
        )

    segments.reverse()
    return segments


def render_critical_path(segments: list[CriticalSegment]) -> str:
    """Text form of the critical path: the chain, then per-phase totals."""
    if not segments:
        raise TraceError("empty critical path")
    total = segments[-1].end - segments[0].start
    lines = [f"critical path: {total:.3f}s in {len(segments)} segments"]
    for seg in segments:
        where = seg.cluster or "head"
        owner = f" w{seg.worker:03d}" if seg.worker >= 0 else ""
        job = f" job {seg.job_id}" if seg.job_id >= 0 else ""
        lines.append(
            f"  {seg.start:>9.3f} .. {seg.end:>9.3f}  "
            f"{seg.phase:<8} {seg.duration:>8.3f}s  {where}{owner}{job}"
        )
    totals: dict[str, float] = {}
    for seg in segments:
        totals[seg.phase] = totals.get(seg.phase, 0.0) + seg.duration
    lines.append("per-phase totals on the path:")
    for name in PHASES:
        if name in totals:
            share = totals[name] / total * 100 if total else 0.0
            lines.append(f"  {name:<8} {totals[name]:>8.3f}s  {share:5.1f}%")
    return "\n".join(lines)


def span_summary(
    log: EventLog, makespan: float | None = None
) -> dict:
    """Plain-data span digest for :class:`RunTelemetry` / JSON export."""
    if makespan is None:
        makespan = log.makespan()
    spans = build_spans(log)
    if not spans:
        return {
            "jobs": 0,
            "makespan": makespan,
            "phase_seconds": {},
            "critical_path": [],
            "critical_path_seconds": {},
            "stolen_jobs": 0,
            "reexecutions": 0,
        }
    path = critical_path(log, makespan)
    path_totals: dict[str, float] = {}
    for seg in path:
        path_totals[seg.phase] = path_totals.get(seg.phase, 0.0) + seg.duration
    return {
        "jobs": len(spans),
        "makespan": makespan,
        "phase_seconds": phase_totals(spans),
        "critical_path": [
            {
                "phase": seg.phase,
                "start": seg.start,
                "end": seg.end,
                "seconds": seg.duration,
                "cluster": seg.cluster,
                "worker": seg.worker,
                "job_id": seg.job_id,
            }
            for seg in path
        ],
        "critical_path_seconds": path_totals,
        "stolen_jobs": sum(1 for s in spans if s.stolen),
        "reexecutions": sum(1 for s in spans if s.attempt > 1),
    }
