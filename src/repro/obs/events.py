"""Structured event stream shared by both execution substrates.

The simulator and the executable runtime tell the same time-decomposition
story (processing vs. retrieval vs. sync vs. idle — Figure 3 / Tables
I-II) through one event vocabulary. A :class:`TraceEvent` is a timestamped
occurrence; an :class:`EventLog` collects them:

* the **simulator** records events at simulated timestamps
  (``log.record(env.now, kind, ...)``);
* the **runtime** emits events at wall-clock timestamps relative to the
  run's start (``log.emit(kind, ...)``), from many threads at once — the
  log is thread-safe.

Both produce the same stream shape, so the analyses in
:mod:`repro.obs.analysis` and the exporters in :mod:`repro.obs.export`
apply to either. Tracing is off by default (``trace=None`` everywhere)
and the disabled path is a single attribute-load-and-``None``-check —
see ``benchmarks/bench_obs.py`` for the overhead guarantee.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import TraceError

__all__ = [
    "KINDS",
    "SIM_KINDS",
    "RUNTIME_KINDS",
    "ANALYSIS_KINDS",
    "TraceEvent",
    "EventLog",
]

#: Event kinds emitted by the simulated nodes (the original vocabulary).
SIM_KINDS = (
    "fetch_start",
    "fetch_end",
    "compute_start",
    "compute_end",
    "job_done",
    "group_assigned",
    "group_acked",
    "combine_done",
    "robj_sent",
    "merge_done",
)

#: Additional kinds only the executable runtime produces.
RUNTIME_KINDS = (
    "steal",  # the head scheduler assigned remote-site jobs
    "slave_failed",  # a slave worker died; its work will be re-executed
    "job_reexecuted",  # one job recovered from a dead slave's backlog
    "remote_fetch",  # the dataset reader crossed sites for a chunk
    "retry",  # a sub-range read failed transiently and is being retried
    "hedge",  # a straggling sub-range read was raced with a duplicate
    "circuit_open",  # an endpoint degraded to single-stream reads
    "circuit_close",  # a degraded endpoint recovered to parallel reads
    "fault_injected",  # the fault injector perturbed a storage request
    "cache_hit",  # a remote chunk was served from the node's chunk cache
    "cache_miss",  # the chunk cache was consulted and had no entry
    "cache_evict",  # the byte budget forced entries out of the cache
    "prefetch",  # a slave's prefetcher acquired the next job early
    "sync_partial",  # a slave flushed a partial reduction object mid-run
    "sync_upload",  # a master shipped its (tree/ring) contribution upward
    "sync_merge",  # an aggregation point folded in an arriving upload
    "data_path",  # end-of-run zero-copy digest (reads served as views)
    "scale_up",  # the autoscaler added cloud slaves mid-run
    "scale_down",  # the autoscaler released cloud slaves mid-run
    "provision",  # a scale-up finished its provisioning delay
    "revocation",  # a spot instance vanished; recovery will re-execute
)

#: Kinds produced post-hoc by the analysis layer (never by a node).
ANALYSIS_KINDS = (
    "straggler_detected",  # the anomaly detector flagged an outlier worker
)

#: The full shared vocabulary.
KINDS = SIM_KINDS + RUNTIME_KINDS + ANALYSIS_KINDS

_KIND_SET = frozenset(KINDS)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence."""

    time: float
    kind: str
    cluster: str = ""
    worker: int = -1
    job_id: int = -1
    file_id: int = -1
    detail: str = ""


class EventLog:
    """Thread-safe collector of :class:`TraceEvent`.

    ``record`` takes an explicit timestamp (the simulator's path);
    ``emit`` stamps wall-clock time relative to the log's origin (the
    runtime's path). The origin is set by the first :meth:`start`/
    :meth:`emit` call and kept across runs, so iterative workloads that
    reuse one log produce a single continuous timeline.

    ``max_events`` bounds memory for long/iterative runs: once the cap
    is hit the log becomes a ring — the oldest events fall off the front
    and :attr:`events_dropped` counts the loss. The default (``None``)
    keeps every event, unchanged from the original behaviour.
    """

    def __init__(
        self,
        events: Iterable[TraceEvent] = (),
        *,
        max_events: int | None = None,
    ) -> None:
        if max_events is not None and max_events <= 0:
            raise TraceError(f"max_events must be positive, got {max_events}")
        self.max_events = max_events
        seed = list(events)
        self.events_dropped = max(0, len(seed) - max_events) if max_events else 0
        if max_events is None:
            self.events: list[TraceEvent] = seed
        else:
            self.events = deque(seed, maxlen=max_events)  # type: ignore[assignment]
        self._lock = threading.Lock()
        self._origin: float | None = None

    # -- recording ---------------------------------------------------------

    def start(self) -> None:
        """Pin the wall-clock origin for :meth:`emit` (idempotent)."""
        if self._origin is None:
            self._origin = time.perf_counter()

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append an event at an explicit timestamp."""
        if kind not in _KIND_SET:
            raise TraceError(f"unknown trace event kind {kind!r}")
        event = TraceEvent(time=time, kind=kind, **fields)
        with self._lock:
            if (
                self.max_events is not None
                and len(self.events) == self.max_events
            ):
                self.events_dropped += 1
            self.events.append(event)

    def emit(self, kind: str, **fields: Any) -> None:
        """Append an event stamped ``now - origin`` (wall clock)."""
        if self._origin is None:
            self.start()
        self.record(time.perf_counter() - self._origin, kind, **fields)

    # -- queries ------------------------------------------------------------

    def snapshot(self) -> list[TraceEvent]:
        """A consistent copy of the stream (safe while threads emit)."""
        with self._lock:
            return list(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_worker(self, worker: int) -> list[TraceEvent]:
        return [e for e in self.events if e.worker == worker]

    def workers(self) -> list[int]:
        return sorted({e.worker for e in self.events if e.worker >= 0})

    def makespan(self) -> float:
        """The last event's timestamp (0.0 for an empty log)."""
        return max((e.time for e in self.events), default=0.0)

    def __len__(self) -> int:
        return len(self.events)
