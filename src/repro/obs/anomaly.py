"""Robust straggler / anomaly detection over per-job latencies.

The paper's work-stealing story exists because of stragglers: a slow
worker (contended storage, a lagging WAN path, an injected latency fault)
stretches the makespan unless its work is rebalanced. This module flags
them after (or during) a run with the classic robust outlier rule:

    threshold = median + k * max(1.4826 * MAD, rel_floor * median)

over every job's *execution* latency (``fetch_start -> compute_end``; a
prefetch-pipelined job contributes its compute time). MAD is the median
absolute deviation; the 1.4826 factor makes it a consistent sigma
estimate under normality, and the relative floor keeps a zero-variance
fleet (the simulator with variability off) from flagging everything on
nanometer deviations.

:func:`detect_stragglers` returns a :class:`StragglerReport`;
:func:`annotate` additionally records a ``straggler_detected`` event per
flagged job back into the log, so exported traces carry the verdicts.
Both substrates feed the same detector — a latency fault injected
through the PR-2 fault layer is flagged identically in the simulator and
the threaded runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import EventLog
from .spans import JobSpan, build_spans

__all__ = [
    "Straggler",
    "StragglerReport",
    "detect_stragglers",
    "annotate",
    "render_stragglers",
]


def _median(values: list[float]) -> float:
    data = sorted(values)
    n = len(data)
    mid = n // 2
    if n % 2:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


@dataclass(frozen=True)
class Straggler:
    """One worker flagged as an outlier, with its offending jobs."""

    worker: int
    cluster: str
    jobs: tuple[int, ...]
    worst_latency: float
    median_latency: float

    @property
    def slowdown(self) -> float:
        """Worst flagged latency over the fleet median (>= 1)."""
        if self.median_latency <= 0:
            return float("inf")
        return self.worst_latency / self.median_latency


@dataclass(frozen=True)
class StragglerReport:
    """The detector's verdict over one run."""

    median: float
    mad: float
    threshold: float
    k: float
    jobs_seen: int
    flagged: tuple[JobSpan, ...] = ()
    stragglers: tuple[Straggler, ...] = field(default=())

    def to_dict(self) -> dict:
        return {
            "median": self.median,
            "mad": self.mad,
            "threshold": self.threshold,
            "k": self.k,
            "jobs_seen": self.jobs_seen,
            "stragglers": [
                {
                    "worker": s.worker,
                    "cluster": s.cluster,
                    "jobs": list(s.jobs),
                    "worst_latency": s.worst_latency,
                    "slowdown": s.slowdown,
                }
                for s in self.stragglers
            ],
        }


def detect_stragglers(
    log: EventLog, *, k: float = 3.0, rel_floor: float = 0.05
) -> StragglerReport:
    """Flag outlier job executions with the median + k*MAD rule.

    ``k`` is the usual robust z-score cut (3 ~ "clearly anomalous");
    ``rel_floor`` floors the spread estimate at a fraction of the median
    so uniform fleets don't flag noise. Needs at least 4 completed jobs
    to say anything.
    """
    spans = build_spans(log)
    latencies = [s.execution for s in spans]
    if len(latencies) < 4:
        return StragglerReport(
            median=_median(latencies) if latencies else 0.0,
            mad=0.0,
            threshold=float("inf"),
            k=k,
            jobs_seen=len(latencies),
        )
    med = _median(latencies)
    mad = _median([abs(x - med) for x in latencies])
    spread = max(1.4826 * mad, rel_floor * med)
    threshold = med + k * spread

    flagged = tuple(s for s in spans if s.execution > threshold)
    per_worker: dict[int, list[JobSpan]] = {}
    for span in flagged:
        per_worker.setdefault(span.worker, []).append(span)
    stragglers = tuple(
        Straggler(
            worker=worker,
            cluster=worst.cluster,
            jobs=tuple(s.job_id for s in spans_w),
            worst_latency=worst.execution,
            median_latency=med,
        )
        for worker, spans_w in sorted(per_worker.items())
        for worst in [max(spans_w, key=lambda s: s.execution)]
    )
    return StragglerReport(
        median=med,
        mad=mad,
        threshold=threshold,
        k=k,
        jobs_seen=len(latencies),
        flagged=flagged,
        stragglers=stragglers,
    )


def annotate(
    log: EventLog, *, k: float = 3.0, rel_floor: float = 0.05
) -> StragglerReport:
    """Detect stragglers and record the verdicts into the log.

    One ``straggler_detected`` event per flagged job, stamped at the
    job's ``compute_end`` (when the anomaly became observable), so JSONL
    and Perfetto exports carry the detector's output.
    """
    report = detect_stragglers(log, k=k, rel_floor=rel_floor)
    for span in report.flagged:
        log.record(
            span.compute_end,
            "straggler_detected",
            cluster=span.cluster,
            worker=span.worker,
            job_id=span.job_id,
            detail=(
                f"execution {span.execution:.3f}s > "
                f"threshold {report.threshold:.3f}s "
                f"(median {report.median:.3f}s, k={report.k:g})"
            ),
        )
    return report


def render_stragglers(report: StragglerReport) -> str:
    """Report lines: one per straggler, or the all-clear."""
    head = (
        f"straggler detector: median {report.median:.3f}s, "
        f"MAD {report.mad:.3f}s, threshold {report.threshold:.3f}s "
        f"(k={report.k:g}, {report.jobs_seen} jobs)"
    )
    if not report.stragglers:
        return head + "\n  no stragglers flagged"
    lines = [head]
    for s in report.stragglers:
        lines.append(
            f"  w{s.worker:03d} ({s.cluster}): {len(s.jobs)} job(s) flagged, "
            f"worst {s.worst_latency:.3f}s = {s.slowdown:.1f}x median"
        )
    return "\n".join(lines)
