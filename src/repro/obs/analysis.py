"""Timeline analyses over an event stream.

These reconstruct the paper's per-worker decomposition from any
:class:`~repro.obs.events.EventLog` — simulated or real:

* :func:`worker_intervals` — per-worker busy intervals by activity;
* :func:`utilization` — fraction of the makespan each worker spent
  retrieving vs computing vs idle (the per-worker version of Figure 3's
  decomposition);
* :func:`render_gantt` — a text Gantt chart of the run, one row per
  worker ('r' = retrieval, 'P' = processing, '.' = idle).

Events are sorted by timestamp before pairing: the threaded runtime
appends to the shared log in wall-clock order per worker but a stream
read back from disk (or merged from several logs) need not be ordered.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TraceError
from .events import EventLog

__all__ = ["Interval", "worker_intervals", "utilization", "render_gantt"]


@dataclass(frozen=True)
class Interval:
    """A worker activity interval."""

    start: float
    end: float
    activity: str  # 'retrieval' | 'processing'

    @property
    def duration(self) -> float:
        return self.end - self.start


_PAIRS = {
    "fetch_start": ("fetch_end", "retrieval"),
    "compute_start": ("compute_end", "processing"),
}
_END_FOR = {"retrieval": "fetch_end", "processing": "compute_end"}


def _ordered(events, worker):
    """Sort a worker's events by time, resolving equal-timestamp ties.

    Within one instant a realizable schedule puts the end that closes the
    currently open interval first, then any zero-width start/end pairs,
    then the start left open past the instant. Events a tie group cannot
    place (an end with nothing open, a start while one is open) are kept
    in recorded order so the pairing scan reports them.
    """
    events = sorted(events, key=lambda e: e.time)
    out = []
    open_activity = None
    i = 0
    while i < len(events):
        j = i
        while j < len(events) and events[j].time == events[i].time:
            j += 1
        group = events[i:j]
        while group:
            if open_activity is not None:
                want = _END_FOR[open_activity]
                k = next((n for n, e in enumerate(group) if e.kind == want), None)
                if k is None:
                    break
                out.append(group.pop(k))
                open_activity = None
            else:
                k = next((n for n, e in enumerate(group) if e.kind in _PAIRS), None)
                if k is None:
                    break
                event = group.pop(k)
                out.append(event)
                open_activity = _PAIRS[event.kind][1]
        out.extend(group)
        i = j
    return out


def worker_intervals(trace: EventLog, worker: int) -> list[Interval]:
    """Reconstruct a worker's busy intervals from its start/end events.

    Events are sorted by timestamp first (see :func:`_ordered`): the
    threaded runtime appends to the shared log in per-worker wall-clock
    order, but a stream read back from disk or merged from several logs
    need not arrive ordered. Raises :class:`TraceError` on malformed
    traces (an end without a start, or overlapping activities) — these
    checks double as an internal consistency check on both substrates'
    slave loops.
    """
    intervals: list[Interval] = []
    open_start: tuple[float, str] | None = None
    for event in _ordered(trace.for_worker(worker), worker):
        if event.kind in _PAIRS:
            if open_start is not None:
                raise TraceError(
                    f"worker {worker}: {event.kind} at {event.time} while "
                    f"{open_start[1]} still open"
                )
            open_start = (event.time, _PAIRS[event.kind][1])
        elif event.kind in ("fetch_end", "compute_end"):
            if open_start is None:
                raise TraceError(
                    f"worker {worker}: {event.kind} without a start"
                )
            start, activity = open_start
            expected_end = "fetch_end" if activity == "retrieval" else "compute_end"
            if event.kind != expected_end:
                raise TraceError(
                    f"worker {worker}: {event.kind} closes a {activity} interval"
                )
            intervals.append(Interval(start=start, end=event.time, activity=activity))
            open_start = None
    if open_start is not None:
        raise TraceError(f"worker {worker}: trace ends mid-{open_start[1]}")
    return intervals


def utilization(trace: EventLog, makespan: float) -> dict[int, dict[str, float]]:
    """Per-worker time fractions: retrieval / processing / idle."""
    if makespan <= 0:
        raise TraceError("makespan must be positive")
    out: dict[int, dict[str, float]] = {}
    for worker in trace.workers():
        totals = {"retrieval": 0.0, "processing": 0.0}
        for interval in worker_intervals(trace, worker):
            totals[interval.activity] += interval.duration
        busy = totals["retrieval"] + totals["processing"]
        out[worker] = {
            "retrieval": totals["retrieval"] / makespan,
            "processing": totals["processing"] / makespan,
            "idle": max(0.0, 1.0 - busy / makespan),
        }
    return out


def render_gantt(
    trace: EventLog, makespan: float, *, width: int = 72
) -> str:
    """Text Gantt chart: one row per worker, time left to right."""
    if width <= 0:
        raise TraceError("width must be positive")
    if makespan <= 0:
        raise TraceError("makespan must be positive")
    glyph = {"retrieval": "r", "processing": "P"}
    rows = []
    for worker in trace.workers():
        cells = ["."] * width
        for interval in worker_intervals(trace, worker):
            lo = min(width - 1, int(interval.start / makespan * width))
            hi = min(width, max(lo + 1, int(interval.end / makespan * width)))
            for i in range(lo, hi):
                cells[i] = glyph[interval.activity]
        rows.append(f"w{worker:03d} |{''.join(cells)}|")
    header = f"time 0 .. {makespan:.1f}s ({'r'}=retrieval, {'P'}=processing)"
    return header + "\n" + "\n".join(rows)
