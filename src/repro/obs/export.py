"""Trace exporters: JSONL, Chrome/Perfetto ``trace_event`` JSON, text report.

Three consumers of the shared event stream:

* :func:`write_jsonl` / :func:`read_jsonl` — one event per line; the
  archival format (`repro report` reads it back, so a trace captured on
  one machine can be analysed on another);
* :func:`to_perfetto` / :func:`write_perfetto` — the Chrome
  ``trace_event`` format (the "JSON Array Format" with thread metadata),
  loadable in https://ui.perfetto.dev or ``chrome://tracing``. One track
  per worker, one per cluster master, one for the head node;
* :func:`render_report` — the plain-text run report (Gantt + utilization
  table + event summary) used by ``repro trace`` and ``repro report``,
  identical for simulated and real runs.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import TraceError
from .analysis import render_gantt, utilization, worker_intervals
from .anomaly import detect_stragglers, render_stragglers
from .events import KINDS, EventLog, TraceEvent
from .spans import PHASES, build_spans, critical_path, phase_totals, render_critical_path

__all__ = [
    "event_to_dict",
    "write_jsonl",
    "read_jsonl",
    "to_perfetto",
    "write_perfetto",
    "render_report",
]

_DEFAULTS = TraceEvent(time=0.0, kind="job_done")


def event_to_dict(event: TraceEvent) -> dict:
    """Compact plain-data form: default-valued fields are omitted."""
    out = {"time": event.time, "kind": event.kind}
    for name in ("cluster", "worker", "job_id", "file_id", "detail"):
        value = getattr(event, name)
        if value != getattr(_DEFAULTS, name):
            out[name] = value
    return out


def write_jsonl(log: EventLog, path: str | Path) -> int:
    """Write one event per line; returns the number of events written."""
    events = log.snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event), sort_keys=True))
            fh.write("\n")
    return len(events)


def read_jsonl(path: str | Path) -> EventLog:
    """Load a JSONL trace back into an :class:`EventLog`."""
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                event = TraceEvent(**doc)
            except (json.JSONDecodeError, TypeError) as exc:
                raise TraceError(f"{path}:{lineno}: bad trace line: {exc}") from exc
            if event.kind not in KINDS:
                raise TraceError(
                    f"{path}:{lineno}: unknown event kind {event.kind!r}"
                )
            events.append(event)
    return EventLog(events)


# -- Perfetto ---------------------------------------------------------------

#: Instant events hosted on the head node's track.
_HEAD_KINDS = ("group_acked", "merge_done")

#: Ownerless event families get a named track each instead of landing as
#: anonymous process-scoped instants on the head track: the resilience
#: layer (retry/hedge/circuit/fault events carry only ``detail``), the
#: chunk cache (job/file ids but no worker), and the cross-site reader.
_FAMILY_TRACKS = {
    "retry": "resilience",
    "hedge": "resilience",
    "circuit_open": "resilience",
    "circuit_close": "resilience",
    "fault_injected": "resilience",
    "cache_hit": "cache",
    "cache_miss": "cache",
    "cache_evict": "cache",
    "remote_fetch": "storage",
    "scale_up": "scaling",
    "scale_down": "scaling",
    "provision": "scaling",
    "revocation": "scaling",
}

_US = 1e6  # trace_event timestamps are microseconds


def _thread_meta(pid: int, tid: int, name: str, sort_index: int) -> list[dict]:
    return [
        {
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": name},
        },
        {
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_sort_index",
            "args": {"sort_index": sort_index},
        },
    ]


def to_perfetto(log: EventLog, *, process_name: str = "repro-run") -> dict:
    """Convert a trace to a Chrome ``trace_event`` document (a dict).

    Track layout: tid 0 is the head node, one tid per cluster master, one
    tid per worker, then one tid per ownerless event family present
    (``resilience``, ``cache``, ``storage``). Paired ``fetch``/``compute``
    events become complete ('X') slices named ``retrieval``/``processing``;
    everything else becomes an instant ('i') event on its owner's track.
    """
    events = log.snapshot()
    snapshot = EventLog(events)
    pid = 1
    trace_events: list[dict] = [
        {
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": process_name},
        },
        *_thread_meta(pid, 0, "head", 0),
    ]

    clusters = sorted({e.cluster for e in events if e.cluster})
    master_tid = {name: 1 + i for i, name in enumerate(clusters)}
    for name, tid in master_tid.items():
        trace_events.extend(_thread_meta(pid, tid, f"master:{name}", tid))

    worker_tid: dict[int, int] = {}
    base = 1 + len(clusters)
    for i, worker in enumerate(snapshot.workers()):
        tid = base + i
        worker_tid[worker] = tid
        cluster = next(
            (e.cluster for e in events if e.worker == worker and e.cluster), ""
        )
        label = f"w{worker:03d}" + (f" ({cluster})" if cluster else "")
        trace_events.extend(_thread_meta(pid, tid, label, tid))

    family_tid: dict[str, int] = {}
    families = sorted(
        {
            _FAMILY_TRACKS[e.kind]
            for e in events
            if e.kind in _FAMILY_TRACKS and e.worker < 0
        }
    )
    fam_base = base + len(worker_tid)
    for i, family in enumerate(families):
        tid = fam_base + i
        family_tid[family] = tid
        trace_events.extend(_thread_meta(pid, tid, family, tid))

    # Complete slices: pair each worker's start/end events, keeping job ids.
    pairs = {
        "fetch_start": ("fetch_end", "retrieval"),
        "compute_start": ("compute_end", "processing"),
    }
    for worker in snapshot.workers():
        worker_intervals(snapshot, worker)  # validates pairing/overlap
        open_event: TraceEvent | None = None
        for event in sorted(snapshot.for_worker(worker), key=lambda e: e.time):
            if event.kind in pairs:
                open_event = event
            elif event.kind in ("fetch_end", "compute_end"):
                assert open_event is not None  # worker_intervals validated
                trace_events.append(
                    {
                        "ph": "X",
                        "pid": pid,
                        "tid": worker_tid[worker],
                        "ts": open_event.time * _US,
                        "dur": (event.time - open_event.time) * _US,
                        "name": pairs[open_event.kind][1],
                        "cat": "worker",
                        "args": {
                            "job_id": event.job_id,
                            "file_id": event.file_id,
                        },
                    }
                )
                open_event = None

    # Instant events on the owning track.
    for event in events:
        if event.kind in pairs or event.kind in ("fetch_end", "compute_end"):
            continue
        if event.worker >= 0 and event.kind not in _HEAD_KINDS:
            tid = worker_tid[event.worker]
            scope = "t"
        elif event.kind in _FAMILY_TRACKS:
            tid = family_tid[_FAMILY_TRACKS[event.kind]]
            scope = "t"
        elif event.cluster and event.kind not in _HEAD_KINDS:
            tid = master_tid[event.cluster]
            scope = "t"
        else:
            tid = 0
            scope = "p"
        args = {
            name: getattr(event, name)
            for name in ("cluster", "worker", "job_id", "file_id", "detail")
            if getattr(event, name) != getattr(_DEFAULTS, name)
        }
        trace_events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": tid,
                "ts": event.time * _US,
                "s": scope,
                "name": event.kind,
                "cat": "middleware",
                "args": args,
            }
        )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_perfetto(
    log: EventLog, path: str | Path, *, process_name: str = "repro-run"
) -> int:
    """Write the Perfetto JSON document; returns the trace-event count."""
    doc = to_perfetto(log, process_name=process_name)
    Path(path).write_text(json.dumps(doc), encoding="utf-8")
    return len(doc["traceEvents"])


# -- text report ------------------------------------------------------------


def render_report(
    log: EventLog,
    makespan: float | None = None,
    *,
    width: int = 72,
    show_critical_path: bool = False,
) -> str:
    """The plain-text run report: summary, Gantt chart, utilization table,
    per-phase span totals, and the straggler verdict.

    ``makespan`` defaults to the last event's timestamp, which is right
    for a trace read back from disk; pass the simulator's reported
    makespan when you have it. ``show_critical_path`` appends the causal
    chain gating the makespan (also: ``repro trace --critical-path``).
    """
    if makespan is None:
        makespan = log.makespan()
    if makespan <= 0 or not len(log):
        raise TraceError("cannot report on an empty trace")

    counts: dict[str, int] = {}
    for event in log.snapshot():
        counts[event.kind] = counts.get(event.kind, 0) + 1
    summary = "  ".join(f"{kind}={counts[kind]}" for kind in KINDS if kind in counts)

    lines = [
        f"{len(log)} events over {makespan:.3f}s "
        f"({len(log.workers())} workers)",
        summary,
        "",
        render_gantt(log, makespan, width=width),
        "",
        "worker  retrieval  processing   idle",
    ]
    util = utilization(log, makespan)
    for worker, parts in util.items():
        lines.append(
            f"w{worker:03d}    {parts['retrieval'] * 100:7.1f}%  "
            f"{parts['processing'] * 100:8.1f}%  {parts['idle'] * 100:5.1f}%"
        )
    if util:
        mean_idle = sum(p["idle"] for p in util.values()) / len(util)
        lines.append(f"mean worker idle fraction: {mean_idle * 100:.1f}%")

    # Zero-copy digest: the driver emits one `data_path` event per pass
    # summarizing how reads were served (views vs. materialized copies).
    data_path = log.of_kind("data_path")
    if data_path:
        lines.append("")
        lines.append("data path:")
        for event in data_path:
            lines.append(f"  {event.detail}")

    # Elastic-bursting timeline: every autoscaler decision, provisioned
    # slave, retirement, and spot revocation, in time order.
    scaling = [
        e
        for kind in ("scale_up", "scale_down", "provision", "revocation")
        for e in log.of_kind(kind)
    ]
    if scaling:
        scaling.sort(key=lambda e: e.time)
        added = sum(1 for e in scaling if e.kind == "provision")
        revoked = sum(1 for e in scaling if e.kind == "revocation")
        lines.append("")
        lines.append(
            f"scaling timeline ({added} slaves added, {revoked} revoked):"
        )
        for event in scaling:
            who = f" w{event.worker:03d}" if event.worker >= 0 else ""
            detail = f"  {event.detail}" if event.detail else ""
            lines.append(
                f"  {event.time:9.3f}s  {event.kind:<10}{who}{detail}"
            )

    # Span sections are best-effort: a partial or hand-built trace that
    # cannot be paired into job cycles keeps its Gantt/utilization report.
    try:
        spans = build_spans(log)
    except TraceError:
        spans = []
    if spans:
        totals = phase_totals(spans)
        lines.append("")
        lines.append(
            f"{len(spans)} job spans; per-phase seconds: "
            + "  ".join(
                f"{name}={totals[name]:.3f}" for name in PHASES if name in totals
            )
        )
        stolen = sum(1 for s in spans if s.stolen)
        reexec = sum(1 for s in spans if s.attempt > 1)
        if stolen or reexec:
            lines.append(
                f"{stolen} spans on stolen groups, {reexec} re-execution(s)"
            )
        lines.append(render_stragglers(detect_stragglers(log)))
        if show_critical_path:
            lines.append("")
            lines.append(render_critical_path(critical_path(log, makespan)))
    if getattr(log, "events_dropped", 0):
        lines.append(
            f"warning: ring buffer dropped {log.events_dropped} oldest "
            f"events (max_events={log.max_events})"
        )
    return "\n".join(lines)
