"""A small thread-safe metrics registry for the executable runtime.

Three instrument types, in the Prometheus spirit but in-process only:

* :class:`Counter` — a monotonically increasing count (jobs done, steals);
* :class:`Gauge` — a point-in-time value (worker count, pool depth);
* :class:`Histogram` — fixed-bucket latency distribution (fetch/compute
  seconds per job).

A :class:`MetricsRegistry` hands out instruments by name (get-or-create,
so every slave thread shares one ``fetch_seconds`` histogram) and
:meth:`~MetricsRegistry.snapshot` renders the whole registry to plain
data — the driver stores that snapshot on
:class:`~repro.runtime.telemetry.RunTelemetry` so metrics persist through
``RunTelemetry.to_json`` alongside the stopwatch aggregates.
"""

from __future__ import annotations

import bisect
import threading

from ..errors import ObservabilityError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Upper bounds (seconds) for latency histograms; a final +inf bucket is
#: implicit. Spans sub-millisecond in-memory reads to WAN-scale stalls.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """Monotonic counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ObservabilityError(f"counter {self.name!r}: negative increment")
        with self._lock:
            self.value += n


class Gauge:
    """Last-write-wins value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += float(delta)


class Histogram:
    """Fixed-bucket histogram; bucket ``i`` counts values <= ``buckets[i]``,
    with one extra overflow bucket at the end."""

    def __init__(self, name: str, buckets: tuple[float, ...]) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ObservabilityError(
                f"histogram {name!r}: buckets must be a non-empty ascending "
                "sequence"
            )
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (returns the bucket's upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(self.buckets):
                    return self.buckets[index]
                return float("inf")
        return float("inf")  # pragma: no cover - rank <= count always hits


class MetricsRegistry:
    """Named instruments, shared across threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_free(self, name: str, own: dict) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and name in table:
                raise ObservabilityError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            self._check_free(name, self._counters)
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._check_free(name, self._gauges)
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        with self._lock:
            self._check_free(name, self._histograms)
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, buckets)
            elif self._histograms[name].buckets != tuple(
                float(b) for b in buckets
            ):
                raise ObservabilityError(
                    f"histogram {name!r} re-registered with different buckets"
                )
            return self._histograms[name]

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (JSON-serializable)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.total,
                        "count": h.count,
                        "mean": h.mean,
                    }
                    for n, h in sorted(self._histograms.items())
                },
            }
