"""Live run-health monitoring: a periodic sampler over a running run.

ROADMAP's elastic autoscaler and multi-run service both need to *watch*
a run, not autopsy it: job-pool depth, steal rate, cache hit ratio,
WAN/sync bytes, worker utilization, and a completion-rate ETA, sampled
on an interval while the run executes. This module is that signal bus:

* :class:`RunSample` — one immutable snapshot of run health;
* :class:`RunMonitor` — a clock-injected periodic sampler. The runtime
  binds it to a live probe (:meth:`RunMonitor.bind`) and it keeps a
  bounded ring of samples plus a subscription callback API. Inject a
  :class:`~repro.clock.FakeClock` and the sampler runs on virtual time —
  tests never sleep;
* :func:`samples_from_log` — the simulator's path: reconstruct the same
  sample stream post-hoc from the event log, so both substrates feed
  identical ``RunSample`` vocabularies to the same consumers.

Enable via ``RunConfig(monitor=MonitorOptions(interval=0.5,
on_sample=...))`` or drive
interactively with the ``repro watch`` CLI. Disabled (the default) the
runtime constructs none of this machinery.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..clock import SYSTEM_CLOCK, SystemClock
from ..errors import TraceError
from .analysis import worker_intervals
from .events import EventLog

__all__ = ["RunSample", "RunMonitor", "samples_from_log"]


@dataclass(frozen=True)
class RunSample:
    """One snapshot of run health at a moment in run time."""

    time: float
    jobs_total: int
    jobs_done: int
    pool_depth: int
    in_flight: int
    steals: int
    workers: int
    workers_busy: int
    cache_hits: int
    cache_misses: int
    sync_bytes_sent: int
    remote_fetches: int
    completion_rate: float  # jobs/second, run-average
    eta_seconds: float | None  # None until the rate is observable

    @property
    def cache_hit_ratio(self) -> float:
        consulted = self.cache_hits + self.cache_misses
        return self.cache_hits / consulted if consulted else 0.0

    @property
    def utilization(self) -> float:
        return self.workers_busy / self.workers if self.workers else 0.0

    @property
    def progress(self) -> float:
        return self.jobs_done / self.jobs_total if self.jobs_total else 0.0

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "jobs_total": self.jobs_total,
            "jobs_done": self.jobs_done,
            "pool_depth": self.pool_depth,
            "in_flight": self.in_flight,
            "steals": self.steals,
            "workers": self.workers,
            "workers_busy": self.workers_busy,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": self.cache_hit_ratio,
            "sync_bytes_sent": self.sync_bytes_sent,
            "remote_fetches": self.remote_fetches,
            "completion_rate": self.completion_rate,
            "eta_seconds": self.eta_seconds,
            "utilization": self.utilization,
        }


#: A probe returns the raw gauges; the monitor derives rate/ETA/time.
Probe = Callable[[], dict]

_GAUGES = (
    "jobs_total",
    "jobs_done",
    "pool_depth",
    "in_flight",
    "steals",
    "workers",
    "workers_busy",
    "cache_hits",
    "cache_misses",
    "sync_bytes_sent",
    "remote_fetches",
)


def _derive(raw: dict, now: float) -> RunSample:
    gauges = {name: int(raw.get(name, 0)) for name in _GAUGES}
    rate = gauges["jobs_done"] / now if now > 0 else 0.0
    remaining = gauges["jobs_total"] - gauges["jobs_done"]
    eta = remaining / rate if rate > 0 and remaining >= 0 else None
    return RunSample(time=now, completion_rate=rate, eta_seconds=eta, **gauges)


class RunMonitor:
    """Clock-injected periodic sampler with a bounded sample ring.

    Lifecycle: construct, :meth:`bind` a probe, :meth:`start`; the
    sampler thread (spawned through the injected clock, so a
    :class:`~repro.clock.FakeClock` coordinates it) takes one
    :class:`RunSample` per ``interval`` until :meth:`stop`, which takes
    one final sample so even sub-interval runs record their end state.
    Subscribers are called synchronously on the sampler thread; a
    subscriber that raises is counted in :attr:`callback_errors`, never
    crashes the run.
    """

    def __init__(
        self,
        interval: float,
        *,
        capacity: int = 512,
        clock: SystemClock | None = None,
    ) -> None:
        if interval <= 0:
            raise TraceError(f"monitor interval must be positive, got {interval}")
        if capacity <= 0:
            raise TraceError(f"monitor capacity must be positive, got {capacity}")
        self.interval = interval
        self.capacity = capacity
        self._clock = clock if clock is not None else SYSTEM_CLOCK
        self._ring: deque[RunSample] = deque(maxlen=capacity)
        self._subscribers: list[Callable[[RunSample], None]] = []
        self._probe: Probe | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._t0: float | None = None
        self.samples_taken = 0
        self.callback_errors = 0

    # -- wiring --------------------------------------------------------------

    def bind(self, probe: Probe) -> None:
        """Attach the live gauge source (the runtime driver's closure)."""
        self._probe = probe

    def subscribe(self, fn: Callable[[RunSample], None]) -> None:
        """Register a callback invoked with every new sample."""
        with self._lock:
            self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[RunSample], None]) -> None:
        with self._lock:
            self._subscribers.remove(fn)

    def samples(self) -> list[RunSample]:
        """The retained ring, oldest first (a consistent copy)."""
        with self._lock:
            return list(self._ring)

    @property
    def last(self) -> RunSample | None:
        with self._lock:
            return self._ring[-1] if self._ring else None

    # -- sampling ------------------------------------------------------------

    def sample_now(self) -> RunSample:
        """Take one sample synchronously (also used by the loop)."""
        if self._probe is None:
            raise TraceError("monitor has no probe bound")
        t0 = self._t0 if self._t0 is not None else self._clock.monotonic()
        sample = _derive(self._probe(), self._clock.monotonic() - t0)
        with self._lock:
            self._ring.append(sample)
            subscribers = list(self._subscribers)
        self.samples_taken += 1
        for fn in subscribers:
            try:
                fn(sample)
            except Exception:
                self.callback_errors += 1
        return sample

    def start(self) -> None:
        """Begin periodic sampling (idempotent per run: call once)."""
        if self._probe is None:
            raise TraceError("monitor has no probe bound")
        if self._thread is not None and self._thread.is_alive():
            raise TraceError("monitor is already running")
        self._stop.clear()
        self._t0 = self._clock.monotonic()
        self._thread = self._clock.spawn(self._loop, name="run-monitor")

    def stop(self) -> None:
        """Stop the sampler and take one closing sample."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            advance = (
                None
                if isinstance(self._clock, SystemClock)
                else getattr(self._clock, "advance", None)
            )
            if advance is not None:
                # Virtual clock: the owner drives time, so the sampler is
                # parked at its next deadline. Nudge the clock until it
                # wakes, observes the stop flag, and exits.
                for _ in range(100):
                    if not thread.is_alive():
                        break
                    advance(self.interval)
                    thread.join(timeout=0.05)
            thread.join(timeout=30.0)
            self._thread = None
        if self._probe is not None and self._t0 is not None:
            self.sample_now()

    def _loop(self) -> None:
        real_time = isinstance(self._clock, SystemClock)
        while not self._stop.is_set():
            if real_time:
                # Event.wait doubles as the pacer and an immediate stop.
                if self._stop.wait(self.interval):
                    break
            else:
                # Virtual time: park on the clock; the owner advances it.
                self._clock.sleep(self.interval)
                if self._stop.is_set():
                    break
            self.sample_now()


# -- post-hoc reconstruction (the simulator's path) -------------------------

_GROUP_SIZE = re.compile(r"x(\d+)")
_WIRE_BYTES = re.compile(r"(\d+)/\d+B")


def samples_from_log(
    log: EventLog,
    interval: float,
    *,
    jobs_total: int | None = None,
    makespan: float | None = None,
) -> list[RunSample]:
    """Reconstruct the monitor's sample stream from a finished trace.

    The simulator runs in virtual time, so "live" sampling is just a
    replay: one :class:`RunSample` per ``interval`` tick (plus a final
    tick at the makespan), derived from the same event kinds the live
    probe gauges. Both substrates therefore produce identical sample
    vocabularies for identical runs.
    """
    if interval <= 0:
        raise TraceError(f"sample interval must be positive, got {interval}")
    if makespan is None:
        makespan = log.makespan()
    if makespan <= 0 or not len(log):
        return []

    events = sorted(log.snapshot(), key=lambda e: e.time)
    done_times = sorted(e.time for e in events if e.kind == "job_done")
    if jobs_total is None:
        jobs_total = len(done_times)

    assigned: list[tuple[float, int]] = []
    for e in events:
        if e.kind == "group_assigned":
            m = _GROUP_SIZE.search(e.detail)
            assigned.append((e.time, int(m.group(1)) if m else 0))
    uploads: list[tuple[float, int]] = []
    for e in events:
        if e.kind == "sync_upload":
            m = _WIRE_BYTES.search(e.detail)
            uploads.append((e.time, int(m.group(1)) if m else 0))
    steal_times = sorted(e.time for e in events if e.kind == "steal")
    hit_times = sorted(e.time for e in events if e.kind == "cache_hit")
    miss_times = sorted(e.time for e in events if e.kind == "cache_miss")
    remote_times = sorted(e.time for e in events if e.kind == "remote_fetch")
    start_times = sorted(e.time for e in events if e.kind == "fetch_start")

    workers = log.workers()
    busy: dict[int, list] = {
        w: worker_intervals(log, w) for w in workers
    }

    def count_le(times: list[float], t: float) -> int:
        lo, hi = 0, len(times)
        while lo < hi:
            mid = (lo + hi) // 2
            if times[mid] <= t:
                lo = mid + 1
            else:
                hi = mid
        return lo

    ticks = []
    t = interval
    while t < makespan:
        ticks.append(t)
        t += interval
    ticks.append(makespan)

    out: list[RunSample] = []
    for t in ticks:
        jobs_done = count_le(done_times, t)
        assigned_jobs = sum(n for at, n in assigned if at <= t)
        started = count_le(start_times, t)
        if not started:  # prefetch traces carry no fetch events
            started = jobs_done
        in_flight = max(0, started - jobs_done)
        raw = {
            "jobs_total": jobs_total,
            "jobs_done": jobs_done,
            "pool_depth": max(0, assigned_jobs - started),
            "in_flight": in_flight,
            "steals": count_le(steal_times, t),
            "workers": len(workers),
            "workers_busy": sum(
                1
                for w in workers
                if any(iv.start <= t < iv.end for iv in busy[w])
            ),
            "cache_hits": count_le(hit_times, t),
            "cache_misses": count_le(miss_times, t),
            "sync_bytes_sent": sum(n for ut, n in uploads if ut <= t),
            "remote_fetches": count_le(remote_times, t),
        }
        out.append(_derive(raw, t))
    return out
