"""The paper's experiment configurations.

Section IV-B's five environments (for each application) and Section IV-C's
scalability ladder. Core counts follow the paper's table exactly:

====================  ==========  ================  ==========
env                   data dist   knn & pagerank    kmeans
                      local/S3    (local, EC2)      (local, EC2)
====================  ==========  ================  ==========
env-local             100% / 0%   (32, 0)           (32, 0)
env-cloud             0% / 100%   (0, 32)           (0, 44)
env-50/50             50% / 50%   (16, 16)          (16, 22)
env-33/67             33% / 67%   (16, 16)          (16, 22)
env-17/83             17% / 83%   (16, 16)          (16, 22)
====================  ==========  ================  ==========

(kmeans gets 22 EC2 cores per 16 local because EC2 cores are slower for
compute-bound work — the paper empirically matched cluster throughputs.)

The scalability experiments place **all** data in S3 and sweep
(m, n) = (4,4), (8,8), (16,16), (32,32).

Datasets are the paper's shape — 120 GB, 32 files, 960 jobs — with the
record size taken from each application's cost profile. ``scale`` shrinks
chunk sizes for smoke tests without changing the job structure.
"""

from __future__ import annotations

from ..apps.base import get_profile
from ..config import (
    ComputeSpec,
    DatasetSpec,
    ExperimentConfig,
    MiddlewareTuning,
    PlacementSpec,
)
from ..units import GB, MB

__all__ = [
    "ENV_NAMES",
    "HYBRID_ENVS",
    "SCALABILITY_LADDER",
    "paper_dataset",
    "env_config",
    "figure3_configs",
    "figure4_configs",
]

ENV_NAMES = ("env-local", "env-cloud", "env-50/50", "env-33/67", "env-17/83")
HYBRID_ENVS = ("env-50/50", "env-33/67", "env-17/83")
SCALABILITY_LADDER = (4, 8, 16, 32)

#: data fraction hosted locally, per environment
_LOCAL_FRACTION = {
    "env-local": 1.0,
    "env-cloud": 0.0,
    "env-50/50": 0.5,
    "env-33/67": 1.0 / 3.0,
    "env-17/83": 1.0 / 6.0,
}


def _cores(app: str, env: str) -> ComputeSpec:
    cloud_full = 44 if app == "kmeans" else 32
    cloud_half = 22 if app == "kmeans" else 16
    if env == "env-local":
        return ComputeSpec(local_cores=32, cloud_cores=0)
    if env == "env-cloud":
        return ComputeSpec(local_cores=0, cloud_cores=cloud_full)
    return ComputeSpec(local_cores=16, cloud_cores=cloud_half)


def paper_dataset(app: str, *, scale: float = 1.0) -> DatasetSpec:
    """The 120 GB / 32 files / 960 jobs dataset, sized for ``app``'s records.

    ``scale`` < 1 shrinks every chunk proportionally (same structure,
    faster simulation); 1.0 is the paper's exact shape.
    """
    record = get_profile(app).record_bytes
    spec = DatasetSpec(
        total_bytes=120 * GB,
        num_files=32,
        chunk_bytes=128 * MB,
        record_bytes=record,
    )
    if scale != 1.0:
        spec = spec.scaled(scale)
    return spec


def env_config(
    app: str,
    env: str,
    *,
    scale: float = 1.0,
    tuning: MiddlewareTuning | None = None,
    seed: int = 2011,
) -> ExperimentConfig:
    """Build one of the paper's env-* configurations for ``app``."""
    if env not in _LOCAL_FRACTION:
        raise KeyError(f"unknown environment {env!r}; expected one of {ENV_NAMES}")
    return ExperimentConfig(
        name=env,
        app=app,
        dataset=paper_dataset(app, scale=scale),
        placement=PlacementSpec(local_fraction=_LOCAL_FRACTION[env]),
        compute=_cores(app, env),
        tuning=tuning or MiddlewareTuning(),
        seed=seed,
    )


def figure3_configs(
    app: str, *, scale: float = 1.0, seed: int = 2011
) -> dict[str, ExperimentConfig]:
    """All five environments of Figure 3 for one application."""
    return {env: env_config(app, env, scale=scale, seed=seed) for env in ENV_NAMES}


def figure4_configs(
    app: str,
    *,
    ladder: tuple[int, ...] = SCALABILITY_LADDER,
    scale: float = 1.0,
    seed: int = 2011,
) -> dict[str, ExperimentConfig]:
    """The scalability sweep of Figure 4: all data in S3, (m, m) cores."""
    out: dict[str, ExperimentConfig] = {}
    for m in ladder:
        name = f"({m},{m})"
        out[name] = ExperimentConfig(
            name=name,
            app=app,
            dataset=paper_dataset(app, scale=scale),
            placement=PlacementSpec(local_fraction=0.0),
            compute=ComputeSpec(local_cores=m, cloud_cores=m),
            seed=seed,
        )
    return out
