"""Reproduction scorecard: programmatic checks of every headline claim.

:func:`evaluate_claims` runs the full evaluation (Figure 3 and Figure 4
for all three applications) and grades each claim the paper makes against
the measured outcome, returning structured :class:`Claim` records the
scorecard bench and the ``scorecard`` CLI command render.

A claim *passes* when the measured value satisfies the shape band — not
when it equals the paper's absolute number (the testbed is simulated; see
EXPERIMENTS.md for the full rationale).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.calibration import PAPER_CALIBRATION, SimCalibration
from .configs import HYBRID_ENVS
from .experiments import (
    PAPER_APPS,
    Figure3Run,
    Figure4Run,
    mean_hybrid_slowdown,
    run_figure3,
    run_figure4,
    table1_rows,
)

__all__ = ["Claim", "evaluate_claims", "render_scorecard"]


@dataclass(frozen=True)
class Claim:
    """One graded claim."""

    claim_id: str
    description: str
    paper: str
    measured: str
    passed: bool


def _fig3_claims(runs: dict[str, Figure3Run]) -> list[Claim]:
    claims: list[Claim] = []

    mean_pct = mean_hybrid_slowdown(runs) * 100.0
    claims.append(
        Claim(
            "headline-slowdown",
            "average hybrid slowdown over the 9 runs is modest",
            "15.55%",
            f"{mean_pct:.2f}%",
            0.0 < mean_pct < 35.0,
        )
    )

    knn = runs["knn"]
    claims.append(
        Claim(
            "knn-retrieval-bound",
            "knn retrieval exceeds processing in every environment",
            "retrieval dominates (Sec. IV-B)",
            "checked in 5 envs x clusters",
            all(
                c.mean_retrieval > c.mean_processing
                for r in knn.reports.values()
                for c in r.clusters.values()
            ),
        )
    )
    claims.append(
        Claim(
            "knn-cloud-retrieval",
            "env-cloud retrieval is shorter than env-local (multi-threaded S3)",
            "shorter (Sec. IV-B)",
            f"{knn.reports['env-cloud'].cluster('cloud-cluster').mean_retrieval:.0f}s"
            f" vs {knn.reports['env-local'].cluster('local-cluster').mean_retrieval:.0f}s",
            knn.reports["env-cloud"].cluster("cloud-cluster").mean_retrieval
            < knn.reports["env-local"].cluster("local-cluster").mean_retrieval,
        )
    )

    kmeans = runs["kmeans"]
    worst = max(kmeans.slowdown_ratio(env) for env in HYBRID_ENVS) * 100
    claims.append(
        Claim(
            "kmeans-small-penalty",
            "compute-bound kmeans bursts with little penalty",
            "worst case 10.4%",
            f"worst case {worst:.1f}%",
            worst < 12.0,
        )
    )
    eff = kmeans.baseline.makespan / kmeans.reports["env-17/83"].makespan * 100
    claims.append(
        Claim(
            "kmeans-17/83-efficiency",
            "kmeans env-17/83 keeps ~90% of env-local efficiency",
            ">= ~90%",
            f"{eff:.1f}%",
            eff > 85.0,
        )
    )

    pagerank = runs["pagerank"]
    gr = [pagerank.reports[env].global_reduction for env in HYBRID_ENVS]
    claims.append(
        Claim(
            "pagerank-robj-cost",
            "pagerank's ~300 MB reduction object costs tens of seconds of "
            "global reduction",
            "36.6-42.5 s",
            f"{min(gr):.1f}-{max(gr):.1f} s",
            all(10.0 < g < 120.0 for g in gr),
        )
    )
    small_gr = [
        runs[app].reports[env].global_reduction
        for app in ("knn", "kmeans")
        for env in HYBRID_ENVS
    ]
    claims.append(
        Claim(
            "small-robj-cost",
            "knn/kmeans global reduction is negligible",
            "66-76 ms",
            f"{min(small_gr) * 1000:.0f}-{max(small_gr) * 1000:.0f} ms",
            all(g < 1.0 for g in small_gr),
        )
    )

    for app, run in runs.items():
        ratios = [run.slowdown_ratio(env) for env in HYBRID_ENVS]
        claims.append(
            Claim(
                f"{app}-skew-ramp",
                f"{app}: slowdown grows from 50/50 to 17/83",
                "monotone growth (Table II)",
                "/".join(f"{r * 100:.1f}%" for r in ratios),
                ratios[2] >= ratios[0] - 0.02,
            )
        )

    stolen_zero = all(
        row["stolen"] <= 40
        for app, run in runs.items()
        for row in table1_rows(run)
        if row["env"] == "env-50/50"
    )
    claims.append(
        Claim(
            "5050-balanced",
            "env-50/50 needs (almost) no stealing for any app",
            "0 stolen (Table I)",
            "checked 3 apps",
            stolen_zero,
        )
    )
    stolen_monotone = True
    for run in runs.values():
        by_env = {r["env"]: r["stolen"] for r in table1_rows(run)}
        ordered = [by_env[env] for env in HYBRID_ENVS]
        if not ordered[0] <= ordered[1] <= ordered[2]:
            stolen_monotone = False
    claims.append(
        Claim(
            "stealing-monotone",
            "stolen jobs grow with data skew for every app",
            "64->128 / 128->256 / 112->240 (Table I)",
            "checked 3 apps",
            stolen_monotone,
        )
    )
    return claims


def _fig4_claims(runs: dict[str, Figure4Run]) -> list[Claim]:
    claims: list[Claim] = []
    speedups = {app: run.speedups() for app, run in runs.items()}
    mean = sum(sum(s) for s in speedups.values()) / sum(
        len(s) for s in speedups.values()
    )
    claims.append(
        Claim(
            "headline-speedup",
            "average speedup per core-doubling",
            "81%",
            f"{mean:.1f}%",
            60.0 < mean < 100.0,
        )
    )
    claims.append(
        Claim(
            "kmeans-scales-best",
            "compute-bound kmeans has the best mean scalability",
            "86-88% per doubling",
            f"{sum(speedups['kmeans']) / 3:.1f}%",
            sum(speedups["kmeans"]) >= max(
                sum(speedups["knn"]), sum(speedups["pagerank"])
            ),
        )
    )
    claims.append(
        Claim(
            "pagerank-fixed-cost",
            "pagerank's last doubling is its worst (fixed robj exchange)",
            "85.8 -> 66.4%",
            "/".join(f"{s:.1f}%" for s in speedups["pagerank"]),
            speedups["pagerank"][-1] < speedups["pagerank"][0],
        )
    )
    for app, run in runs.items():
        names = [f"({m},{m})" for m in run.ladder]
        makespans = [run.reports[n].makespan for n in names]
        claims.append(
            Claim(
                f"{app}-monotone-scaling",
                f"{app}: makespan falls at every doubling",
                "monotone (Fig. 4)",
                "/".join(f"{m:.0f}s" for m in makespans),
                all(a > b for a, b in zip(makespans, makespans[1:])),
            )
        )
    return claims


def evaluate_claims(
    *,
    scale: float = 1.0,
    calibration: SimCalibration = PAPER_CALIBRATION,
    seed: int = 2011,
) -> list[Claim]:
    """Run the whole evaluation and grade every claim."""
    fig3 = {app: run_figure3(app, scale=scale, calibration=calibration, seed=seed)
            for app in PAPER_APPS}
    fig4 = {app: run_figure4(app, scale=scale, calibration=calibration, seed=seed)
            for app in PAPER_APPS}
    return _fig3_claims(fig3) + _fig4_claims(fig4)


def render_scorecard(claims: list[Claim]) -> str:
    """ASCII scorecard of all graded claims."""
    from .reporting import render_table

    rows = [
        ("PASS" if c.passed else "FAIL", c.claim_id, c.paper, c.measured,
         c.description)
        for c in claims
    ]
    passed = sum(c.passed for c in claims)
    header = f"Reproduction scorecard: {passed}/{len(claims)} claims hold\n"
    return header + render_table(
        ("", "claim", "paper", "measured", "description"), rows
    )
