"""Experiment runners: one entry point per paper artifact.

Each runner executes the discrete-event simulator over the relevant
configurations and returns a structured result object that the reporting
module renders as the paper's rows/series. ``scale`` < 1 shrinks chunk
sizes (same 960-job structure) for smoke tests; the benches run at full
scale, which still simulates in about a second per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.base import AppProfile, get_profile
from ..config import CLOUD_SITE, LOCAL_SITE, ExperimentConfig, MiddlewareTuning
from ..errors import ConfigurationError
from ..sim.calibration import PAPER_CALIBRATION, SimCalibration
from ..sim.metrics import SimReport
from ..sim.simulation import simulate
from .configs import (
    HYBRID_ENVS,
    SCALABILITY_LADDER,
    env_config,
    figure3_configs,
    figure4_configs,
)

__all__ = [
    "Figure3Run",
    "Figure4Run",
    "run_figure3",
    "run_figure4",
    "table1_rows",
    "table2_rows",
    "mean_hybrid_slowdown",
    "run_skew_sweep",
    "run_iterative_projection",
    "run_stealing_ablation",
    "run_scheduling_ablation",
    "run_retrieval_ablation",
    "run_robj_ablation",
]

PAPER_APPS = ("knn", "kmeans", "pagerank")


def _cluster_by_site(report: SimReport, site: str):
    for cluster in report.clusters.values():
        if cluster.site == site:
            return cluster
    return None


@dataclass
class Figure3Run:
    """All five environments of Figure 3 for one application."""

    app: str
    reports: dict[str, SimReport] = field(default_factory=dict)

    @property
    def baseline(self) -> SimReport:
        return self.reports["env-local"]

    def slowdown_seconds(self, env: str) -> float:
        return self.reports[env].slowdown_vs(self.baseline)

    def slowdown_ratio(self, env: str) -> float:
        return self.reports[env].slowdown_ratio_vs(self.baseline)


@dataclass
class Figure4Run:
    """The scalability ladder of Figure 4 for one application."""

    app: str
    reports: dict[str, SimReport] = field(default_factory=dict)
    ladder: tuple[int, ...] = SCALABILITY_LADDER

    def speedups(self) -> list[float]:
        """Percent speedup at each doubling, in ladder order."""
        out: list[float] = []
        names = [f"({m},{m})" for m in self.ladder]
        for prev, cur in zip(names, names[1:]):
            t_prev = self.reports[prev].makespan
            t_cur = self.reports[cur].makespan
            out.append((t_prev / t_cur - 1.0) * 100.0)
        return out


def run_figure3(
    app: str,
    *,
    scale: float = 1.0,
    calibration: SimCalibration = PAPER_CALIBRATION,
    seed: int = 2011,
) -> Figure3Run:
    """Simulate the five env-* configurations for one application."""
    run = Figure3Run(app=app)
    for env, config in figure3_configs(app, scale=scale, seed=seed).items():
        run.reports[env] = simulate(config, calibration)
    return run


def run_figure4(
    app: str,
    *,
    ladder: tuple[int, ...] = SCALABILITY_LADDER,
    scale: float = 1.0,
    calibration: SimCalibration = PAPER_CALIBRATION,
    seed: int = 2011,
) -> Figure4Run:
    """Simulate the scalability ladder (all data in S3) for one app."""
    run = Figure4Run(app=app, ladder=ladder)
    for name, config in figure4_configs(
        app, ladder=ladder, scale=scale, seed=seed
    ).items():
        run.reports[name] = simulate(config, calibration)
    return run


# -- table extraction ---------------------------------------------------------


def table1_rows(run: Figure3Run) -> list[dict]:
    """Table I rows (jobs processed / stolen) from a Figure-3 run."""
    rows = []
    for env in HYBRID_ENVS:
        report = run.reports[env]
        ec2 = _cluster_by_site(report, CLOUD_SITE)
        local = _cluster_by_site(report, LOCAL_SITE)
        rows.append(
            {
                "app": run.app,
                "env": env,
                "ec2_jobs": ec2.jobs_processed if ec2 else 0,
                "local_jobs": local.jobs_processed if local else 0,
                "stolen": local.jobs_stolen if local else 0,
            }
        )
    return rows


def table2_rows(run: Figure3Run) -> list[dict]:
    """Table II rows (global reduction / idle / slowdown) from a run."""
    rows = []
    for env in HYBRID_ENVS:
        report = run.reports[env]
        ec2 = _cluster_by_site(report, CLOUD_SITE)
        local = _cluster_by_site(report, LOCAL_SITE)
        rows.append(
            {
                "app": run.app,
                "env": env,
                "global_reduction": report.global_reduction,
                "idle_local": local.idle if local else 0.0,
                "idle_ec2": ec2.idle if ec2 else 0.0,
                "total_slowdown": run.slowdown_seconds(env),
            }
        )
    return rows


def mean_hybrid_slowdown(runs: dict[str, Figure3Run]) -> float:
    """The paper's headline: average slowdown ratio over the 9 hybrid runs."""
    ratios = [
        run.slowdown_ratio(env) for run in runs.values() for env in HYBRID_ENVS
    ]
    if not ratios:
        raise ConfigurationError("no hybrid runs supplied")
    return sum(ratios) / len(ratios)


# -- ablations -----------------------------------------------------------------


def run_skew_sweep(
    app: str,
    fractions: tuple[float, ...] = (1.0, 0.75, 0.5, 1.0 / 3.0, 0.25, 1.0 / 6.0, 0.0),
    *,
    scale: float = 1.0,
    calibration: SimCalibration = PAPER_CALIBRATION,
    seed: int = 2011,
) -> dict[float, SimReport]:
    """A continuum version of Figure 3: sweep the local data fraction.

    The paper samples three skews (50/50, 33/67, 17/83); this sweep fills
    in the curve between fully-local and fully-cloud data under the same
    halved (16, 16) / (16, 22) compute split, exposing where the bursting
    penalty ramps.
    """
    from ..config import ComputeSpec, ExperimentConfig, PlacementSpec
    from .configs import paper_dataset

    cloud_half = 22 if app == "kmeans" else 16
    out: dict[float, SimReport] = {}
    for fraction in fractions:
        config = ExperimentConfig(
            name=f"skew-{fraction:.2f}",
            app=app,
            dataset=paper_dataset(app, scale=scale),
            placement=PlacementSpec(local_fraction=fraction),
            compute=ComputeSpec(local_cores=16, cloud_cores=cloud_half),
            seed=seed,
        )
        out[fraction] = simulate(config, calibration)
    return out


def run_iterative_projection(
    app: str = "pagerank",
    env: str = "env-50/50",
    iterations: int = 10,
    *,
    scale: float = 1.0,
    calibration: SimCalibration = PAPER_CALIBRATION,
    seed: int = 2011,
) -> dict[str, object]:
    """Project an iterative workload's cost from per-pass simulations.

    The paper evaluates one pass per application, but kmeans and pagerank
    are iterative in practice: every pass re-reads the dataset and
    re-exchanges the reduction object. This runner simulates ``iterations``
    passes (reseeded per pass, so jitter varies) for both the hybrid
    environment and the centralized baseline, and reports how the
    *cumulative* bursting overhead decomposes — in particular how much of
    it is the per-pass reduction-object exchange, a cost the single-pass
    evaluation understates for iterative workloads.
    """
    if iterations <= 0:
        raise ConfigurationError("iterations must be positive")
    hybrid_passes: list[SimReport] = []
    base_passes: list[SimReport] = []
    for i in range(iterations):
        pass_seed = seed + 7919 * i
        hybrid_passes.append(
            simulate(env_config(app, env, scale=scale, seed=pass_seed),
                     calibration)
        )
        base_passes.append(
            simulate(env_config(app, "env-local", scale=scale, seed=pass_seed),
                     calibration)
        )
    hybrid_total = sum(r.makespan for r in hybrid_passes)
    base_total = sum(r.makespan for r in base_passes)
    robj_total = sum(r.global_reduction for r in hybrid_passes)
    return {
        "app": app,
        "env": env,
        "iterations": iterations,
        "hybrid_passes": hybrid_passes,
        "base_passes": base_passes,
        "hybrid_total": hybrid_total,
        "base_total": base_total,
        "total_overhead": hybrid_total - base_total,
        "robj_overhead": robj_total,
    }


def run_stealing_ablation(
    app: str = "knn",
    envs: tuple[str, ...] = HYBRID_ENVS,
    *,
    scale: float = 1.0,
    calibration: SimCalibration = PAPER_CALIBRATION,
    seed: int = 2011,
) -> dict[str, tuple[SimReport, SimReport]]:
    """Work stealing on vs off — the middleware's defining feature.

    With ``allow_stealing=False`` each cluster only processes the data
    stored at its own site (classic Map-Reduce co-location); under skew
    the data-poor cluster idles while the data-rich one grinds. Returns
    ``{env: (with_stealing, without_stealing)}``.
    """
    out: dict[str, tuple[SimReport, SimReport]] = {}
    for env in envs:
        with_cfg = env_config(app, env, scale=scale, seed=seed)
        without_cfg = env_config(
            app, env, scale=scale, seed=seed,
            tuning=MiddlewareTuning(allow_stealing=False),
        )
        out[env] = (
            simulate(with_cfg, calibration),
            simulate(without_cfg, calibration),
        )
    return out


def run_scheduling_ablation(
    app: str = "knn",
    env: str = "env-17/83",
    *,
    scale: float = 1.0,
    calibration: SimCalibration = PAPER_CALIBRATION,
    seed: int = 2011,
) -> dict[str, SimReport]:
    """Both head-scheduler heuristics on/off (Section III-B's design calls).

    Returns reports keyed ``baseline`` / ``no-consecutive`` / ``no-min-
    contention`` / ``neither``. The chosen environment maximizes stealing,
    where both heuristics matter.
    """
    variants = {
        "baseline": MiddlewareTuning(),
        "no-consecutive": MiddlewareTuning(consecutive_assignment=False),
        "no-min-contention": MiddlewareTuning(min_contention_stealing=False),
        "neither": MiddlewareTuning(
            consecutive_assignment=False, min_contention_stealing=False
        ),
    }
    out: dict[str, SimReport] = {}
    for label, tuning in variants.items():
        config = env_config(app, env, scale=scale, tuning=tuning, seed=seed)
        out[label] = simulate(config, calibration)
    return out


def run_retrieval_ablation(
    app: str = "knn",
    env: str = "env-cloud",
    threads: tuple[int, ...] = (1, 2, 4, 8, 16),
    *,
    scale: float = 1.0,
    calibration: SimCalibration = PAPER_CALIBRATION,
    seed: int = 2011,
) -> dict[int, SimReport]:
    """Sweep per-slave retrieval connections (Section III-B's multi-
    threaded retrieval): per-connection caps make extra connections pay
    until the site trunk saturates."""
    out: dict[int, SimReport] = {}
    for n in threads:
        config = env_config(
            app,
            env,
            scale=scale,
            tuning=MiddlewareTuning(retrieval_threads=n),
            seed=seed,
        )
        out[n] = simulate(config, calibration)
    return out


def run_robj_ablation(
    app: str = "pagerank",
    env: str = "env-50/50",
    robj_mb: tuple[int, ...] = (1, 30, 100, 300, 1000),
    *,
    scale: float = 1.0,
    calibration: SimCalibration = PAPER_CALIBRATION,
    seed: int = 2011,
) -> dict[int, SimReport]:
    """Sweep reduction-object size (Section IV-B: "if the reduction object
    size increases relative to input data size, it may not be feasible to
    use cloud bursting")."""
    base = get_profile(app)
    out: dict[int, SimReport] = {}
    for mb in robj_mb:
        profile = AppProfile(
            key=base.key,
            unit_cost_local=base.unit_cost_local,
            cloud_slowdown=base.cloud_slowdown,
            robj_bytes=mb * 1024 * 1024,
            record_bytes=base.record_bytes,
            description=base.description,
        )
        config = env_config(app, env, scale=scale, seed=seed)
        out[mb] = simulate(config, calibration, profile=profile)
    return out
