"""ASCII rendering of the paper's tables and figures, with paper-vs-measured
columns.

Everything returns a string (and the benches print it), so tests can assert
on content without capturing stdout.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..units import fmt_seconds
from .experiments import Figure3Run, Figure4Run, table1_rows, table2_rows
from .paper_values import FIGURE4_SPEEDUPS, table1_row, table2_row

__all__ = [
    "render_table",
    "render_figure3",
    "render_figure4",
    "render_table1",
    "render_table2",
    "render_bar",
]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    sep = "  ".join("-" * w for w in widths)
    out = [line(list(headers)), sep]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_bar(label: str, parts: dict[str, float], unit_per_char: float) -> str:
    """One stacked text bar: ``label |PPPPRRRS| total``."""
    glyphs = {"processing": "P", "retrieval": "R", "sync": "S"}
    bar = "".join(
        glyphs.get(name, "?") * max(0, int(round(value / unit_per_char)))
        for name, value in parts.items()
    )
    total = sum(parts.values())
    return f"{label:>14s} |{bar}| {total:.1f}s"


def render_figure3(run: Figure3Run) -> str:
    """Figure 3 for one app: per-env, per-cluster time decomposition."""
    headers = (
        "env", "cluster", "cores",
        "processing", "retrieval", "sync", "total",
        "slowdown", "ratio",
    )
    rows = []
    for env, report in run.reports.items():
        slowdown = run.slowdown_seconds(env)
        ratio = run.slowdown_ratio(env) * 100.0
        for cluster in report.clusters.values():
            rows.append(
                (
                    env,
                    cluster.site,
                    cluster.cores,
                    fmt_seconds(cluster.mean_processing),
                    fmt_seconds(cluster.mean_retrieval),
                    fmt_seconds(cluster.sync),
                    fmt_seconds(cluster.total),
                    fmt_seconds(slowdown) if env != "env-local" else "-",
                    f"{ratio:.1f}%" if env != "env-local" else "-",
                )
            )
    title = f"Figure 3 ({run.app}): execution time decomposition"
    return title + "\n" + render_table(headers, rows)


def render_figure4(run: Figure4Run) -> str:
    """Figure 4 for one app: ladder makespans + speedups vs paper."""
    headers = ("cores", "makespan", "speedup", "paper speedup")
    paper = FIGURE4_SPEEDUPS.get(run.app, ())
    speedups = run.speedups()
    rows = []
    names = [f"({m},{m})" for m in run.ladder]
    for i, name in enumerate(names):
        measured = f"{speedups[i - 1]:.1f}%" if i > 0 else "-"
        expected = f"{paper[i - 1]:.1f}%" if i > 0 and i - 1 < len(paper) else "-"
        rows.append(
            (name, fmt_seconds(run.reports[name].makespan), measured, expected)
        )
    title = f"Figure 4 ({run.app}): scalability (all data in S3)"
    return title + "\n" + render_table(headers, rows)


def render_table1(runs: dict[str, Figure3Run]) -> str:
    """Table I with measured and paper columns side by side."""
    headers = (
        "app", "env",
        "EC2 jobs", "paper", "local jobs", "paper", "stolen", "paper",
    )
    rows = []
    for app, run in runs.items():
        for measured in table1_rows(run):
            paper = table1_row(app, measured["env"])
            rows.append(
                (
                    app,
                    measured["env"],
                    measured["ec2_jobs"],
                    paper.ec2_jobs,
                    measured["local_jobs"],
                    paper.local_jobs,
                    measured["stolen"],
                    paper.stolen,
                )
            )
    return "Table I: job assignment per application\n" + render_table(headers, rows)


def render_table2(runs: dict[str, Figure3Run]) -> str:
    """Table II with measured and paper columns side by side."""
    headers = (
        "app", "env",
        "glob.red.", "paper",
        "idle(local)", "paper", "idle(EC2)", "paper",
        "slowdown", "paper",
    )
    rows = []
    for app, run in runs.items():
        for measured in table2_rows(run):
            paper = table2_row(app, measured["env"])
            rows.append(
                (
                    app,
                    measured["env"],
                    fmt_seconds(measured["global_reduction"]),
                    fmt_seconds(paper.global_reduction),
                    fmt_seconds(measured["idle_local"]),
                    fmt_seconds(paper.idle_local),
                    fmt_seconds(measured["idle_ec2"]),
                    fmt_seconds(paper.idle_ec2),
                    fmt_seconds(measured["total_slowdown"]),
                    fmt_seconds(paper.total_slowdown),
                )
            )
    return (
        "Table II: slowdowns with respect to data distribution (seconds)\n"
        + render_table(headers, rows)
    )
