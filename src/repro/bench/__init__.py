"""Benchmark harness: the paper's configurations, experiment runners, and
paper-vs-measured reporting."""

from .configs import (
    ENV_NAMES,
    HYBRID_ENVS,
    SCALABILITY_LADDER,
    env_config,
    figure3_configs,
    figure4_configs,
    paper_dataset,
)
from .experiments import (
    Figure3Run,
    Figure4Run,
    mean_hybrid_slowdown,
    run_figure3,
    run_figure4,
    run_retrieval_ablation,
    run_robj_ablation,
    run_scheduling_ablation,
    table1_rows,
    table2_rows,
)
from .paper_values import FIGURE4_SPEEDUPS, HEADLINE, TABLE1, TABLE2
from .reporting import (
    render_figure3,
    render_figure4,
    render_table,
    render_table1,
    render_table2,
)

__all__ = [
    "ENV_NAMES",
    "HYBRID_ENVS",
    "SCALABILITY_LADDER",
    "env_config",
    "figure3_configs",
    "figure4_configs",
    "paper_dataset",
    "Figure3Run",
    "Figure4Run",
    "mean_hybrid_slowdown",
    "run_figure3",
    "run_figure4",
    "run_retrieval_ablation",
    "run_robj_ablation",
    "run_scheduling_ablation",
    "table1_rows",
    "table2_rows",
    "FIGURE4_SPEEDUPS",
    "HEADLINE",
    "TABLE1",
    "TABLE2",
    "render_figure3",
    "render_figure4",
    "render_table",
    "render_table1",
    "render_table2",
]
