"""Numbers transcribed from the paper, for paper-vs-measured reporting.

Sources:

* Table I — jobs processed per cluster and stolen jobs;
* Table II — global reduction, idle time, total slowdown (seconds);
* Figure 4 — speedup percentages printed on the plots;
* Section IV text — headline averages (15.55% mean hybrid slowdown, 81%
  mean speedup per core-doubling) and per-app slowdown ratios.

Figure 3's absolute bar heights are not tabulated in the paper; the
comparisons against Figure 3 use Table II's slowdown seconds and the
ratios quoted in the text instead.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TABLE1",
    "TABLE2",
    "FIGURE4_SPEEDUPS",
    "HEADLINE",
    "Table1Row",
    "Table2Row",
]


@dataclass(frozen=True)
class Table1Row:
    app: str
    env: str
    ec2_jobs: int
    local_jobs: int
    stolen: int  # jobs the local cluster stole from S3


@dataclass(frozen=True)
class Table2Row:
    app: str
    env: str
    global_reduction: float  # seconds
    idle_local: float
    idle_ec2: float
    total_slowdown: float  # seconds vs env-local


TABLE1: tuple[Table1Row, ...] = (
    Table1Row("knn", "env-50/50", 480, 480, 0),
    Table1Row("knn", "env-33/67", 576, 384, 64),
    Table1Row("knn", "env-17/83", 672, 288, 128),
    Table1Row("kmeans", "env-50/50", 480, 480, 0),
    Table1Row("kmeans", "env-33/67", 512, 448, 128),
    Table1Row("kmeans", "env-17/83", 544, 416, 256),
    Table1Row("pagerank", "env-50/50", 480, 480, 0),
    Table1Row("pagerank", "env-33/67", 528, 432, 112),
    Table1Row("pagerank", "env-17/83", 560, 400, 240),
)

TABLE2: tuple[Table2Row, ...] = (
    Table2Row("knn", "env-50/50", 0.072, 16.212, 0.0, 6.546),
    Table2Row("knn", "env-33/67", 0.076, 0.0, 10.556, 34.224),
    Table2Row("knn", "env-17/83", 0.076, 0.0, 15.743, 96.067),
    Table2Row("kmeans", "env-50/50", 0.067, 0.0, 93.871, 20.430),
    Table2Row("kmeans", "env-33/67", 0.066, 0.0, 31.232, 142.403),
    Table2Row("kmeans", "env-17/83", 0.066, 0.0, 25.101, 243.312),
    Table2Row("pagerank", "env-50/50", 36.589, 0.0, 17.727, 72.919),
    Table2Row("pagerank", "env-33/67", 41.320, 0.0, 22.005, 131.321),
    Table2Row("pagerank", "env-17/83", 42.498, 0.0, 52.056, 214.549),
)

#: Figure 4 speedups per doubling, in ladder order (4,4)->(8,8)->(16,16)->(32,32).
FIGURE4_SPEEDUPS: dict[str, tuple[float, float, float]] = {
    "knn": (82.4, 89.3, 73.3),
    "kmeans": (86.7, 86.3, 88.3),
    "pagerank": (85.8, 73.2, 66.4),
}

#: Headline claims from the abstract and Section IV.
HEADLINE = {
    "mean_hybrid_slowdown_pct": 15.55,
    "mean_speedup_per_doubling_pct": 81.0,
    "knn_slowdown_ratio_pct": (1.7, 15.4, 45.9),
    "kmeans_worst_slowdown_ratio_pct": 10.4,
    "pagerank_slowdown_ratio_pct": (10.5, 16.4, 30.8),
}


def table1_row(app: str, env: str) -> Table1Row:
    for row in TABLE1:
        if row.app == app and row.env == env:
            return row
    raise KeyError(f"no Table I row for {app}/{env}")


def table2_row(app: str, env: str) -> Table2Row:
    for row in TABLE2:
        if row.app == app and row.env == env:
            return row
    raise KeyError(f"no Table II row for {app}/{env}")
