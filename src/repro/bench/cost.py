"""Pay-as-you-go cost accounting for cloud-bursting runs.

The paper motivates cloud bursting economically — avoid over-provisioning
base resources, pay the cloud only for peaks — but reports no dollar
figures. This module closes that loop: given an experiment's
:class:`~repro.sim.metrics.SimReport`, it prices the run under a
2011-era AWS tariff (the era of the paper's evaluation):

* EC2 ``m1.large``: $0.34/hour for a 2-core instance, billed per
  instance-hour (partial hours round up, as EC2 did until 2017);
* S3 egress to the internet (stolen chunks fetched by the campus cluster,
  and the reduction object pushed from EC2 to the campus head): $0.150/GB;
* S3 -> EC2 transfer: free (the in-AWS path — the asymmetry Palankar et
  al. highlighted and the paper exploits);
* S3 GET requests: $0.01 per 10,000.

The campus cluster is priced at an amortized rate per core-hour so that
"centralized local" is not artificially free — the default $0.03/core-hour
approximates hardware+power amortization of a 2011 commodity cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..apps.base import get_profile
from ..config import CLOUD_SITE, LOCAL_SITE, ExperimentConfig
from ..errors import ConfigurationError
from ..sim.metrics import SimReport
from ..units import GB

__all__ = ["PricingModel", "CostBreakdown", "price_run", "AWS_2011"]


@dataclass(frozen=True)
class PricingModel:
    """Tariff knobs, all in dollars."""

    ec2_instance_hour: float = 0.34  # m1.large on-demand, 2011
    ec2_cores_per_instance: int = 2
    s3_egress_per_gb: float = 0.150
    s3_get_per_10k: float = 0.01
    local_core_hour: float = 0.03  # amortized campus cost

    def __post_init__(self) -> None:
        for field_name in (
            "ec2_instance_hour",
            "s3_egress_per_gb",
            "s3_get_per_10k",
            "local_core_hour",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} cannot be negative")
        if self.ec2_cores_per_instance <= 0:
            raise ConfigurationError("ec2_cores_per_instance must be positive")


#: The tariff in force around the paper's evaluation (mid-2011, us-east-1).
AWS_2011 = PricingModel()


@dataclass(frozen=True)
class CostBreakdown:
    """Dollars per run, by line item."""

    ec2_compute: float
    s3_egress: float
    s3_requests: float
    local_compute: float

    @property
    def cloud_total(self) -> float:
        """The marginal bill from the cloud provider."""
        return self.ec2_compute + self.s3_egress + self.s3_requests

    @property
    def total(self) -> float:
        return self.cloud_total + self.local_compute

    def render(self) -> str:
        return (
            f"EC2 ${self.ec2_compute:.2f} + egress ${self.s3_egress:.2f} + "
            f"requests ${self.s3_requests:.2f} + local ${self.local_compute:.2f} "
            f"= ${self.total:.2f}"
        )


def _egress_bytes(config: ExperimentConfig, report: SimReport) -> int:
    """Bytes leaving AWS: chunks the campus cluster stole from S3 plus the
    EC2 cluster's reduction object (when the run spans both sites)."""
    out = 0
    for cluster in report.clusters.values():
        if cluster.site == LOCAL_SITE:
            out += cluster.jobs_stolen * config.dataset.chunk_bytes
    if len(report.clusters) > 1:
        out += get_profile(config.app).robj_bytes
    return out


def _s3_requests(config: ExperimentConfig, report: SimReport) -> int:
    """GET count: every S3-hosted chunk is fetched with one ranged GET per
    retrieval connection."""
    connections = config.tuning.retrieval_threads
    gets = 0
    for cluster in report.clusters.values():
        if cluster.site == CLOUD_SITE:
            # Non-stolen cloud jobs come from S3; stolen ones from campus.
            gets += (cluster.jobs_processed - cluster.jobs_stolen) * connections
        else:
            gets += cluster.jobs_stolen * connections
    return gets


def price_run(
    config: ExperimentConfig,
    report: SimReport,
    pricing: PricingModel = AWS_2011,
) -> CostBreakdown:
    """Price one simulated run under ``pricing``."""
    hours = report.makespan / 3600.0
    cloud_cores = config.compute.cloud_cores
    instances = math.ceil(cloud_cores / pricing.ec2_cores_per_instance)
    billed_hours = math.ceil(hours) if cloud_cores else 0
    ec2 = instances * billed_hours * pricing.ec2_instance_hour

    egress_gb = _egress_bytes(config, report) / GB
    egress = egress_gb * pricing.s3_egress_per_gb

    requests = _s3_requests(config, report) / 10_000 * pricing.s3_get_per_10k

    local = config.compute.local_cores * hours * pricing.local_core_hour
    return CostBreakdown(
        ec2_compute=ec2,
        s3_egress=egress,
        s3_requests=requests,
        local_compute=local,
    )
