"""Synthetic dataset generators.

The paper's datasets (120 GB of points, edges, and documents) are not
available; these generators produce statistically-shaped substitutes at any
size, deterministic per seed:

* :func:`gaussian_points` — a Gaussian-mixture point cloud (kmeans, knn);
* :func:`powerlaw_edges` — a Zipf-destination web graph (pagerank; real web
  graphs have power-law in-degree, which is what makes the pagerank
  reduction object dense and large);
* :func:`zipf_tokens` — Zipf-distributed token ids (wordcount);
* :func:`mixture_values` — bimodal float samples (histogram).

All generators yield fixed-size blocks so datasets far larger than memory
can be streamed straight into the storage layer.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import DataFormatError

__all__ = [
    "gaussian_points",
    "labeled_gaussian_points",
    "powerlaw_edges",
    "zipf_tokens",
    "mixture_values",
    "stream_blocks",
]


def _check_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise DataFormatError(f"{name} must be positive, got {value}")


def gaussian_points(
    n: int,
    dims: int,
    *,
    centers: int = 8,
    spread: float = 0.15,
    seed: int = 2011,
) -> np.ndarray:
    """``n`` float32 points drawn around ``centers`` random centroids.

    The centroids are uniform in the unit cube; cluster membership is
    uniform. ``spread`` is the per-axis standard deviation around a center.
    """
    _check_positive(n=n, dims=dims, centers=centers)
    rng = np.random.default_rng(seed)
    mus = rng.uniform(0.0, 1.0, size=(centers, dims))
    labels = rng.integers(0, centers, size=n)
    pts = mus[labels] + rng.normal(0.0, spread, size=(n, dims))
    return pts.astype(np.float32)


def labeled_gaussian_points(
    n: int,
    dims: int,
    *,
    centers: int = 8,
    spread: float = 0.15,
    seed: int = 2011,
    id_offset: int = 0,
) -> np.ndarray:
    """Gaussian points packaged in the ``idpoint`` structured schema.

    Ids are ``id_offset .. id_offset + n - 1``, globally unique when the
    caller offsets per block.
    """
    from .records import idpoint_schema

    pts = gaussian_points(n, dims, centers=centers, spread=spread, seed=seed)
    schema = idpoint_schema(dims)
    out = np.empty(n, dtype=schema.dtype)
    out["id"] = np.arange(id_offset, id_offset + n, dtype=np.int64)
    out["coords"] = pts
    return out


def powerlaw_edges(
    n_edges: int,
    n_pages: int,
    *,
    zipf_a: float = 1.6,
    seed: int = 2011,
) -> np.ndarray:
    """``n_edges`` int32 (src, dst) pairs with Zipf-distributed destinations.

    Sources are uniform (every page links out); destinations follow a
    truncated Zipf, giving the heavy-tailed in-degree of real web graphs.
    The paper's graph is 50M pages / 926M edges; tests use thousands.
    """
    _check_positive(n_edges=n_edges, n_pages=n_pages)
    if zipf_a <= 1.0:
        raise DataFormatError("zipf_a must be > 1")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_pages, size=n_edges, dtype=np.int64)
    # Truncated Zipf via inverse-CDF on a precomputed table: exact, fast,
    # and bounded to [0, n_pages) unlike rng.zipf.
    ranks = np.arange(1, min(n_pages, 100_000) + 1, dtype=np.float64)
    weights = ranks**-zipf_a
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(n_edges)
    dst_rank = np.searchsorted(cdf, u)
    # Map popularity ranks onto page ids via a seeded permutation slice.
    perm = rng.permutation(n_pages)[: len(ranks)]
    dst = perm[dst_rank]
    edges = np.stack([src, dst], axis=1).astype(np.int32)
    return edges


def zipf_tokens(
    n: int,
    vocabulary: int,
    *,
    zipf_a: float = 1.3,
    seed: int = 2011,
) -> np.ndarray:
    """``n`` int32 token ids with a Zipf frequency profile (wordcount)."""
    _check_positive(n=n, vocabulary=vocabulary)
    if zipf_a <= 1.0:
        raise DataFormatError("zipf_a must be > 1")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocabulary + 1, dtype=np.float64)
    weights = ranks**-zipf_a
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    tokens = np.searchsorted(cdf, rng.random(n)).astype(np.int32)
    return tokens.reshape(-1, 1)


def mixture_values(
    n: int,
    *,
    seed: int = 2011,
) -> np.ndarray:
    """``n`` float64 samples from a bimodal Gaussian mixture (histogram)."""
    _check_positive(n=n)
    rng = np.random.default_rng(seed)
    which = rng.random(n) < 0.7
    vals = np.where(
        which,
        rng.normal(0.3, 0.08, size=n),
        rng.normal(0.75, 0.05, size=n),
    )
    return vals.reshape(-1, 1)


def stream_blocks(
    total_units: int,
    block_units: int,
    make_block,
) -> Iterator[np.ndarray]:
    """Drive a block generator: calls ``make_block(start, count, block_index)``.

    Yields arrays totalling exactly ``total_units`` units without ever
    materializing the full dataset — how the dataset writer streams
    many-GB files.
    """
    _check_positive(total_units=total_units, block_units=block_units)
    start = 0
    index = 0
    while start < total_units:
        count = min(block_units, total_units - start)
        block = make_block(start, count, index)
        if len(block) != count:
            raise DataFormatError(
                f"block generator returned {len(block)} units, expected {count}"
            )
        yield block
        start += count
        index += 1
