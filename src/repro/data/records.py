"""Record schemas: the binary layout of data units.

A *data unit* (Section III-B) is the smallest atomically-processable
element. Each application fixes a record schema; chunks are whole numbers
of records, so decode is a zero-copy ``np.frombuffer`` view plus reshape.

Schemas provided:

* ``point32`` — ``d`` float32 features (kmeans);
* ``idpoint32`` — int64 id + ``d`` float32 features (knn reference points);
* ``edge`` — int32 source, int32 destination (pagerank);
* ``token`` — one int32 token id (wordcount);
* ``value64`` — one float64 sample (histogram).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataFormatError

__all__ = [
    "RecordSchema",
    "point_schema",
    "idpoint_schema",
    "EDGE_SCHEMA",
    "TOKEN_SCHEMA",
    "VALUE_SCHEMA",
]


@dataclass(frozen=True)
class RecordSchema:
    """A fixed-size binary record layout.

    ``dtype`` is the per-record NumPy dtype; ``columns`` is the logical
    second-axis width when records decode to a 2-D array (0 means the
    decode result stays 1-D / structured).
    """

    name: str
    dtype: np.dtype
    columns: int = 0

    def __post_init__(self) -> None:
        if self.dtype.itemsize <= 0:
            raise DataFormatError(f"schema {self.name!r} has empty dtype")

    @property
    def record_bytes(self) -> int:
        size = self.dtype.itemsize
        return size * self.columns if self.columns else size

    def encode(self, units: np.ndarray) -> bytes:
        """Serialize a unit array produced by a generator."""
        arr = np.ascontiguousarray(units, dtype=self.dtype)
        if self.columns and (arr.ndim != 2 or arr.shape[1] != self.columns):
            raise DataFormatError(
                f"schema {self.name!r} expects shape (n, {self.columns}), "
                f"got {arr.shape}"
            )
        return arr.tobytes()

    def decode(self, raw: "bytes | bytearray | memoryview") -> np.ndarray:
        """Deserialize chunk bytes into a unit array — always a view.

        ``raw`` may be ``bytes`` or any buffer (``memoryview`` slice of a
        fetched blob, ``multiprocessing.shared_memory`` buffer): no byte is
        copied either way. The result is explicitly **read-only** even when
        the backing buffer is writable, so an application kernel that
        mutates its input units in place fails loudly (``ValueError``)
        instead of silently corrupting every other view of the chunk.
        """
        nbytes = raw.nbytes if isinstance(raw, memoryview) else len(raw)
        if nbytes % self.record_bytes != 0:
            raise DataFormatError(
                f"chunk of {nbytes} bytes is not a whole number of "
                f"{self.record_bytes}-byte {self.name!r} records"
            )
        arr = np.frombuffer(raw, dtype=self.dtype)
        arr.flags.writeable = False
        if self.columns:
            arr = arr.reshape(-1, self.columns)
        return arr

    def units_in(self, nbytes: int) -> int:
        if nbytes % self.record_bytes != 0:
            raise DataFormatError(
                f"{nbytes} bytes is not a whole number of {self.name!r} records"
            )
        return nbytes // self.record_bytes


def point_schema(dims: int) -> RecordSchema:
    """``dims`` float32 features per record (kmeans points)."""
    if dims <= 0:
        raise DataFormatError("point schema needs at least one dimension")
    return RecordSchema(name=f"point32x{dims}", dtype=np.dtype(np.float32), columns=dims)


def idpoint_schema(dims: int) -> RecordSchema:
    """int64 id + ``dims`` float32 features (knn reference points).

    Stored as a structured dtype so ids and coordinates live in one record.
    """
    if dims <= 0:
        raise DataFormatError("idpoint schema needs at least one dimension")
    dtype = np.dtype([("id", np.int64), ("coords", np.float32, (dims,))])
    return RecordSchema(name=f"idpoint32x{dims}", dtype=dtype, columns=0)


#: int32 (src, dst) adjacency pairs — pagerank's edge list.
EDGE_SCHEMA = RecordSchema(name="edge", dtype=np.dtype(np.int32), columns=2)

#: one int32 token id per record — wordcount.
TOKEN_SCHEMA = RecordSchema(name="token", dtype=np.dtype(np.int32), columns=1)

#: one float64 sample per record — histogram.
VALUE_SCHEMA = RecordSchema(name="value64", dtype=np.dtype(np.float64), columns=1)
