"""Chunk and unit-group arithmetic.

The three-granularity organization (Section III-B) needs two partitions to
be exact: a file is a whole number of chunks, and a chunk's units are
covered exactly once by its cache-sized unit groups. The helpers here do
that arithmetic in one place; property tests pin the exact-cover invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import DataFormatError

__all__ = [
    "ChunkSlice",
    "readonly_view",
    "iter_chunk_slices",
    "iter_group_slices",
    "groups_in_chunk",
]


def readonly_view(buf: "bytes | bytearray | memoryview") -> memoryview:
    """Expose any bytes-like buffer as a read-only ``memoryview``.

    This is the zero-copy slicing primitive of the data path: slicing the
    returned view (``view[offset:offset + nbytes]``) aliases the backing
    buffer instead of copying it the way ``bytes`` slicing does, and the
    read-only flag propagates into :meth:`~repro.data.records.RecordSchema.
    decode`'s ``np.frombuffer`` result. The underlying buffer stays alive
    for as long as any view (or decoded array) references it — eviction
    from a cache only drops the cache's own reference.
    """
    view = buf if isinstance(buf, memoryview) else memoryview(buf)
    return view.toreadonly()


@dataclass(frozen=True)
class ChunkSlice:
    """A chunk's byte range within its file."""

    index: int
    offset: int
    nbytes: int


def iter_chunk_slices(file_bytes: int, chunk_bytes: int) -> Iterator[ChunkSlice]:
    """Yield the chunk byte ranges of a file, in order.

    Requires exact division — the dataset builder always pads files to a
    whole number of chunks, and a ragged tail would silently skew job sizes.
    """
    if file_bytes <= 0 or chunk_bytes <= 0:
        raise DataFormatError("file and chunk sizes must be positive")
    if file_bytes % chunk_bytes != 0:
        raise DataFormatError(
            f"file of {file_bytes} B is not a whole number of "
            f"{chunk_bytes}-byte chunks"
        )
    for index in range(file_bytes // chunk_bytes):
        yield ChunkSlice(index=index, offset=index * chunk_bytes, nbytes=chunk_bytes)


def iter_group_slices(num_units: int, units_per_group: int) -> Iterator[slice]:
    """Yield ``slice`` objects covering ``num_units`` in cache-sized groups.

    The final group may be short; every unit is covered exactly once.
    """
    if num_units < 0:
        raise DataFormatError("unit count cannot be negative")
    if units_per_group <= 0:
        raise DataFormatError("units_per_group must be positive")
    for start in range(0, num_units, units_per_group):
        yield slice(start, min(start + units_per_group, num_units))


def groups_in_chunk(num_units: int, units_per_group: int) -> int:
    """Number of local-reduction invocations one chunk produces."""
    if units_per_group <= 0:
        raise DataFormatError("units_per_group must be positive")
    if num_units < 0:
        raise DataFormatError("unit count cannot be negative")
    return -(-num_units // units_per_group)
