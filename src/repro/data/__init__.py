"""Data-organization substrate: record schemas, synthetic generators, and
the files -> chunks -> units machinery of Section III-B."""

from .chunks import ChunkSlice, groups_in_chunk, iter_chunk_slices, iter_group_slices
from .dataset import BlockFn, DatasetReader, build_dataset
from .generators import (
    gaussian_points,
    labeled_gaussian_points,
    mixture_values,
    powerlaw_edges,
    stream_blocks,
    zipf_tokens,
)
from .records import (
    EDGE_SCHEMA,
    TOKEN_SCHEMA,
    VALUE_SCHEMA,
    RecordSchema,
    idpoint_schema,
    point_schema,
)

__all__ = [
    "ChunkSlice",
    "groups_in_chunk",
    "iter_chunk_slices",
    "iter_group_slices",
    "BlockFn",
    "DatasetReader",
    "build_dataset",
    "gaussian_points",
    "labeled_gaussian_points",
    "mixture_values",
    "powerlaw_edges",
    "stream_blocks",
    "zipf_tokens",
    "EDGE_SCHEMA",
    "TOKEN_SCHEMA",
    "VALUE_SCHEMA",
    "RecordSchema",
    "idpoint_schema",
    "point_schema",
]
