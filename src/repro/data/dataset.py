"""Dataset builder and reader: materialize bytes into the storage layer.

The builder streams generator blocks into ``num_files`` blobs, splitting
them between the local storage node and the cloud object store according to
a placement, and emits the :class:`~repro.core.index.DataIndex` the head
node consumes. The reader is the slave-side counterpart: given a job and
the index, fetch the chunk's bytes from whichever site hosts it.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

if TYPE_CHECKING:  # import cycle: repro.cache type-checks against us
    from ..cache import ChunkCache

from ..config import CLOUD_SITE, LOCAL_SITE, DatasetSpec, PlacementSpec
from ..core.index import DataIndex, FileEntry
from ..core.job import Job
from ..errors import DataFormatError
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from ..resilience.circuit import CircuitBreaker
from ..resilience.retry import ResilienceStats, RetryPolicy
from ..storage.base import StorageService
from ..storage.retrieval import ChunkRetriever
from .chunks import readonly_view
from .records import RecordSchema

__all__ = ["BlockFn", "build_dataset", "DatasetReader"]

#: ``make_block(global_start_unit, count, block_index) -> np.ndarray``
BlockFn = Callable[[int, int, int], np.ndarray]


def build_dataset(
    spec: DatasetSpec,
    placement: PlacementSpec,
    schema: RecordSchema,
    make_block: BlockFn,
    stores: Mapping[str, StorageService],
    *,
    path_prefix: str = "data/part",
) -> DataIndex:
    """Generate and store a dataset; returns its index.

    ``stores`` maps site name to the storage service for that site. Blocks
    are generated one chunk at a time and streamed, so the peak memory is
    one chunk regardless of dataset size.
    """
    if schema.record_bytes != spec.record_bytes:
        raise DataFormatError(
            f"schema record size {schema.record_bytes} != dataset spec "
            f"record size {spec.record_bytes}"
        )
    local_count = placement.local_files(spec.num_files)
    units_per_chunk = spec.units_per_chunk
    entries: list[FileEntry] = []
    global_unit = 0
    for file_id in range(spec.num_files):
        site = LOCAL_SITE if file_id < local_count else CLOUD_SITE
        if site not in stores:
            raise DataFormatError(f"no storage service supplied for site {site!r}")
        key = f"{path_prefix}-{file_id:05d}.bin"
        crc = 0

        def chunk_parts():
            nonlocal global_unit, crc
            for chunk in range(spec.chunks_per_file):
                block = make_block(global_unit, units_per_chunk, chunk)
                if len(block) != units_per_chunk:
                    raise DataFormatError(
                        f"block generator returned {len(block)} units, "
                        f"expected {units_per_chunk}"
                    )
                global_unit += units_per_chunk
                encoded = schema.encode(block)
                crc = zlib.crc32(encoded, crc)
                yield encoded

        written = stores[site].append_stream(key, chunk_parts())
        if written != spec.file_bytes:
            raise DataFormatError(
                f"file {file_id} wrote {written} B, expected {spec.file_bytes} B"
            )
        entries.append(
            FileEntry(
                file_id=file_id,
                site=site,
                path=key,
                nbytes=spec.file_bytes,
                chunk_bytes=spec.chunk_bytes,
                units_per_chunk=units_per_chunk,
                checksum=crc,
            )
        )
    return DataIndex(files=entries)


@dataclass
class DatasetReader:
    """Slave-side chunk access over a built dataset.

    ``retrieval_threads`` only applies to remote (cross-site) fetches —
    local reads are single sequential ``pread``-style calls, matching the
    paper's "continuous read operation" for local jobs.

    ``trace`` is an optional :class:`repro.obs.events.EventLog`; when set,
    every cross-site fetch lands on the timeline as a ``remote_fetch``
    event (the data-movement cost the paper's scheduler tries to avoid).

    ``retry`` is an optional :class:`~repro.resilience.RetryPolicy`; when
    set, *every* read (remote and local) is issued through a resilient
    :class:`~repro.storage.retrieval.ChunkRetriever` — per-sub-range
    retries with backoff, hedged stragglers, and a per-site
    :class:`~repro.resilience.CircuitBreaker` that degrades a failing
    endpoint from parallel to single-stream reads. The reader-wide
    ``resilience`` stats object accumulates what the machinery did across
    every slave sharing this reader.

    ``cache`` is an optional :class:`~repro.cache.ChunkCache`. When set,
    every *remote* (cross-site) read consults it before touching the
    network and inserts what it fetched, so iterative runs pay for each
    remote chunk once per node instead of once per pass. Local reads
    bypass the cache — the bytes are already a sequential disk read away.
    With ``cache=None`` (the default) the only cost is one ``None`` check.
    """

    index: DataIndex
    stores: Mapping[str, StorageService]
    retrieval_threads: int = 4
    trace: EventLog | None = None
    retry: RetryPolicy | None = None
    metrics: MetricsRegistry | None = None
    breaker_failure_threshold: int = 8
    breaker_recovery_successes: int = 32
    cache: "ChunkCache | None" = None

    def __post_init__(self) -> None:
        self.resilience = ResilienceStats()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._retrievers: dict[tuple[str, int], ChunkRetriever] = {}
        self._lock = threading.Lock()
        #: Cross-site chunk fetches served (cache hits excluded) — a cheap
        #: always-on gauge the live run monitor probes.
        self.remote_fetches = 0
        #: Zero-copy accounting, always on (plain ints, like
        #: ``remote_fetches``): a read counts as *zero-copy* when the bytes
        #: handed to ``decode`` alias an existing buffer (an in-memory
        #: blob's view, or a cached chunk); ``bytes_copied`` sums the bytes
        #: of every read that had to materialize a fresh buffer (remote
        #: multi-range assembly, retrying retrievers, file-backed stores).
        #: The driver folds both into :class:`~repro.runtime.telemetry.
        #: RunTelemetry` and the metrics registry.
        self.zero_copy_reads = 0
        self.bytes_copied = 0
        self._remote_bytes = (
            self.metrics.counter("remote_bytes")
            if self.metrics is not None
            else None
        )

    def breakers(self) -> dict[str, CircuitBreaker]:
        """Per-site circuit breakers created so far (empty without retry)."""
        with self._lock:
            return dict(self._breakers)

    def _retriever(self, site: str, store: StorageService, threads: int) -> ChunkRetriever:
        """One cached retriever per (site, width); breakers are per site so
        the parallel and single-stream paths share failure history."""
        with self._lock:
            retriever = self._retrievers.get((site, threads))
            if retriever is None:
                breaker = None
                if self.retry is not None:
                    breaker = self._breakers.get(site)
                    if breaker is None:
                        breaker = CircuitBreaker(
                            self.breaker_failure_threshold,
                            self.breaker_recovery_successes,
                            name=site,
                            trace=self.trace,
                        )
                        self._breakers[site] = breaker
                retriever = ChunkRetriever(
                    store,
                    threads=threads,
                    policy=self.retry,
                    breaker=breaker,
                    stats=self.resilience,
                    trace=self.trace,
                    metrics=self.metrics,
                )
                self._retrievers[(site, threads)] = retriever
            return retriever

    def _count_zero_copy(self) -> None:
        with self._lock:
            self.zero_copy_reads += 1

    def _count_copied(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_copied += nbytes

    def read_job(self, job: Job, *, from_site: str | None = None) -> memoryview:
        """Fetch the chunk for ``job`` as a read-only buffer view.

        ``from_site`` is the site of the requesting slave; when it differs
        from the job's hosting site the multi-threaded retriever is used.

        The hot path — a same-site read against an in-memory store, or a
        cache hit — returns a view *aliasing* the stored/cached buffer:
        zero bytes are copied between the storage layer and ``decode``.
        Retriever-mediated reads (remote multi-range fetches, any read
        under a retry policy) assemble a fresh buffer; those bytes land in
        ``bytes_copied``.
        """
        entry = self.index.entry(job.file_id)
        store = self.stores.get(entry.site)
        if store is None:
            raise DataFormatError(f"no storage service for site {entry.site!r}")
        remote = from_site is not None and from_site != entry.site
        cache = self.cache if remote else None
        key = None
        if cache is not None:
            key = (entry.site, entry.path, job.offset, job.nbytes)
            cached = cache.get(key, job_id=job.job_id, file_id=job.file_id)
            if cached is not None:
                # Served from memory the cache already owns: zero-copy.
                self._count_zero_copy()
                return readonly_view(cached)
        if remote:
            self.remote_fetches += 1
            if self.trace is not None:
                self.trace.emit(
                    "remote_fetch", job_id=job.job_id, file_id=job.file_id,
                    detail=f"{from_site}<-{entry.site} {job.nbytes}B",
                )
            if self._remote_bytes is not None:
                self._remote_bytes.inc(job.nbytes)
        if remote and self.retrieval_threads > 1:
            retriever = self._retriever(entry.site, store, self.retrieval_threads)
            data = retriever.fetch(
                entry.path, job.offset, job.nbytes,
                job_id=job.job_id, file_id=job.file_id,
            )
            self._count_copied(len(data))
        elif self.retry is not None:
            retriever = self._retriever(entry.site, store, 1)
            data = retriever.fetch(
                entry.path, job.offset, job.nbytes,
                job_id=job.job_id, file_id=job.file_id,
            )
            self._count_copied(len(data))
        else:
            data = store.read_view(entry.path, job.offset, job.nbytes)
            if store.zero_copy_views:
                self._count_zero_copy()
            else:
                self._count_copied(data.nbytes)
        if cache is not None:
            cache.put(key, data, job_id=job.job_id, file_id=job.file_id)
        return readonly_view(data)

    def read_all_chunks(self, *, from_site: str | None = None) -> list[memoryview]:
        """Every chunk in index order — feeds the serial oracle.

        ``from_site`` gives the reads a home site (as :meth:`read_job`
        takes per job) so a serial pass can treat cross-site chunks as
        remote — which is what lets an attached ``cache`` serve them on
        the next pass of an iterative run.
        """
        out: list[memoryview] = []
        for job in self.index.jobs():
            out.append(self.read_job(job, from_site=from_site))
        return out

    def verify_file(self, file_id: int) -> bool:
        """Check a file's bytes against the index's CRC-32.

        Returns ``True`` on match; raises
        :class:`~repro.errors.DataFormatError` on mismatch (corruption or
        tampering) and when the index carries no checksum for the file.
        """
        entry = self.index.entry(file_id)
        if entry.checksum is None:
            raise DataFormatError(
                f"file {file_id} has no checksum recorded in the index"
            )
        store = self.stores.get(entry.site)
        if store is None:
            raise DataFormatError(f"no storage service for site {entry.site!r}")
        crc = 0
        for offset in range(0, entry.nbytes, entry.chunk_bytes):
            crc = zlib.crc32(store.get(entry.path, offset, entry.chunk_bytes), crc)
        if crc != entry.checksum:
            raise DataFormatError(
                f"file {file_id} failed integrity check: stored CRC "
                f"{entry.checksum:#010x}, computed {crc:#010x}"
            )
        return True

    def verify_all(self) -> int:
        """Verify every file; returns the count checked."""
        for entry in self.index.files:
            self.verify_file(entry.file_id)
        return len(self.index.files)
