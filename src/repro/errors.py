"""Exception hierarchy for the cloud-bursting middleware.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers embedding the library can catch one type. Sub-hierarchies mirror the
package layout: configuration, data organization, storage, scheduling,
runtime, and simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment or system configuration is inconsistent or invalid."""


class DataFormatError(ReproError):
    """A dataset file, record, or index could not be parsed or validated."""


class IndexError_(DataFormatError):
    """A data index is malformed or references data that does not exist.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class StorageError(ReproError):
    """A storage service failed to satisfy a read or write request."""


class ObjectNotFoundError(StorageError):
    """The requested key does not exist in the object store."""

    def __init__(self, key: str) -> None:
        super().__init__(f"object not found: {key!r}")
        self.key = key


class TransientStorageError(StorageError):
    """A storage request failed in a way that may succeed on retry.

    Real object stores return 500/503/timeout-class errors under load;
    the :class:`~repro.resilience.FaultInjector` raises this type and the
    :class:`~repro.resilience.RetryPolicy` machinery retries it. Anything
    that is a plain :class:`StorageError` (bad range, missing key) fails
    fast instead.
    """


class PermanentStorageError(StorageError):
    """A storage request that will never succeed, no matter how retried.

    Raised by the fault injector for keys configured as permanently
    failed; the retry layer deliberately does not retry it, so it
    surfaces through the slave-failure / re-execution recovery path.
    """


class SchedulingError(ReproError):
    """The scheduler was asked to do something inconsistent.

    Examples: assigning a job that was already assigned, or registering the
    same cluster twice.
    """


class RuntimeProtocolError(ReproError):
    """A runtime component received a message that violates the protocol."""


class RuntimeTimeoutError(RuntimeProtocolError):
    """A runtime component did not finish within its join timeout.

    Raised by the driver with a message naming the timeout and which
    masters/slaves were still alive — a hung run should say who hung.
    """


class WorkerFailure(ReproError):
    """A slave worker 'crashed' (raised by fault-injection hooks).

    The middleware recovers by re-executing every job the dead worker had
    processed — its private reduction object dies with it, so completed
    work must be redone, exactly as in the FREERIDE recovery model.
    """


class SpotRevocation(WorkerFailure):
    """A simulated spot/transient cloud instance was reclaimed mid-job.

    Raised by the :class:`~repro.scale.SpotRevoker` fault hook. It is a
    :class:`WorkerFailure`, so recovery rides the exact same master
    re-execution path as any crash: the victim's jobs are requeued and
    the final reduction stays bit-identical. The separate type lets the
    master account revocations apart from genuine failures.
    """


class ReductionError(ReproError):
    """A reduction object could not be merged or serialized."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CalibrationError(SimulationError):
    """A calibration parameter set is missing or invalid."""


class TraceError(SimulationError):
    """A trace event stream is malformed or an analysis was misused.

    Shared by both substrates; subclasses :class:`SimulationError` because
    the trace toolkit grew out of the simulator and existing callers catch
    that type.
    """


class ObservabilityError(ReproError):
    """A metrics instrument was registered or used inconsistently."""


class ServiceError(ReproError):
    """The multi-run job service was used inconsistently.

    Examples: submitting to a service that is already draining, or
    operating a handle whose service has been shut down.
    """


class AdmissionError(ServiceError):
    """A submission was rejected at the admission gate.

    Raised when a tenant is over its pending quota or the service is at
    global capacity; the message names the limit so callers can back off
    or resubmit with different placement.
    """


class RunCancelledError(ServiceError):
    """The run behind a handle was cancelled before it produced a result.

    Raised by ``RunHandle.result()``; ``handle.status()`` stays usable
    and reports ``CANCELLED``.
    """


class ServiceTimeoutError(ServiceError):
    """A ``RunHandle.result(timeout=...)`` deadline elapsed.

    The run keeps executing — the timeout abandons the wait, not the
    work; call ``result()`` again or ``cancel()`` to stop it.
    """
