"""Chunk caching and prefetching for iterative workloads.

The paper's slaves hide remote-read latency with multiple retrieval
threads (Section III-B); iterative applications (kmeans, pagerank) still
re-download every remote chunk on every pass. This package removes both
costs:

* :class:`ChunkCache` — a size-bounded, thread-safe LRU over remote chunk
  bytes, consulted by :class:`~repro.data.dataset.DatasetReader` before
  the multi-threaded :class:`~repro.storage.retrieval.ChunkRetriever`, so
  a cross-site chunk is paid for once per node instead of once per
  iteration (the locality-aware caching the MATE-EC2 line of follow-ups
  applies to the same problem);
* :class:`Prefetcher` — a per-slave pipeline stage that acquires job
  *N+1* from the master and fetches its chunk while the reduction runs
  over job *N*'s units, overlapping retrieval with compute.

Both are off by default and cost nothing when disabled — the runtime
constructs none of this machinery unless asked, mirroring the
``policy=None`` fast path in :class:`~repro.storage.retrieval.ChunkRetriever`.
"""

from .chunkcache import CacheStats, ChunkCache
from .prefetch import Prefetcher

__all__ = ["CacheStats", "ChunkCache", "Prefetcher"]
