"""Double-buffered job prefetch for slave workers.

Without prefetch a slave is strictly sequential: request a job, fetch its
chunk, compute, repeat — retrieval and compute never overlap. A
:class:`Prefetcher` turns that into a two-stage pipeline. Its background
thread owns the slave's *next* job: it runs the caller's ``acquire``
closure (post a ``SlaveJobRequest``, wait for the master's reply), then
the ``fetch`` closure (cache first, then the multi-threaded retriever),
and parks the ``(job, bytes)`` pair until the owner asks for it. The
owning slave thread computes job *N* while the prefetcher acquires and
fetches job *N+1* — the overlap of "multiple retrieval threads" with
compute that Section III-B intends.

Ordering matters for liveness: the owner issues :meth:`request` *before*
computing, and the master answers a request parked on an empty pool only
once the in-flight job count hits zero — which happens exactly when the
owner posts its ``SlaveJobDone``. So the pipeline drains itself: the final
request parks, the final ``done`` releases it with ``None``, and the owner
exits its loop. Fault tolerance holds because every job the prefetcher is
handed is recorded against the slave in the master's re-execution ledger,
and the master cancels parked requests from a slave it has seen fail.

The class is deliberately transport-agnostic (two closures in, a queue
out) so the cache layer does not depend on the runtime's message types.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable

from ..errors import RuntimeProtocolError
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry

__all__ = ["Prefetcher"]


class Prefetcher:
    """One background acquisition-and-fetch stage per slave worker.

    ``acquire()`` blocks until the master hands out the next job (or
    ``None`` when the run is over); ``fetch(job)`` returns the job's chunk
    bytes. Both run on the background thread; any exception they raise is
    re-delivered to the owner's next :meth:`take`, exactly as the
    synchronous path would have surfaced it.
    """

    def __init__(
        self,
        acquire: Callable[[], Any],
        fetch: Callable[[Any], bytes],
        *,
        cluster: str = "",
        worker: int = -1,
        trace: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._acquire = acquire
        self._fetch = fetch
        self.cluster = cluster
        self.worker = worker
        self.trace = trace
        #: Jobs whose bytes were fetched ahead of the owner asking.
        self.prefetches = 0
        self._counter = metrics.counter("prefetches") if metrics else None
        self._commands: "queue.SimpleQueue[bool | None]" = queue.SimpleQueue()
        self._results: "queue.SimpleQueue[tuple[Any, bytes | None, BaseException | None]]"
        self._results = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._loop, daemon=True,
            name=f"prefetch:{cluster}:{worker}",
        )
        self._thread.start()

    def request(self) -> None:
        """Start acquiring (and fetching) the owner's next job."""
        self._commands.put(True)

    def take(self, timeout: float | None = None) -> tuple[Any, bytes | None]:
        """Block until the requested ``(job, bytes)`` pair is ready.

        ``job`` is ``None`` when the master reported the run over. A
        failure raised in the background re-raises here, on the owner's
        thread.
        """
        try:
            job, raw, error = self._results.get(timeout=timeout)
        except queue.Empty:
            raise RuntimeProtocolError(
                f"prefetcher for worker {self.worker}: no job within "
                f"{timeout}s"
            ) from None
        if error is not None:
            raise error
        return job, raw

    def close(self) -> None:
        """Stop the background thread (after any stage in flight finishes)."""
        self._commands.put(None)

    # -- background stage ---------------------------------------------------

    def _loop(self) -> None:
        while True:
            command = self._commands.get()
            if command is None:
                return
            try:
                job = self._acquire()
            except BaseException as exc:
                self._results.put((None, None, exc))
                continue
            if job is None:
                self._results.put((None, None, None))
                continue
            self.prefetches += 1
            if self._counter is not None:
                self._counter.inc()
            trace = self.trace
            if trace is not None:
                trace.emit(
                    "prefetch", cluster=self.cluster, worker=self.worker,
                    job_id=job.job_id, file_id=job.file_id,
                    detail=f"{job.nbytes}B ahead of compute",
                )
                trace.emit(
                    "fetch_start", cluster=self.cluster, worker=self.worker,
                    job_id=job.job_id, file_id=job.file_id,
                )
            try:
                raw = self._fetch(job)
            except BaseException as exc:
                self._results.put((job, None, exc))
                continue
            if trace is not None:
                trace.emit(
                    "fetch_end", cluster=self.cluster, worker=self.worker,
                    job_id=job.job_id, file_id=job.file_id,
                )
            self._results.put((job, raw, None))
