"""Byte-budgeted, thread-safe LRU cache for chunk bytes.

One :class:`ChunkCache` serves one node: every slave thread on the node
shares it (they already share one :class:`~repro.data.dataset.DatasetReader`),
so the budget bounds the node's cache memory regardless of core count.
Keys are whatever identifies a chunk to the caller — the reader keys by
``(site, path, offset, nbytes)``; the simulator models the same cache
with ``(file_id, chunk_index)`` keys and explicit sizes.

Accounting is exact: ``stats.hits + stats.misses`` equals the number of
``get`` calls, ``bytes_used`` never exceeds ``capacity_bytes`` (an entry
larger than the whole budget is rejected, not admitted), and
``bytes_saved`` accumulates the bytes served from cache instead of the
network — the number the ``bytes_saved`` gauge and
:class:`~repro.runtime.telemetry.RunTelemetry` surface.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..errors import ConfigurationError
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry

__all__ = ["CacheStats", "ChunkCache"]


@dataclass
class CacheStats:
    """Hit/miss/evict accounting, mutated under the owning cache's lock."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0
    rejected: int = 0
    bytes_saved: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "insertions": self.insertions,
            "rejected": self.rejected,
            "bytes_saved": self.bytes_saved,
        }


@dataclass
class _Entry:
    value: Any
    nbytes: int


class ChunkCache:
    """Size-bounded LRU keyed by chunk identity.

    ``trace``/``metrics`` are the usual optional observability hooks:
    hits, misses and evictions land on the event timeline
    (``cache_hit``/``cache_miss``/``cache_evict``) and in the metrics
    registry (counters plus the ``bytes_saved`` and ``cache_bytes``
    gauges). Both default to off and cost one ``None`` check.
    """

    def __init__(
        self,
        capacity_bytes: int,
        *,
        trace: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self.trace = trace
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._hit_counter = metrics.counter("cache_hits") if metrics else None
        self._miss_counter = metrics.counter("cache_misses") if metrics else None
        self._evict_counter = (
            metrics.counter("cache_evictions") if metrics else None
        )
        self._saved_gauge = metrics.gauge("bytes_saved") if metrics else None
        self._bytes_gauge = metrics.gauge("cache_bytes") if metrics else None

    # -- introspection ------------------------------------------------------

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    # -- the cache ----------------------------------------------------------

    def get(
        self, key: Hashable, *, job_id: int = -1, file_id: int = -1
    ) -> Any | None:
        """Return the cached value (refreshing recency), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                saved = None
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                self.stats.bytes_saved += entry.nbytes
                saved = self.stats.bytes_saved
        if entry is None:
            if self._miss_counter is not None:
                self._miss_counter.inc()
            if self.trace is not None:
                self.trace.emit("cache_miss", job_id=job_id, file_id=file_id)
            return None
        if self._hit_counter is not None:
            self._hit_counter.inc()
        if self._saved_gauge is not None:
            self._saved_gauge.set(saved)
        if self.trace is not None:
            self.trace.emit(
                "cache_hit", job_id=job_id, file_id=file_id,
                detail=f"{entry.nbytes}B",
            )
        return entry.value

    def put(
        self,
        key: Hashable,
        value: Any,
        nbytes: int | None = None,
        *,
        job_id: int = -1,
        file_id: int = -1,
    ) -> int:
        """Insert ``value`` under ``key``; returns the number of evictions.

        ``nbytes`` defaults to the value's buffer size (``.nbytes`` for
        memoryviews, ``len`` otherwise). A value larger than the entire
        budget is rejected (counted in ``stats.rejected``) rather than
        evicting the whole cache for a single un-reusable entry.

        Entries may be buffers that decoded chunk views alias. Eviction
        only drops the cache's reference: any outstanding view (or NumPy
        array decoded over one) keeps the backing buffer alive, so
        zero-copy readers never observe a use-after-evict.
        """
        if nbytes is None:
            nbytes = value.nbytes if isinstance(value, memoryview) else len(value)
        if nbytes < 0:
            raise ConfigurationError(f"negative entry size {nbytes}")
        evicted = 0
        with self._lock:
            if nbytes > self.capacity_bytes:
                self.stats.rejected += 1
                return 0
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            while self._bytes + nbytes > self.capacity_bytes:
                _, victim = self._entries.popitem(last=False)
                self._bytes -= victim.nbytes
                evicted += 1
            self._entries[key] = _Entry(value, nbytes)
            self._bytes += nbytes
            self.stats.insertions += 1
            self.stats.evictions += evicted
            used = self._bytes
        if self._bytes_gauge is not None:
            self._bytes_gauge.set(used)
        if evicted:
            if self._evict_counter is not None:
                self._evict_counter.inc(evicted)
            if self.trace is not None:
                self.trace.emit(
                    "cache_evict", job_id=job_id, file_id=file_id,
                    detail=f"{evicted} entries for {nbytes}B",
                )
        return evicted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
        if self._bytes_gauge is not None:
            self._bytes_gauge.set(0)
