"""EC2 performance-variability model.

Section IV-B: "the virtualized environment of EC2 can occasionally cause
variability in performance, which exacerbates overheads. Our pooling based
load balancing system and long running nature of the target applications
help normalizing these unpredictable performance changes."

We model per-(worker, job) multiplicative jitter on compute time: lognormal
with median 1, seeded per worker so runs are reproducible. The local
cluster gets a much smaller sigma (bare-metal variation exists but is
slight — it is what produces the intra-cluster sync time the paper sees
even in env-local).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["VariabilityModel", "EC2_VARIABILITY", "LOCAL_VARIABILITY"]


@dataclass(frozen=True)
class VariabilityModel:
    """Lognormal compute-time jitter with median 1.0."""

    sigma: float
    seed: int = 2011

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError("sigma cannot be negative")

    def sampler(self, worker_id: int):
        """A per-worker deterministic stream of multipliers (>= 0)."""
        rng = random.Random((self.seed << 20) ^ worker_id)
        sigma = self.sigma

        def draw() -> float:
            if sigma == 0.0:
                return 1.0
            return math.exp(rng.gauss(0.0, sigma))

        return draw

    def expected_multiplier(self) -> float:
        """Mean of the lognormal (exp(sigma^2/2)) — used by analytic checks."""
        return math.exp(self.sigma**2 / 2.0)


#: Calibrated so per-job compute times on EC2 wander by ~±10-25%.
EC2_VARIABILITY = VariabilityModel(sigma=0.12)

#: Bare-metal nodes still jitter a little (cache, NUMA, OS noise).
LOCAL_VARIABILITY = VariabilityModel(sigma=0.03)
