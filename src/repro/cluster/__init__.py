"""Compute substrate: node and cluster descriptions plus the EC2
performance-variability model."""

from .cluster import ClusterSpec, cloud_cluster, local_cluster
from .node import EC2_M1_LARGE, LOCAL_XEON, NodeSpec
from .variability import EC2_VARIABILITY, LOCAL_VARIABILITY, VariabilityModel

__all__ = [
    "ClusterSpec",
    "cloud_cluster",
    "local_cluster",
    "EC2_M1_LARGE",
    "LOCAL_XEON",
    "NodeSpec",
    "EC2_VARIABILITY",
    "LOCAL_VARIABILITY",
    "VariabilityModel",
]
