"""Compute node description.

The paper's two node types: campus Intel Xeon nodes (8 cores, 6 GB DDR400)
and EC2 ``m1.large`` instances (2 virtual cores, 7.5 GB). Memory bounds the
chunk size a slave can hold; cache size bounds the unit group handed to one
local-reduction call (Section III-B's data organization rationale).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import GB, MB

__all__ = ["NodeSpec", "LOCAL_XEON", "EC2_M1_LARGE"]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one compute node."""

    name: str
    cores: int
    memory_bytes: int
    cache_bytes: int
    #: Relative per-core compute speed; 1.0 is a campus Xeon core. The
    #: paper's EC2 compute units are "equivalent to a 1.7 GHz Xeon", i.e.
    #: slower for compute-bound work — the per-app gap is captured in
    #: AppProfile.cloud_slowdown, so the node-level default stays 1.0.
    core_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("a node needs at least one core")
        if self.memory_bytes <= 0 or self.cache_bytes <= 0:
            raise ConfigurationError("memory and cache sizes must be positive")
        if self.core_speed <= 0:
            raise ConfigurationError("core_speed must be positive")

    def max_chunk_bytes(self, resident_fraction: float = 0.5) -> int:
        """Largest chunk a slave should buffer, per the memory-driven
        chunk-size rule of Section III-B."""
        if not 0.0 < resident_fraction <= 1.0:
            raise ConfigurationError("resident_fraction must be in (0, 1]")
        return int(self.memory_bytes * resident_fraction / self.cores)

    def units_per_group(self, record_bytes: int, cache_fraction: float = 0.5) -> int:
        """Unit-group size that fits the per-core cache."""
        if record_bytes <= 0:
            raise ConfigurationError("record_bytes must be positive")
        usable = self.cache_bytes * cache_fraction
        return max(1, int(usable / record_bytes))


#: Campus cluster node: Intel Xeon, 8 cores, 6 GB DDR400 (Section IV-A).
LOCAL_XEON = NodeSpec(
    name="local-xeon",
    cores=8,
    memory_bytes=6 * GB,
    cache_bytes=4 * MB,
)

#: EC2 Large instance: 2 virtual cores, 7.5 GB, "high I/O" (Section IV-A).
EC2_M1_LARGE = NodeSpec(
    name="ec2-m1.large",
    cores=2,
    memory_bytes=7 * GB + 512 * MB,
    cache_bytes=4 * MB,
)
