"""Cluster descriptions: a named group of nodes at one site."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CLOUD_SITE, LOCAL_SITE
from ..errors import ConfigurationError
from .node import EC2_M1_LARGE, LOCAL_XEON, NodeSpec

__all__ = ["ClusterSpec", "local_cluster", "cloud_cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: ``num_nodes`` copies of one node spec.

    ``cores`` may be capped below the hardware total so an experiment can
    allocate, say, 16 of the campus cluster's cores — the paper varies
    active cores per configuration, not node counts.
    """

    name: str
    site: str
    node: NodeSpec
    num_nodes: int
    active_cores: int

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("a cluster needs at least one node")
        if not 0 < self.active_cores <= self.num_nodes * self.node.cores:
            raise ConfigurationError(
                f"active_cores={self.active_cores} outside 1..{self.num_nodes * self.node.cores}"
            )

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.cores

    def slave_count(self) -> int:
        """One slave process per active core — the simulator's granularity.

        The paper's slaves are multi-threaded node processes; modeling one
        worker per core preserves the aggregate throughput and the pooling
        dynamics, which is what the evaluation measures.
        """
        return self.active_cores


def local_cluster(active_cores: int, name: str = "campus") -> ClusterSpec:
    """Campus cluster sized to ``active_cores`` (8-core Xeon nodes)."""
    nodes = max(1, -(-active_cores // LOCAL_XEON.cores))
    return ClusterSpec(
        name=name,
        site=LOCAL_SITE,
        node=LOCAL_XEON,
        num_nodes=nodes,
        active_cores=active_cores,
    )


def cloud_cluster(active_cores: int, name: str = "ec2") -> ClusterSpec:
    """EC2 cluster of m1.large instances sized to ``active_cores``."""
    nodes = max(1, -(-active_cores // EC2_M1_LARGE.cores))
    return ClusterSpec(
        name=name,
        site=CLOUD_SITE,
        node=EC2_M1_LARGE,
        num_nodes=nodes,
        active_cores=active_cores,
    )
