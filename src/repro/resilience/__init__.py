"""Resilience subsystem for the data path.

The paper's cloud-bursting design leans on multi-threaded remote
retrieval from S3 (Section III-B); real object stores add transient
errors, latency spikes, and per-connection stragglers on top. This
package makes the retrieval layer degrade gracefully instead of failing
loudly, in three composable pieces:

* :class:`FaultInjector` — wraps any storage service and injects
  configurable faults from a seeded RNG (the test/chaos harness);
* :class:`RetryPolicy` / :func:`retry_call` — bounded retries with
  decorrelated-jitter backoff, per-attempt timeouts, an overall
  deadline, and hedged duplicate requests for stragglers;
* :class:`CircuitBreaker` — after repeated endpoint failures, degrades
  retrieval from N-way parallel to single-stream rather than failing
  the job.

The degradation ladder (see ``docs/RESILIENCE.md``): retry the
sub-range, hedge the straggler, narrow the endpoint, and only then fall
back to the middleware's slave-failure re-execution.
"""

from .circuit import CircuitBreaker
from .faults import FaultCounters, FaultInjector, FaultSpec
from .retry import ResilienceStats, RetryBudgetExceeded, RetryPolicy, retry_call

__all__ = [
    "CircuitBreaker",
    "FaultCounters",
    "FaultInjector",
    "FaultSpec",
    "ResilienceStats",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "retry_call",
]
