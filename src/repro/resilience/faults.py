"""Configurable fault injection for any storage service.

:class:`FaultInjector` wraps a :class:`~repro.storage.base.StorageService`
and perturbs its read path with the failure modes real object stores
exhibit: transient request errors (500/503/timeout class), latency
spikes, throttled ("slow") connections, and permanent per-key failures.
All randomness comes from one seeded RNG, so a given spec + seed produces
a reproducible fault schedule for a fixed request sequence.

A :class:`FaultSpec` is buildable from a compact text grammar so the CLI
can take ``--faults`` on the command line::

    transient=0.1                 10% of reads raise TransientStorageError
    latency=0.05:0.2              5% of reads stall an extra 200 ms
    slow=0.02:1048576             2% of reads are throttled to 1 MiB/s
    permanent=part-00003          keys containing the substring always fail
    seed=7                        reseed the injector's RNG

Clauses are comma-separated and may repeat (``permanent`` accumulates).
See ``docs/RESILIENCE.md`` for the full grammar.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import (
    ConfigurationError,
    PermanentStorageError,
    TransientStorageError,
)
from ..obs.events import EventLog
from ..storage.base import StorageService

__all__ = ["FaultSpec", "FaultCounters", "FaultInjector"]


def _rate(clause: str, value: str) -> float:
    try:
        rate = float(value)
    except ValueError:
        raise ConfigurationError(f"fault clause {clause!r}: bad rate {value!r}") from None
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"fault clause {clause!r}: rate must be in [0, 1]")
    return rate


@dataclass(frozen=True)
class FaultSpec:
    """What to inject, and how often.

    Rates are per read request (every ranged GET counts, so one chunk
    fetched over N connections rolls the dice N times — exactly the
    granularity the retry layer recovers at).
    """

    transient_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    slow_rate: float = 0.0
    slow_bandwidth: float = 0.0
    permanent_substrings: tuple[str, ...] = ()
    seed: int = 2011

    def __post_init__(self) -> None:
        for name in ("transient_rate", "latency_rate", "slow_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.latency_rate > 0 and self.latency_seconds <= 0:
            raise ConfigurationError("latency_seconds must be positive when latency_rate > 0")
        if self.slow_rate > 0 and self.slow_bandwidth <= 0:
            raise ConfigurationError("slow_bandwidth must be positive when slow_rate > 0")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Build a spec from the ``--faults`` grammar (see module docs)."""
        fields: dict = {}
        permanent: list[str] = []
        for clause in filter(None, (c.strip() for c in text.split(","))):
            if "=" not in clause:
                raise ConfigurationError(
                    f"fault clause {clause!r}: expected key=value"
                )
            key, _, value = clause.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "transient":
                fields["transient_rate"] = _rate(clause, value)
            elif key == "latency":
                rate, _, seconds = value.partition(":")
                if not seconds:
                    raise ConfigurationError(
                        f"fault clause {clause!r}: expected latency=RATE:SECONDS"
                    )
                fields["latency_rate"] = _rate(clause, rate)
                fields["latency_seconds"] = float(seconds)
            elif key == "slow":
                rate, _, bandwidth = value.partition(":")
                if not bandwidth:
                    raise ConfigurationError(
                        f"fault clause {clause!r}: expected slow=RATE:BYTES_PER_SECOND"
                    )
                fields["slow_rate"] = _rate(clause, rate)
                fields["slow_bandwidth"] = float(bandwidth)
            elif key == "permanent":
                permanent.extend(filter(None, value.split("|")))
            elif key == "seed":
                try:
                    fields["seed"] = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"fault clause {clause!r}: seed must be an integer"
                    ) from None
            else:
                raise ConfigurationError(
                    f"unknown fault clause {key!r} (known: transient, latency, "
                    "slow, permanent, seed)"
                )
        if permanent:
            fields["permanent_substrings"] = tuple(permanent)
        return cls(**fields)

    @property
    def active(self) -> bool:
        return bool(
            self.transient_rate
            or self.latency_rate
            or self.slow_rate
            or self.permanent_substrings
        )

    def describe(self) -> str:
        parts = []
        if self.transient_rate:
            parts.append(f"transient={self.transient_rate:g}")
        if self.latency_rate:
            parts.append(f"latency={self.latency_rate:g}:{self.latency_seconds:g}")
        if self.slow_rate:
            parts.append(f"slow={self.slow_rate:g}:{self.slow_bandwidth:g}")
        for sub in self.permanent_substrings:
            parts.append(f"permanent={sub}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


@dataclass
class FaultCounters:
    """How many of each fault actually fired (inspected by tests/CLI)."""

    transient: int = 0
    latency: int = 0
    slow: int = 0
    permanent: int = 0
    reads: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def total(self) -> int:
        return self.transient + self.latency + self.slow + self.permanent


class FaultInjector(StorageService):
    """A storage service that misbehaves on purpose.

    Wraps ``inner`` transparently for writes and metadata; perturbs only
    :meth:`read_range` — the request granularity the resilient retriever
    recovers at. Thread-safe: the RNG is guarded by a lock so concurrent
    retrieval threads draw from one reproducible sequence.
    """

    def __init__(
        self,
        inner: StorageService,
        spec: FaultSpec,
        *,
        trace: EventLog | None = None,
        sleep=time.sleep,
    ) -> None:
        self.inner = inner
        self.spec = spec
        self.trace = trace
        self.counters = FaultCounters()
        self._sleep = sleep
        self._rng = random.Random(spec.seed)
        self._lock = threading.Lock()

    # -- injection ---------------------------------------------------------

    def _emit(self, kind_detail: str, key: str) -> None:
        if self.trace is not None:
            self.trace.emit("fault_injected", detail=f"{kind_detail} key={key}")

    def _roll(self) -> tuple[float, float, float]:
        with self._lock:
            return self._rng.random(), self._rng.random(), self._rng.random()

    def read_range(self, key: str, offset: int, nbytes: int) -> bytes:
        self._inject(key, offset, nbytes)
        return self.inner.read_range(key, offset, nbytes)

    def read_view(self, key: str, offset: int, nbytes: int) -> memoryview:
        """Views roll the same dice as byte reads: the fault schedule is a
        property of the request stream, not of the return type."""
        self._inject(key, offset, nbytes)
        return self.inner.read_view(key, offset, nbytes)

    @property
    def zero_copy_views(self) -> bool:  # type: ignore[override]
        return self.inner.zero_copy_views

    def _inject(self, key: str, offset: int, nbytes: int) -> None:
        with self.counters._lock:
            self.counters.reads += 1
        for sub in self.spec.permanent_substrings:
            if sub in key:
                with self.counters._lock:
                    self.counters.permanent += 1
                self._emit("permanent", key)
                raise PermanentStorageError(
                    f"injected permanent failure for key {key!r} (matched {sub!r})"
                )
        transient, latency, slow = self._roll()
        if latency < self.spec.latency_rate:
            with self.counters._lock:
                self.counters.latency += 1
            self._emit(f"latency +{self.spec.latency_seconds:g}s", key)
            self._sleep(self.spec.latency_seconds)
        if transient < self.spec.transient_rate:
            with self.counters._lock:
                self.counters.transient += 1
            self._emit("transient", key)
            raise TransientStorageError(
                f"injected transient error reading {key!r} "
                f"[{offset}, {offset + nbytes})"
            )
        if slow < self.spec.slow_rate:
            with self.counters._lock:
                self.counters.slow += 1
            self._emit(f"slow {self.spec.slow_bandwidth:g}B/s", key)
            self._sleep(nbytes / self.spec.slow_bandwidth)

    # -- transparent delegation -------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        self.inner.put(key, data)

    def size(self, key: str) -> int:
        return self.inner.size(key)

    def exists(self, key: str) -> bool:
        return self.inner.exists(key)

    def delete(self, key: str) -> None:
        self.inner.delete(key)

    def keys(self, prefix: str = "") -> Iterable[str]:
        return self.inner.keys(prefix)

    def append_stream(self, key: str, parts: Iterable[bytes]) -> int:
        return self.inner.append_stream(key, parts)
