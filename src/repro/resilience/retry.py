"""Retry policy with exponential backoff and decorrelated jitter.

The data path's unit of recovery is one storage request (a ranged GET of
one sub-range of a chunk). :class:`RetryPolicy` bounds how hard the
retriever tries before giving up — attempt count, backoff shape, an
optional per-attempt timeout, an optional overall deadline, and an
optional hedging threshold past which a straggling request is raced
against a duplicate. :func:`retry_call` is the engine: it retries only
:class:`~repro.errors.TransientStorageError` (the "may succeed next
time" class); everything else — bad ranges, missing keys, permanent
faults — fails fast so genuine bugs keep surfacing loudly.

The backoff is AWS-style *decorrelated jitter*: each sleep is drawn
uniformly from ``[base, 3 * previous_sleep]`` and capped, which spreads
concurrent retriers apart instead of letting them thunder in lockstep.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ConfigurationError, TransientStorageError

__all__ = ["RetryPolicy", "ResilienceStats", "RetryBudgetExceeded", "retry_call"]


class RetryBudgetExceeded(TransientStorageError):
    """Every allowed attempt failed (or the deadline expired).

    Still transient *in kind* — the last underlying error was — but the
    policy's budget is spent, so callers treat it as a hard failure.
    The original error is chained as ``__cause__``.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on per-request recovery effort.

    * ``max_attempts`` — total tries per sub-range (1 = no retry);
    * ``base_backoff`` / ``max_backoff`` — decorrelated-jitter sleep
      bounds in seconds;
    * ``attempt_timeout`` — one attempt slower than this is abandoned and
      counted as a transient failure (``None`` disables);
    * ``deadline`` — overall wall-clock budget for one logical read
      across all attempts (``None`` disables);
    * ``hedge_after`` — when an attempt is still running after this many
      seconds, a duplicate request is launched and the first response
      wins (``None`` disables hedging).
    """

    max_attempts: int = 4
    base_backoff: float = 0.02
    max_backoff: float = 1.0
    attempt_timeout: float | None = None
    deadline: float | None = None
    hedge_after: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigurationError("max_attempts must be positive")
        if self.base_backoff < 0 or self.max_backoff < self.base_backoff:
            raise ConfigurationError(
                "need 0 <= base_backoff <= max_backoff "
                f"(got {self.base_backoff}, {self.max_backoff})"
            )
        for name in ("attempt_timeout", "deadline", "hedge_after"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive when set")

    @property
    def hedged(self) -> bool:
        return self.hedge_after is not None

    def next_backoff(self, rng: random.Random, previous: float) -> float:
        """Decorrelated jitter: uniform in ``[base, 3*previous]``, capped."""
        prev = previous if previous > 0 else self.base_backoff
        low = self.base_backoff
        high = max(low, prev * 3.0)
        return min(self.max_backoff, rng.uniform(low, high))


class ResilienceStats:
    """Thread-safe counters for one run's data-path recovery actions.

    Shared by every retriever a :class:`~repro.data.dataset.DatasetReader`
    builds, then folded into :class:`~repro.runtime.telemetry.RunTelemetry`
    by the driver.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.timeouts = 0
        self.circuit_opens = 0
        self.circuit_closes = 0

    def add(self, field: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + n)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "retries": self.retries,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "timeouts": self.timeouts,
                "circuit_opens": self.circuit_opens,
                "circuit_closes": self.circuit_closes,
            }


def retry_call(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    rng: random.Random,
    *,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Call ``fn`` under ``policy``; returns its value or raises.

    ``on_retry(attempt, error, backoff)`` fires before each backoff sleep
    (attempt is the 1-based number of the attempt that just failed).
    Only :class:`~repro.errors.TransientStorageError` is retried. When
    the budget runs out, :class:`RetryBudgetExceeded` is raised with the
    last transient error chained.
    """
    started = clock()
    backoff = 0.0
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except TransientStorageError as exc:
            if attempt >= policy.max_attempts:
                raise RetryBudgetExceeded(
                    f"gave up after {attempt} attempts: {exc}"
                ) from exc
            backoff = policy.next_backoff(rng, backoff)
            elapsed = clock() - started
            if policy.deadline is not None and elapsed + backoff >= policy.deadline:
                raise RetryBudgetExceeded(
                    f"deadline {policy.deadline:g}s exhausted after "
                    f"{attempt} attempts ({elapsed:.3f}s elapsed): {exc}"
                ) from exc
            if on_retry is not None:
                on_retry(attempt, exc, backoff)
            if backoff > 0:
                sleep(backoff)
    raise AssertionError("unreachable")  # pragma: no cover
