"""Circuit breaker: degrade, don't die.

When a storage endpoint keeps failing, hammering it with N parallel
connections (each retrying with backoff) makes the incident worse and the
job no faster. The breaker watches consecutive attempt-level failures on
one endpoint; past a threshold it *opens*, and the retriever drops from
N-way parallel range reads to a single sequential stream — the paper's
local-read shape — until enough consecutive successes close it again.
Both transitions are recorded (``circuit_open`` / ``circuit_close``
events, ``circuit_opens`` in :class:`~repro.runtime.telemetry.RunTelemetry`)
so a degraded run is visible, not silent.
"""

from __future__ import annotations

import threading

from ..errors import ConfigurationError
from ..obs.events import EventLog

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker guarding one storage endpoint.

    * ``failure_threshold`` — consecutive failed attempts before opening;
    * ``recovery_successes`` — consecutive successful attempts while open
      before closing again.

    Unlike a classic request-rejecting breaker, an open circuit here never
    refuses work — it only *narrows* it (parallel -> single-stream), so a
    run always makes progress as long as the endpoint serves anything.
    """

    def __init__(
        self,
        failure_threshold: int = 8,
        recovery_successes: int = 32,
        *,
        name: str = "",
        trace: EventLog | None = None,
    ) -> None:
        if failure_threshold <= 0 or recovery_successes <= 0:
            raise ConfigurationError(
                "failure_threshold and recovery_successes must be positive"
            )
        self.failure_threshold = failure_threshold
        self.recovery_successes = recovery_successes
        self.name = name
        self.trace = trace
        self.opens = 0
        self.closes = 0
        self._open = False
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._lock = threading.Lock()

    @property
    def open(self) -> bool:
        """True while the endpoint is degraded to single-stream reads."""
        with self._lock:
            return self._open

    def record_failure(self) -> None:
        """One attempt failed; may trip the breaker."""
        tripped = False
        with self._lock:
            self._consecutive_successes = 0
            self._consecutive_failures += 1
            if not self._open and self._consecutive_failures >= self.failure_threshold:
                self._open = True
                self.opens += 1
                tripped = True
        if tripped and self.trace is not None:
            self.trace.emit(
                "circuit_open",
                detail=f"endpoint={self.name} after "
                f"{self.failure_threshold} consecutive failures",
            )

    def record_success(self) -> None:
        """One attempt succeeded; may close an open breaker."""
        closed = False
        with self._lock:
            self._consecutive_failures = 0
            if self._open:
                self._consecutive_successes += 1
                if self._consecutive_successes >= self.recovery_successes:
                    self._open = False
                    self._consecutive_successes = 0
                    self.closes += 1
                    closed = True
        if closed and self.trace is not None:
            self.trace.emit(
                "circuit_close",
                detail=f"endpoint={self.name} after "
                f"{self.recovery_successes} consecutive successes",
            )
