"""One front door for every execution path.

The repo grew three ways to execute an application — the serial oracle
(:func:`repro.core.api.run_serial`), the discrete-event simulator
(:func:`repro.sim.simulation.simulate`), and the in-process executable
runtime (:class:`repro.runtime.driver.CloudBurstingRuntime`). Each had
its own setup ritual. :func:`run` collapses them behind one call:

.. code-block:: python

    import repro

    result = repro.run("wordcount", dataset, repro.RunConfig(mode="runtime"))
    print(result.value, result.telemetry.retries)

``mode`` selects the engine; everything else (placement, compute split,
tuning, fault injection, retry policy, observability hooks) lives on
:class:`RunConfig` and means the same thing in every mode that supports
it. The legacy entrypoints remain as thin, stable shims — the facade
calls into the very same code, and ``tests/test_run_facade.py`` pins the
equivalence — but new code should start here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from .apps import AppBundle, make_bundle
from .cache import ChunkCache
from .config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    ExperimentConfig,
    MiddlewareTuning,
    PlacementSpec,
)
from .core.api import run_serial
from .core.sync import SyncSpec
from .data.dataset import DatasetReader, build_dataset
from .errors import ConfigurationError
from .obs.events import EventLog
from .obs.live import RunMonitor, RunSample, samples_from_log
from .obs.metrics import MetricsRegistry
from .resilience.faults import FaultInjector, FaultSpec
from .resilience.retry import RetryPolicy
from .runtime.driver import SLAVE_MODES, CloudBurstingRuntime, RuntimeResult
from .runtime.telemetry import RunTelemetry
from .sim.metrics import SimReport
from .sim.simulation import CloudBurstSimulation
from .storage.base import StorageService
from .storage.objectstore import ObjectStore

__all__ = ["RunConfig", "RunResult", "run"]

#: The engines :func:`run` can drive.
MODES = ("serial", "simulate", "runtime")


@dataclass(frozen=True)
class RunConfig:
    """Everything about *how* to execute, independent of the app and data.

    * ``mode`` — ``"serial"`` (single-threaded oracle), ``"simulate"``
      (discrete-event model of the paper's testbed), or ``"runtime"``
      (real threads over real bytes);
    * ``placement`` / ``compute`` / ``tuning`` / ``seed`` — the same specs
      :class:`~repro.config.ExperimentConfig` takes;
    * ``faults`` — a :class:`~repro.resilience.FaultSpec` or its text form
      (``"transient=0.1,seed=7"``); wraps every store in a
      :class:`~repro.resilience.FaultInjector` (serial and runtime
      modes). Simulate mode models the spec's ``latency``/``slow``
      degradations as extra virtual transfer time (transient/permanent
      read errors are retry mechanics the simulator does not model);
    * ``retry`` — a :class:`~repro.resilience.RetryPolicy` for the data
      path. Defaults to ``RetryPolicy()`` whenever faults are active so a
      chaos run completes out of the box;
    * ``trace`` / ``metrics`` — observability hooks threaded through to
      whichever engine runs;
    * ``cache_bytes`` — byte budget for a per-node
      :class:`~repro.cache.ChunkCache`; ``0`` (the default) constructs no
      cache machinery at all. Remote chunks are then paid for once per
      node instead of once per pass;
    * ``prefetch`` — overlap each slave's next fetch with its current
      reduction (runtime mode only; serial and simulate ignore it);
    * ``slave_mode`` — the runtime's slave substrate: ``"thread"`` (the
      original in-process slaves, default) or ``"process"`` (decode +
      local reduction in worker processes fed over shared memory —
      GIL-free compute for CPU-bound kernels). Serial and simulate
      modes ignore it;
    * ``iterations`` / ``converge`` — first-class iterative execution:
      run the app ``iterations`` passes, calling its ``update`` hook on
      each intermediate result (kmeans recenters, pagerank re-ranks), and
      stop early once consecutive results differ by at most ``converge``
      (max absolute difference for array results);
    * ``sync_*`` — the global-reduction WAN levers
      (:mod:`repro.core.sync`). ``sync_encoding``
      (``dense``/``sparse``/``delta``/``auto``) and ``sync_compress``
      (``none``/``zlib``/``lz4``) shrink each upload on the wire;
      ``sync_topology`` (``star``/``tree``/``ring``) aggregates through
      intermediate masters instead of all-to-head; ``sync_stream`` merges
      slave partials every ``sync_watermark`` jobs instead of behind the
      barrier. The defaults reproduce the paper's star/dense/barrier path
      with zero new machinery. Runtime mode executes all of it; simulate
      mode models topology and streaming, charging encoded uploads
      ``sync_ratio`` of their dense bytes;
    * ``monitor_interval`` — live run-health sampling every that many
      seconds (:mod:`repro.obs.live`): pool depth, steal rate, cache
      hit ratio, sync bytes, utilization, and a completion-rate ETA,
      kept as a bounded ring of ``monitor_capacity``
      :class:`~repro.obs.live.RunSample` on ``RunResult.samples``.
      ``on_sample`` is called with each sample as it lands. Runtime
      mode samples the live run on a wall-clock interval; simulate mode
      reconstructs the identical sample stream from the trace on a
      virtual-time interval (so it requires ``trace``); serial mode has
      no cluster to watch and takes no samples. ``0.0`` (the default)
      constructs no monitoring machinery at all.

    ``app_params`` is forwarded to the application factory when the app is
    given as a registry key (e.g. ``{"k": 8}`` for knn).
    """

    mode: str = "runtime"
    placement: PlacementSpec = field(default_factory=lambda: PlacementSpec(0.5))
    compute: ComputeSpec = field(
        default_factory=lambda: ComputeSpec(local_cores=2, cloud_cores=2)
    )
    tuning: MiddlewareTuning = field(default_factory=MiddlewareTuning)
    seed: int = 2011
    name: str = "adhoc"
    faults: FaultSpec | str | None = None
    retry: RetryPolicy | None = None
    join_timeout: float = 600.0
    trace: EventLog | None = None
    metrics: MetricsRegistry | None = None
    app_params: Mapping[str, Any] = field(default_factory=dict)
    cache_bytes: int = 0
    prefetch: bool = False
    slave_mode: str = "thread"
    iterations: int = 1
    converge: float | None = None
    sync_encoding: str = "dense"
    sync_compress: str = "none"
    sync_topology: str = "star"
    sync_stream: bool = False
    sync_watermark: int = 8
    sync_fanout: int = 2
    sync_ratio: float = 1.0
    monitor_interval: float = 0.0
    monitor_capacity: int = 512
    on_sample: Callable[[RunSample], None] | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown run mode {self.mode!r}; expected one of {MODES}"
            )
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", FaultSpec.parse(self.faults))
        if self.join_timeout <= 0:
            raise ConfigurationError("join_timeout must be positive")
        if self.cache_bytes < 0:
            raise ConfigurationError("cache_bytes cannot be negative")
        if self.slave_mode not in SLAVE_MODES:
            raise ConfigurationError(
                f"unknown slave_mode {self.slave_mode!r}; "
                f"expected one of {SLAVE_MODES}"
            )
        if self.iterations < 1:
            raise ConfigurationError("iterations must be at least 1")
        if self.converge is not None and self.converge < 0:
            raise ConfigurationError("converge tolerance cannot be negative")
        if self.monitor_interval < 0:
            raise ConfigurationError("monitor_interval cannot be negative")
        if self.monitor_capacity <= 0:
            raise ConfigurationError("monitor_capacity must be positive")
        if self.on_sample is not None and self.monitor_interval <= 0:
            raise ConfigurationError(
                "on_sample needs monitor_interval > 0 to ever be called"
            )
        if (
            self.monitor_interval > 0
            and self.mode == "simulate"
            and self.trace is None
        ):
            raise ConfigurationError(
                "simulate-mode monitoring reconstructs samples from the "
                "event log; pass trace=EventLog() alongside monitor_interval"
            )
        # Build once to validate every sync knob (raises ConfigurationError
        # on a bad value); the result is cheap to reconstruct on demand.
        SyncSpec(
            topology=self.sync_topology,
            encoding=self.sync_encoding,
            compress=self.sync_compress,
            stream=self.sync_stream,
            watermark=self.sync_watermark,
            fanout=self.sync_fanout,
            sim_ratio=self.sync_ratio,
        )

    def make_cache(
        self, *, with_hooks: bool = True
    ) -> ChunkCache | None:
        """Build the configured chunk cache, or ``None`` when disabled."""
        if self.cache_bytes <= 0:
            return None
        if with_hooks:
            return ChunkCache(
                self.cache_bytes, trace=self.trace, metrics=self.metrics
            )
        return ChunkCache(self.cache_bytes)

    @property
    def fault_spec(self) -> FaultSpec | None:
        """The parsed fault spec, or ``None`` when no faults are configured."""
        spec = self.faults
        if spec is None or not spec.active:
            return None
        return spec

    @property
    def sync_spec(self) -> SyncSpec | None:
        """The configured sync plan, or ``None`` when every knob is at the
        legacy star/dense/barrier default (no sync machinery is built)."""
        spec = SyncSpec(
            topology=self.sync_topology,
            encoding=self.sync_encoding,
            compress=self.sync_compress,
            stream=self.sync_stream,
            watermark=self.sync_watermark,
            fanout=self.sync_fanout,
            sim_ratio=self.sync_ratio,
        )
        return None if spec.is_default else spec

    @property
    def effective_retry(self) -> RetryPolicy | None:
        """The retry policy actually applied: the configured one, or the
        default policy when faults are active and none was given."""
        if self.retry is not None:
            return self.retry
        if self.fault_spec is not None:
            return RetryPolicy()
        return None


@dataclass
class RunResult:
    """Common result shape across every mode.

    ``value`` is the application result (``None`` in simulate mode — the
    simulator models costs, not bytes). ``telemetry`` is filled by serial
    and runtime modes; ``sim_report`` by simulate mode. ``wall_seconds``
    is measured wall-clock for executable modes and the simulated makespan
    for simulate mode; for iterative runs both cover every pass.
    ``passes`` counts the passes actually run (< ``config.iterations``
    when ``converge`` stopped the run early). ``samples`` is the run's
    health timeline — :class:`~repro.obs.live.RunSample` snapshots taken
    every ``config.monitor_interval`` seconds — empty unless monitoring
    was enabled (runtime samples live, simulate reconstructs from the
    trace, serial never samples).
    """

    value: Any
    mode: str
    wall_seconds: float
    telemetry: RunTelemetry | None = None
    sim_report: SimReport | None = None
    passes: int = 1
    samples: list[RunSample] = field(default_factory=list)


def _resolve_bundle(
    app: str | AppBundle, dataset: DatasetSpec, config: RunConfig
) -> AppBundle:
    if isinstance(app, AppBundle):
        return app
    return make_bundle(
        app, dataset.total_units, seed=config.seed, **dict(config.app_params)
    )


def _build_stores(
    bundle: AppBundle, dataset: DatasetSpec, config: RunConfig
):
    """Materialize the dataset into fresh in-memory stores.

    Returns ``(index, stores)`` with every store wrapped in a
    :class:`FaultInjector` when the config carries an active fault spec
    (the bytes are written through the clean stores first — faults only
    ever hit the read path).
    """
    base: dict[str, StorageService] = {
        LOCAL_SITE: ObjectStore(),
        CLOUD_SITE: ObjectStore(),
    }
    index = build_dataset(
        dataset, config.placement, bundle.schema, bundle.block_fn, base
    )
    spec = config.fault_spec
    if spec is None:
        return index, base
    stores = {
        site: FaultInjector(store, spec, trace=config.trace)
        for site, store in base.items()
    }
    return index, stores


def _default_distance(a: Any, b: Any) -> float:
    """Max absolute difference — the convergence metric for array results."""
    return float(np.max(np.abs(np.asarray(a) - np.asarray(b))))


def _update_hook(bundle: AppBundle, config: RunConfig) -> Callable[[Any], None]:
    """The app's between-pass ``update`` hook; required once iterating."""
    hook = getattr(bundle.app, "update", None)
    if hook is None:
        raise ConfigurationError(
            f"app {bundle.profile.key!r} has no update() hook; iterative "
            f"execution (iterations={config.iterations}) needs one to feed "
            f"each pass's result back (kmeans and pagerank define it)"
        )
    return hook


def _iterate(
    config: RunConfig, run_pass: Callable[[], Any], update: Callable[[Any], None]
) -> tuple[Any, int]:
    """Shared pass loop: run, converge-check, feed back. Returns
    ``(final_value, passes_run)`` — same contract as
    :func:`repro.runtime.driver.run_iterative`."""
    previous: Any = None
    value: Any = None
    passes = 0
    for _ in range(config.iterations):
        value = run_pass()
        passes += 1
        if (
            config.converge is not None
            and previous is not None
            and _default_distance(previous, value) <= config.converge
        ):
            break
        previous = value
        update(value)
    return value, passes


def _run_serial(
    app: str | AppBundle, dataset: DatasetSpec, config: RunConfig
) -> RunResult:
    bundle = _resolve_bundle(app, dataset, config)
    index, stores = _build_stores(bundle, dataset, config)
    cache = config.make_cache()
    reader = DatasetReader(
        index,
        stores,
        retrieval_threads=1,
        trace=config.trace,
        retry=config.effective_retry,
        metrics=config.metrics,
        cache=cache,
    )
    # The cache only engages for cross-site reads; the serial oracle has no
    # home site, so give it one whenever a cache is configured — cloud-placed
    # chunks then count as remote and get cached like the runtime's local
    # cluster would cache them.
    from_site = LOCAL_SITE if cache is not None else None
    iterating = config.iterations > 1
    update = _update_hook(bundle, config) if iterating else (lambda value: None)

    def run_pass() -> Any:
        return run_serial(
            bundle.app,
            reader.read_all_chunks(from_site=from_site),
            units_per_group=config.tuning.units_per_group,
        )

    started = time.perf_counter()
    value, passes = _iterate(config, run_pass, update)
    wall = time.perf_counter() - started
    telemetry = RunTelemetry(wall_seconds=wall)
    resilience = reader.resilience
    telemetry.retries = resilience.retries
    telemetry.hedges = resilience.hedges
    telemetry.hedge_wins = resilience.hedge_wins
    telemetry.timeouts = resilience.timeouts
    telemetry.faults_injected = sum(
        store.counters.total
        for store in stores.values()
        if isinstance(store, FaultInjector)
    )
    if cache is not None:
        stats = cache.stats
        telemetry.cache_hits = stats.hits
        telemetry.cache_misses = stats.misses
        telemetry.cache_evictions = stats.evictions
        telemetry.bytes_saved = stats.bytes_saved
    telemetry.zero_copy_reads = reader.zero_copy_reads
    telemetry.bytes_copied = reader.bytes_copied
    return RunResult(
        value=value,
        mode="serial",
        wall_seconds=wall,
        telemetry=telemetry,
        passes=passes,
    )


def _run_simulate(
    app: str | AppBundle, dataset: DatasetSpec, config: RunConfig
) -> RunResult:
    key = app if isinstance(app, str) else app.profile.key
    experiment = ExperimentConfig(
        name=config.name,
        app=key,
        dataset=dataset,
        placement=config.placement,
        compute=config.compute,
        tuning=config.tuning,
        seed=config.seed,
    )
    profile = None if isinstance(app, str) else app.profile
    # The simulator models costs, not bytes: an iterative run is N passes
    # over the same placement with the chunk cache carried across passes
    # (pass 2 of a cached run pays no cross-site transfers). There is no
    # value to feed back, so no update() hook is involved.
    cache = config.make_cache()
    report: SimReport | None = None
    total_makespan = 0.0
    hits = misses = faults = 0
    sim = CloudBurstSimulation(
        experiment,
        profile=profile,
        trace=config.trace,
        cache=cache,
        sync=config.sync_spec,
        faults=config.fault_spec,
    )
    for _ in range(config.iterations):
        report = sim.run()
        total_makespan += report.makespan
        hits += report.cache_hits
        misses += report.cache_misses
        faults += report.faults_injected
    assert report is not None
    report.cache_hits = hits
    report.cache_misses = misses
    report.faults_injected = faults
    samples: list[RunSample] = []
    if config.monitor_interval > 0 and config.trace is not None:
        # Virtual time: "live" sampling is a post-hoc replay of the trace.
        samples = samples_from_log(config.trace, config.monitor_interval)
        if config.on_sample is not None:
            for sample in samples:
                config.on_sample(sample)
    return RunResult(
        value=None,
        mode="simulate",
        wall_seconds=total_makespan,
        sim_report=report,
        passes=config.iterations,
        samples=samples,
    )


def _run_runtime(
    app: str | AppBundle, dataset: DatasetSpec, config: RunConfig
) -> RunResult:
    bundle = _resolve_bundle(app, dataset, config)
    index, stores = _build_stores(bundle, dataset, config)
    monitor: RunMonitor | None = None
    if config.monitor_interval > 0:
        monitor = RunMonitor(
            config.monitor_interval, capacity=config.monitor_capacity
        )
        if config.on_sample is not None:
            monitor.subscribe(config.on_sample)
    runtime = CloudBurstingRuntime(
        bundle.app,
        index,
        stores,
        config.compute,
        tuning=config.tuning,
        seed=config.seed,
        trace=config.trace,
        metrics=config.metrics,
        join_timeout=config.join_timeout,
        retry_policy=config.effective_retry,
        cache=config.make_cache(),
        prefetch=config.prefetch,
        sync=config.sync_spec,
        monitor=monitor,
        slave_mode=config.slave_mode,
    )
    iterating = config.iterations > 1
    update = _update_hook(bundle, config) if iterating else (lambda value: None)

    # Each pass produces its own telemetry; fold the additive counters into
    # the final pass's record so the result reports whole-run totals.
    _ADDITIVE = (
        "retries", "hedges", "hedge_wins", "timeouts", "circuit_opens",
        "faults_injected", "slaves_failed", "jobs_reexecuted",
        "cache_hits", "cache_misses", "cache_evictions", "bytes_saved",
        "prefetches", "sync_uploads", "sync_bytes_sent", "sync_bytes_saved",
        "sync_partial_merges", "zero_copy_reads", "bytes_copied",
    )
    totals = {name: 0 for name in _ADDITIVE}
    total_wall = 0.0
    last: RuntimeResult | None = None

    def run_pass() -> Any:
        nonlocal total_wall, last
        last = runtime.run()
        total_wall += last.telemetry.wall_seconds
        for name in _ADDITIVE:
            totals[name] += getattr(last.telemetry, name)
        return last.value

    value, passes = _iterate(config, run_pass, update)
    assert last is not None
    telemetry = last.telemetry
    telemetry.wall_seconds = total_wall
    for name in _ADDITIVE:
        setattr(telemetry, name, totals[name])
    return RunResult(
        value=value,
        mode="runtime",
        wall_seconds=total_wall,
        telemetry=telemetry,
        passes=passes,
        samples=monitor.samples() if monitor is not None else [],
    )


_ENGINES = {
    "serial": _run_serial,
    "simulate": _run_simulate,
    "runtime": _run_runtime,
}


def run(
    app: str | AppBundle,
    dataset: DatasetSpec,
    config: RunConfig | None = None,
) -> RunResult:
    """Execute ``app`` over ``dataset`` with the engine ``config`` selects.

    ``app`` is a registry key (``"knn"``, ``"wordcount"``, ...) or a
    pre-built :class:`~repro.apps.AppBundle`. ``dataset`` gives the data
    shape; serial and runtime modes materialize it into in-memory stores
    (deterministically from ``config.seed``), simulate mode only models
    it. With no config, a 50/50 placement runtime run on 2+2 cores.
    """
    config = config or RunConfig()
    return _ENGINES[config.mode](app, dataset, config)
