"""One front door for every execution path.

The repo grew three ways to execute an application — the serial oracle
(:func:`repro.core.api.run_serial`), the discrete-event simulator
(:func:`repro.sim.simulation.simulate`), and the in-process executable
runtime (:class:`repro.runtime.driver.CloudBurstingRuntime`). Each had
its own setup ritual. :func:`run` collapses them behind one call:

.. code-block:: python

    import repro

    result = repro.run("wordcount", dataset, repro.RunConfig(mode="runtime"))
    print(result.value, result.telemetry.retries)

``mode`` selects the engine; everything else (placement, compute split,
tuning, fault injection, retry policy, observability hooks) lives on
:class:`RunConfig` and means the same thing in every mode that supports
it. The knobs are grouped into nested option families
(:class:`~repro.options.CacheOptions`, :class:`~repro.options.SyncOptions`,
:class:`~repro.options.MonitorOptions`,
:class:`~repro.options.ResilienceOptions`); every legacy flat kwarg still
works through a deprecation shim, and the flat attribute reads
(``config.cache_bytes`` and friends) remain first-class.

:func:`run` itself is now a thin wrapper over the multi-run
:class:`repro.service.JobService` — ``submit(...).result()`` on a
single-use inline service — so the single-run door and the multi-tenant
door exercise the same admission/scheduling path.
:func:`run_direct` keeps the pre-service dispatch alive as the
equivalence-pinned legacy path (``tests/test_run_facade.py``,
``tests/test_service.py``).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from .apps import AppBundle, make_bundle
from .cache import ChunkCache
from .config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    ExperimentConfig,
    MiddlewareTuning,
    PlacementSpec,
)
from .core.api import run_serial
from .core.sync import SyncSpec
from .data.dataset import DatasetReader, build_dataset
from .errors import ConfigurationError
from .obs.events import EventLog
from .obs.live import RunMonitor, RunSample, samples_from_log
from .obs.metrics import MetricsRegistry
from .options import (
    CacheOptions,
    MonitorOptions,
    ResilienceOptions,
    ScaleOptions,
    SyncOptions,
)
from .resilience.faults import FaultInjector, FaultSpec
from .resilience.retry import RetryPolicy
from .runtime.driver import SLAVE_MODES, CloudBurstingRuntime, RuntimeResult
from .runtime.telemetry import RunTelemetry
from .sim.metrics import SimReport
from .sim.simulation import CloudBurstSimulation
from .storage.base import StorageService
from .storage.objectstore import ObjectStore

__all__ = ["RunConfig", "RunResult", "run", "run_direct"]

#: The engines :func:`run` can drive.
MODES = ("serial", "simulate", "runtime")


class _Unset:
    """Sentinel distinguishing "flat kwarg not passed" from any real value."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"


_UNSET = _Unset()

#: nested field name -> option class, in declaration order.
_OPTION_FAMILIES = {
    "cache": CacheOptions,
    "sync": SyncOptions,
    "monitor": MonitorOptions,
    "resilience": ResilienceOptions,
    "scale": ScaleOptions,
}


def _merge_options(name: str, cls: type, nested: Any, given: dict[str, Any]):
    """Reconcile a nested option spec with explicitly-passed flat kwargs.

    ``given`` maps nested attribute names to the flat values the caller
    passed. Flat-only construction warns and builds the spec; nested-only
    passes through; both together are accepted silently when they agree
    and refused when they disagree (silently preferring either one would
    hide a bug in the caller).
    """
    if not given:
        return nested if nested is not None else cls()
    flat_names = ", ".join(sorted(cls.FLAT[attr] for attr in given))
    if nested is None:
        warnings.warn(
            f"flat RunConfig kwarg(s) {flat_names} are deprecated; pass "
            f"{name}={cls.__name__}(...) instead (see docs/API.md for the "
            f"flat-to-nested migration table)",
            DeprecationWarning,
            stacklevel=3,
        )
        return cls(**given)
    for attr, value in given.items():
        if cls is ResilienceOptions and attr == "faults" and isinstance(value, str):
            value = FaultSpec.parse(value)
        current = getattr(nested, attr)
        if current != value:
            raise ConfigurationError(
                f"RunConfig got both {name}={cls.__name__}(...) and the flat "
                f"kwarg {cls.FLAT[attr]}={value!r}, and they disagree "
                f"({name}.{attr} is {current!r}); drop the flat kwarg"
            )
    return nested


@dataclass(frozen=True, init=False)
class RunConfig:
    """Everything about *how* to execute, independent of the app and data.

    * ``mode`` — ``"serial"`` (single-threaded oracle), ``"simulate"``
      (discrete-event model of the paper's testbed), or ``"runtime"``
      (real threads over real bytes);
    * ``placement`` / ``compute`` / ``tuning`` / ``seed`` — the same specs
      :class:`~repro.config.ExperimentConfig` takes;
    * ``trace`` / ``metrics`` — observability hooks threaded through to
      whichever engine runs;
    * ``slave_mode`` — the runtime's slave substrate: ``"thread"`` (the
      original in-process slaves, default) or ``"process"`` (decode +
      local reduction in worker processes fed over shared memory —
      GIL-free compute for CPU-bound kernels). Serial and simulate
      modes ignore it;
    * ``iterations`` / ``converge`` — first-class iterative execution:
      run the app ``iterations`` passes, calling its ``update`` hook on
      each intermediate result (kmeans recenters, pagerank re-ranks), and
      stop early once consecutive results differ by at most ``converge``
      (max absolute difference for array results);
    * ``cache`` — a :class:`~repro.options.CacheOptions`: the per-node
      :class:`~repro.cache.ChunkCache` byte budget and the prefetch
      pipeline (runtime mode only for prefetch);
    * ``sync`` — a :class:`~repro.options.SyncOptions`: the
      global-reduction WAN levers (:mod:`repro.core.sync`) — wire
      encoding/compression, aggregation topology, streaming partial
      merges, and the simulator's encoded-bytes ratio. The defaults
      reproduce the paper's star/dense/barrier path with zero machinery;
    * ``monitor`` — a :class:`~repro.options.MonitorOptions`: live
      run-health sampling (:mod:`repro.obs.live`) kept as a bounded ring
      of :class:`~repro.obs.live.RunSample` on ``RunResult.samples``.
      Runtime mode samples the live run; simulate mode reconstructs the
      identical stream from the trace (so it requires ``trace``); serial
      mode never samples;
    * ``resilience`` — a :class:`~repro.options.ResilienceOptions`: fault
      injection (wraps every store in a
      :class:`~repro.resilience.FaultInjector`; simulate mode models
      ``latency``/``slow`` as extra virtual transfer time), the data-path
      :class:`~repro.resilience.RetryPolicy` (defaults to
      ``RetryPolicy()`` whenever faults are active), and the runtime's
      join deadline;
    * ``scale`` — a :class:`~repro.options.ScaleOptions`: elastic cloud
      bursting (:mod:`repro.scale`) — the deadline/budget autoscaler
      that grows and shrinks the cloud fleet mid-run, and the seeded
      spot-revocation model. Runtime mode attaches/retires real slave
      threads; simulate mode models the same controller with provision
      latency in virtual time; results stay bit-identical either way.

    ``app_params`` is forwarded to the application factory when the app is
    given as a registry key (e.g. ``{"k": 8}`` for knn).

    Every pre-redesign flat kwarg (``cache_bytes``, ``prefetch``,
    ``sync_*``, ``monitor_interval``, ``monitor_capacity``, ``on_sample``,
    ``faults``, ``retry``, ``join_timeout``) still constructs, emitting a
    ``DeprecationWarning``, and every flat attribute *read* stays
    first-class and warning-free — ``config.cache_bytes`` mirrors
    ``config.cache.bytes`` forever. Passing a nested spec together with a
    *disagreeing* flat kwarg is a :class:`ConfigurationError`.

    Construction validates each field; :meth:`validate` additionally
    cross-checks the combination for knobs that silently do nothing
    together (``service.submit`` runs it by default).
    """

    mode: str = "runtime"
    placement: PlacementSpec = field(default_factory=lambda: PlacementSpec(0.5))
    compute: ComputeSpec = field(
        default_factory=lambda: ComputeSpec(local_cores=2, cloud_cores=2)
    )
    tuning: MiddlewareTuning = field(default_factory=MiddlewareTuning)
    seed: int = 2011
    name: str = "adhoc"
    trace: EventLog | None = None
    metrics: MetricsRegistry | None = None
    app_params: Mapping[str, Any] = field(default_factory=dict)
    slave_mode: str = "thread"
    iterations: int = 1
    converge: float | None = None
    cache: CacheOptions = field(default_factory=CacheOptions)
    sync: SyncOptions = field(default_factory=SyncOptions)
    monitor: MonitorOptions = field(default_factory=MonitorOptions)
    resilience: ResilienceOptions = field(default_factory=ResilienceOptions)
    scale: ScaleOptions = field(default_factory=ScaleOptions)

    # Flat read-path mirrors of the nested specs. Excluded from init
    # (the custom __init__ below reconciles flat kwargs into the nested
    # specs first), from comparison and from repr — two configs are equal
    # iff their core + nested fields are, and dataclasses.replace() only
    # round-trips core + nested fields (replacing a mirror raises; replace
    # the nested spec instead).
    faults: FaultSpec | None = field(init=False, repr=False, compare=False)
    retry: RetryPolicy | None = field(init=False, repr=False, compare=False)
    join_timeout: float = field(init=False, repr=False, compare=False)
    cache_bytes: int = field(init=False, repr=False, compare=False)
    prefetch: bool = field(init=False, repr=False, compare=False)
    sync_encoding: str = field(init=False, repr=False, compare=False)
    sync_compress: str = field(init=False, repr=False, compare=False)
    sync_topology: str = field(init=False, repr=False, compare=False)
    sync_stream: bool = field(init=False, repr=False, compare=False)
    sync_watermark: int = field(init=False, repr=False, compare=False)
    sync_fanout: int = field(init=False, repr=False, compare=False)
    sync_ratio: float = field(init=False, repr=False, compare=False)
    monitor_interval: float = field(init=False, repr=False, compare=False)
    monitor_capacity: int = field(init=False, repr=False, compare=False)
    on_sample: Callable[[RunSample], None] | None = field(
        init=False, repr=False, compare=False
    )

    def __init__(
        self,
        mode: str = "runtime",
        placement: PlacementSpec | None = None,
        compute: ComputeSpec | None = None,
        tuning: MiddlewareTuning | None = None,
        seed: int = 2011,
        name: str = "adhoc",
        faults: Any = _UNSET,
        retry: Any = _UNSET,
        join_timeout: Any = _UNSET,
        trace: EventLog | None = None,
        metrics: MetricsRegistry | None = None,
        app_params: Mapping[str, Any] | None = None,
        cache_bytes: Any = _UNSET,
        prefetch: Any = _UNSET,
        slave_mode: str = "thread",
        iterations: int = 1,
        converge: float | None = None,
        sync_encoding: Any = _UNSET,
        sync_compress: Any = _UNSET,
        sync_topology: Any = _UNSET,
        sync_stream: Any = _UNSET,
        sync_watermark: Any = _UNSET,
        sync_fanout: Any = _UNSET,
        sync_ratio: Any = _UNSET,
        monitor_interval: Any = _UNSET,
        monitor_capacity: Any = _UNSET,
        on_sample: Any = _UNSET,
        cache: CacheOptions | None = None,
        sync: SyncOptions | None = None,
        monitor: MonitorOptions | None = None,
        resilience: ResilienceOptions | None = None,
        scale: ScaleOptions | None = None,
    ) -> None:
        set_ = lambda k, v: object.__setattr__(self, k, v)  # noqa: E731
        set_("mode", mode)
        set_("placement", placement if placement is not None else PlacementSpec(0.5))
        set_(
            "compute",
            compute
            if compute is not None
            else ComputeSpec(local_cores=2, cloud_cores=2),
        )
        set_("tuning", tuning if tuning is not None else MiddlewareTuning())
        set_("seed", seed)
        set_("name", name)
        set_("trace", trace)
        set_("metrics", metrics)
        set_("app_params", app_params if app_params is not None else {})
        set_("slave_mode", slave_mode)
        set_("iterations", iterations)
        set_("converge", converge)
        flats = {
            "cache": {"bytes": cache_bytes, "prefetch": prefetch},
            "sync": {
                "encoding": sync_encoding,
                "compress": sync_compress,
                "topology": sync_topology,
                "stream": sync_stream,
                "watermark": sync_watermark,
                "fanout": sync_fanout,
                "ratio": sync_ratio,
            },
            "monitor": {
                "interval": monitor_interval,
                "capacity": monitor_capacity,
                "on_sample": on_sample,
            },
            "resilience": {
                "faults": faults,
                "retry": retry,
                "join_timeout": join_timeout,
            },
            # ScaleOptions postdates the flat-kwarg era: nested-only.
            "scale": {},
        }
        nested = {
            "cache": cache,
            "sync": sync,
            "monitor": monitor,
            "resilience": resilience,
            "scale": scale,
        }
        for spec_name, cls in _OPTION_FAMILIES.items():
            given = {
                attr: value
                for attr, value in flats[spec_name].items()
                if value is not _UNSET
            }
            spec = _merge_options(spec_name, cls, nested[spec_name], given)
            set_(spec_name, spec)
            for attr, flat_name in cls.FLAT.items():
                set_(flat_name, getattr(spec, attr))
        self._check()

    def _check(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown run mode {self.mode!r}; expected one of {MODES}"
            )
        if self.slave_mode not in SLAVE_MODES:
            raise ConfigurationError(
                f"unknown slave_mode {self.slave_mode!r}; "
                f"expected one of {SLAVE_MODES}"
            )
        if self.iterations < 1:
            raise ConfigurationError("iterations must be at least 1")
        if self.converge is not None and self.converge < 0:
            raise ConfigurationError("converge tolerance cannot be negative")
        if (
            self.monitor.enabled
            and self.mode == "simulate"
            and self.trace is None
        ):
            raise ConfigurationError(
                "simulate-mode monitoring reconstructs samples from the "
                "event log; pass trace=EventLog() alongside monitor_interval"
            )

    def validate(self) -> "RunConfig":
        """Cross-check the knob *combination*, failing fast and actionably.

        Construction already rejects individually-invalid values (negative
        budgets, unknown modes); this catches configurations where every
        knob is legal but the combination silently does nothing or would
        only fail deep inside an engine. :meth:`repro.service.JobService.submit`
        calls it by default; :func:`run` stays permissive for back-compat.
        Returns ``self`` so it chains: ``run(app, data, config.validate())``.
        """
        problems: list[str] = []
        if self.cache.prefetch and self.mode != "runtime":
            problems.append(
                f"prefetch=True does nothing in {self.mode!r} mode — only the "
                f"runtime overlaps fetch with reduction; drop it or use "
                f"mode='runtime'"
            )
        if self.cache.prefetch and self.cache.bytes == 0:
            problems.append(
                "prefetch=True with cache_bytes=0 builds no cache to prefetch "
                "into; set cache=CacheOptions(bytes=..., prefetch=True) or "
                "drop prefetch"
            )
        if not self.sync.is_default and self.mode == "serial":
            problems.append(
                "sync_* knobs configure the distributed global reduction; "
                "serial mode has no masters to aggregate through and ignores "
                "them — drop the sync options or use mode='runtime'/'simulate'"
            )
        if self.sync.ratio != 1.0 and self.mode == "runtime":
            problems.append(
                "sync_ratio models encoded-upload bytes in the simulator "
                "only; the runtime measures real encoded bytes — drop "
                "sync_ratio or use mode='simulate'"
            )
        if (
            self.sync.stream
            and self.sync.topology == "star"
            and self.sync.encoding == "dense"
            and self.sync.compress == "none"
        ):
            problems.append(
                "sync_stream=True with every other sync knob at the "
                "star/dense defaults streams partials through the legacy "
                "all-to-head trunk; pair it with sync=SyncOptions(stream=True,"
                " topology='tree') or an encoding/compress choice, or drop it"
            )
        if self.monitor.enabled and self.mode == "serial":
            problems.append(
                "monitor_interval > 0 in serial mode takes no samples — "
                "there is no cluster to watch; drop the monitor options or "
                "use mode='runtime'/'simulate'"
            )
        if self.converge is not None and self.iterations == 1:
            problems.append(
                "converge is only checked between passes; iterations=1 never "
                "checks it — raise iterations or drop converge"
            )
        if self.resilience.retry is not None and self.mode == "simulate":
            problems.append(
                "retry policies govern real read paths; the simulator models "
                "latency/slow degradations but never retries — drop retry or "
                "use mode='runtime'/'serial'"
            )
        if self.slave_mode == "process" and self.mode != "runtime":
            problems.append(
                f"slave_mode='process' selects the runtime's shared-memory "
                f"substrate and does nothing in {self.mode!r} mode; drop it "
                f"or use mode='runtime'"
            )
        if self.scale.enabled and self.mode == "serial":
            problems.append(
                "autoscale/revocation manage a cloud slave fleet; serial "
                "mode has no slaves — drop scale=ScaleOptions(...) or use "
                "mode='runtime'/'simulate'"
            )
        if self.scale.enabled and self.compute.cloud_cores < 1:
            problems.append(
                "autoscale/revocation act on the cloud cluster, but "
                "compute.cloud_cores=0 builds none; give the cloud at least "
                "one core or drop the scale options"
            )
        if (
            self.scale.deadline is not None or self.scale.budget is not None
        ) and not self.scale.autoscale:
            problems.append(
                "deadline/budget are autoscaler targets; set "
                "scale=ScaleOptions(autoscale=True, ...) for them to steer "
                "anything"
            )
        if problems:
            raise ConfigurationError(
                "conflicting RunConfig knobs:\n  - " + "\n  - ".join(problems)
            )
        return self

    def make_cache(
        self, *, with_hooks: bool = True
    ) -> ChunkCache | None:
        """Build the configured chunk cache, or ``None`` when disabled."""
        if self.cache.bytes <= 0:
            return None
        if with_hooks:
            return ChunkCache(
                self.cache.bytes, trace=self.trace, metrics=self.metrics
            )
        return ChunkCache(self.cache.bytes)

    @property
    def fault_spec(self) -> FaultSpec | None:
        """The parsed fault spec, or ``None`` when no faults are configured."""
        spec = self.resilience.faults
        if spec is None or not spec.active:
            return None
        return spec

    @property
    def sync_spec(self) -> SyncSpec | None:
        """The configured sync plan, or ``None`` when every knob is at the
        legacy star/dense/barrier default (no sync machinery is built)."""
        spec = self.sync.to_spec()
        return None if spec.is_default else spec

    @property
    def effective_retry(self) -> RetryPolicy | None:
        """The retry policy actually applied: the configured one, or the
        default policy when faults are active and none was given."""
        if self.resilience.retry is not None:
            return self.resilience.retry
        if self.fault_spec is not None:
            return RetryPolicy()
        return None


@dataclass
class RunResult:
    """Common result shape across every mode.

    ``value`` is the application result (``None`` in simulate mode — the
    simulator models costs, not bytes). ``telemetry`` is filled by serial
    and runtime modes; ``sim_report`` by simulate mode. ``wall_seconds``
    is measured wall-clock for executable modes and the simulated makespan
    for simulate mode; for iterative runs both cover every pass.
    ``passes`` counts the passes actually run (< ``config.iterations``
    when ``converge`` stopped the run early). ``samples`` is the run's
    health timeline — :class:`~repro.obs.live.RunSample` snapshots taken
    every ``config.monitor_interval`` seconds — empty unless monitoring
    was enabled (runtime samples live, simulate reconstructs from the
    trace, serial never samples).
    """

    value: Any
    mode: str
    wall_seconds: float
    telemetry: RunTelemetry | None = None
    sim_report: SimReport | None = None
    passes: int = 1
    samples: list[RunSample] = field(default_factory=list)


def _resolve_bundle(
    app: str | AppBundle, dataset: DatasetSpec, config: RunConfig
) -> AppBundle:
    if isinstance(app, AppBundle):
        return app
    return make_bundle(
        app, dataset.total_units, seed=config.seed, **dict(config.app_params)
    )


def _build_stores(
    bundle: AppBundle, dataset: DatasetSpec, config: RunConfig
):
    """Materialize the dataset into fresh in-memory stores.

    Returns ``(index, stores)`` with every store wrapped in a
    :class:`FaultInjector` when the config carries an active fault spec
    (the bytes are written through the clean stores first — faults only
    ever hit the read path).
    """
    base: dict[str, StorageService] = {
        LOCAL_SITE: ObjectStore(),
        CLOUD_SITE: ObjectStore(),
    }
    index = build_dataset(
        dataset, config.placement, bundle.schema, bundle.block_fn, base
    )
    spec = config.fault_spec
    if spec is None:
        return index, base
    stores = {
        site: FaultInjector(store, spec, trace=config.trace)
        for site, store in base.items()
    }
    return index, stores


def _default_distance(a: Any, b: Any) -> float:
    """Max absolute difference — the convergence metric for array results."""
    return float(np.max(np.abs(np.asarray(a) - np.asarray(b))))


def _update_hook(bundle: AppBundle, config: RunConfig) -> Callable[[Any], None]:
    """The app's between-pass ``update`` hook; required once iterating."""
    hook = getattr(bundle.app, "update", None)
    if hook is None:
        raise ConfigurationError(
            f"app {bundle.profile.key!r} has no update() hook; iterative "
            f"execution (iterations={config.iterations}) needs one to feed "
            f"each pass's result back (kmeans and pagerank define it)"
        )
    return hook


def _iterate(
    config: RunConfig, run_pass: Callable[[], Any], update: Callable[[Any], None]
) -> tuple[Any, int]:
    """Shared pass loop: run, converge-check, feed back. Returns
    ``(final_value, passes_run)`` — same contract as
    :func:`repro.runtime.driver.run_iterative`."""
    previous: Any = None
    value: Any = None
    passes = 0
    for _ in range(config.iterations):
        value = run_pass()
        passes += 1
        if (
            config.converge is not None
            and previous is not None
            and _default_distance(previous, value) <= config.converge
        ):
            break
        previous = value
        update(value)
    return value, passes


def _run_serial(
    app: str | AppBundle, dataset: DatasetSpec, config: RunConfig
) -> RunResult:
    bundle = _resolve_bundle(app, dataset, config)
    index, stores = _build_stores(bundle, dataset, config)
    cache = config.make_cache()
    reader = DatasetReader(
        index,
        stores,
        retrieval_threads=1,
        trace=config.trace,
        retry=config.effective_retry,
        metrics=config.metrics,
        cache=cache,
    )
    # The cache only engages for cross-site reads; the serial oracle has no
    # home site, so give it one whenever a cache is configured — cloud-placed
    # chunks then count as remote and get cached like the runtime's local
    # cluster would cache them.
    from_site = LOCAL_SITE if cache is not None else None
    iterating = config.iterations > 1
    update = _update_hook(bundle, config) if iterating else (lambda value: None)

    def run_pass() -> Any:
        return run_serial(
            bundle.app,
            reader.read_all_chunks(from_site=from_site),
            units_per_group=config.tuning.units_per_group,
        )

    started = time.perf_counter()
    value, passes = _iterate(config, run_pass, update)
    wall = time.perf_counter() - started
    telemetry = RunTelemetry(wall_seconds=wall)
    resilience = reader.resilience
    telemetry.retries = resilience.retries
    telemetry.hedges = resilience.hedges
    telemetry.hedge_wins = resilience.hedge_wins
    telemetry.timeouts = resilience.timeouts
    telemetry.faults_injected = sum(
        store.counters.total
        for store in stores.values()
        if isinstance(store, FaultInjector)
    )
    if cache is not None:
        stats = cache.stats
        telemetry.cache_hits = stats.hits
        telemetry.cache_misses = stats.misses
        telemetry.cache_evictions = stats.evictions
        telemetry.bytes_saved = stats.bytes_saved
    telemetry.zero_copy_reads = reader.zero_copy_reads
    telemetry.bytes_copied = reader.bytes_copied
    return RunResult(
        value=value,
        mode="serial",
        wall_seconds=wall,
        telemetry=telemetry,
        passes=passes,
    )


def _run_simulate(
    app: str | AppBundle, dataset: DatasetSpec, config: RunConfig
) -> RunResult:
    key = app if isinstance(app, str) else app.profile.key
    experiment = ExperimentConfig(
        name=config.name,
        app=key,
        dataset=dataset,
        placement=config.placement,
        compute=config.compute,
        tuning=config.tuning,
        seed=config.seed,
    )
    profile = None if isinstance(app, str) else app.profile
    # The simulator models costs, not bytes: an iterative run is N passes
    # over the same placement with the chunk cache carried across passes
    # (pass 2 of a cached run pays no cross-site transfers). There is no
    # value to feed back, so no update() hook is involved.
    cache = config.make_cache()
    report: SimReport | None = None
    total_makespan = 0.0
    hits = misses = faults = 0
    sim = CloudBurstSimulation(
        experiment,
        profile=profile,
        trace=config.trace,
        cache=cache,
        sync=config.sync_spec,
        faults=config.fault_spec,
        scale=config.scale,
    )
    added = revoked = 0
    dollars = 0.0
    for _ in range(config.iterations):
        report = sim.run()
        total_makespan += report.makespan
        hits += report.cache_hits
        misses += report.cache_misses
        faults += report.faults_injected
        added += report.slaves_added
        revoked += report.slaves_revoked
        dollars += report.dollars_spent
    assert report is not None
    report.cache_hits = hits
    report.cache_misses = misses
    report.faults_injected = faults
    report.slaves_added = added
    report.slaves_revoked = revoked
    report.dollars_spent = dollars
    samples: list[RunSample] = []
    if config.monitor_interval > 0 and config.trace is not None:
        # Virtual time: "live" sampling is a post-hoc replay of the trace.
        samples = samples_from_log(config.trace, config.monitor_interval)
        if config.on_sample is not None:
            for sample in samples:
                config.on_sample(sample)
    return RunResult(
        value=None,
        mode="simulate",
        wall_seconds=total_makespan,
        sim_report=report,
        passes=config.iterations,
        samples=samples,
    )


def _run_runtime(
    app: str | AppBundle, dataset: DatasetSpec, config: RunConfig
) -> RunResult:
    bundle = _resolve_bundle(app, dataset, config)
    index, stores = _build_stores(bundle, dataset, config)
    monitor: RunMonitor | None = None
    if config.monitor_interval > 0:
        monitor = RunMonitor(
            config.monitor_interval, capacity=config.monitor_capacity
        )
        if config.on_sample is not None:
            monitor.subscribe(config.on_sample)
    runtime = CloudBurstingRuntime(
        bundle.app,
        index,
        stores,
        config.compute,
        tuning=config.tuning,
        seed=config.seed,
        trace=config.trace,
        metrics=config.metrics,
        join_timeout=config.join_timeout,
        retry_policy=config.effective_retry,
        cache=config.make_cache(),
        prefetch=config.prefetch,
        sync=config.sync_spec,
        monitor=monitor,
        slave_mode=config.slave_mode,
        scale=config.scale,
    )
    iterating = config.iterations > 1
    update = _update_hook(bundle, config) if iterating else (lambda value: None)

    # Each pass produces its own telemetry; fold the additive counters into
    # the final pass's record so the result reports whole-run totals.
    _ADDITIVE = (
        "retries", "hedges", "hedge_wins", "timeouts", "circuit_opens",
        "faults_injected", "slaves_failed", "jobs_reexecuted",
        "cache_hits", "cache_misses", "cache_evictions", "bytes_saved",
        "prefetches", "sync_uploads", "sync_bytes_sent", "sync_bytes_saved",
        "sync_partial_merges", "zero_copy_reads", "bytes_copied",
        "slaves_added", "slaves_revoked", "dollars_spent",
    )
    totals = {name: 0 for name in _ADDITIVE}
    total_wall = 0.0
    last: RuntimeResult | None = None

    def run_pass() -> Any:
        nonlocal total_wall, last
        last = runtime.run()
        total_wall += last.telemetry.wall_seconds
        for name in _ADDITIVE:
            totals[name] += getattr(last.telemetry, name)
        return last.value

    value, passes = _iterate(config, run_pass, update)
    assert last is not None
    telemetry = last.telemetry
    telemetry.wall_seconds = total_wall
    for name in _ADDITIVE:
        setattr(telemetry, name, totals[name])
    return RunResult(
        value=value,
        mode="runtime",
        wall_seconds=total_wall,
        telemetry=telemetry,
        passes=passes,
        samples=monitor.samples() if monitor is not None else [],
    )


_ENGINES = {
    "serial": _run_serial,
    "simulate": _run_simulate,
    "runtime": _run_runtime,
}


def run_direct(
    app: str | AppBundle,
    dataset: DatasetSpec,
    config: RunConfig | None = None,
) -> RunResult:
    """Execute ``app`` over ``dataset`` on the caller's thread, no service.

    This is the pre-service dispatch: pick the engine ``config.mode``
    names and run it, nothing else. :func:`run` routes through a
    single-use :class:`~repro.service.JobService` and is pinned
    equivalent; the service's own workers execute submissions through
    this function.
    """
    config = config or RunConfig()
    return _ENGINES[config.mode](app, dataset, config)


def run(
    app: str | AppBundle,
    dataset: DatasetSpec,
    config: RunConfig | None = None,
) -> RunResult:
    """Execute ``app`` over ``dataset`` with the engine ``config`` selects.

    ``app`` is a registry key (``"knn"``, ``"wordcount"``, ...) or a
    pre-built :class:`~repro.apps.AppBundle`. ``dataset`` gives the data
    shape; serial and runtime modes materialize it into in-memory stores
    (deterministically from ``config.seed``), simulate mode only models
    it. With no config, a 50/50 placement runtime run on 2+2 cores.

    Since the service redesign this is sugar for ``submit(...).result()``
    on a single-use inline :class:`~repro.service.JobService` — one front
    door, one admission path, whether you run one job or a thousand.
    ``validate=False`` on the submission keeps the legacy permissiveness
    (knobs other modes ignore stay ignored rather than failing fast);
    call ``config.validate()`` yourself or use a real service for the
    strict path.
    """
    from .service import JobService  # local import: service imports facade

    with JobService(workers=0) as service:
        handle = service.submit(app, dataset, config, validate=False)
        return handle.result()
