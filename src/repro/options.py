"""Structured option families for :class:`repro.RunConfig`.

``RunConfig`` grew past twenty flat knobs. This module groups them into
four coherent, individually-validated spec dataclasses:

* :class:`CacheOptions` — the chunk cache + prefetch pipeline
  (``cache_bytes``/``prefetch``);
* :class:`SyncOptions` — the global-reduction WAN levers
  (``sync_encoding``/``sync_compress``/``sync_topology``/``sync_stream``/
  ``sync_watermark``/``sync_fanout``/``sync_ratio``);
* :class:`MonitorOptions` — live run-health sampling
  (``monitor_interval``/``monitor_capacity``/``on_sample``);
* :class:`ResilienceOptions` — fault injection, retry policy and the
  join deadline (``faults``/``retry``/``join_timeout``).

New code writes::

    RunConfig(
        cache=CacheOptions(bytes=1 << 26, prefetch=True),
        sync=SyncOptions(encoding="delta", compress="zlib", topology="tree"),
        monitor=MonitorOptions(interval=0.5, on_sample=print),
        resilience=ResilienceOptions(faults="transient=0.1,seed=7"),
    )

Every legacy flat kwarg keeps working through back-compat shims on
``RunConfig`` that emit :class:`DeprecationWarning`; flat and nested
construction are pinned equivalent in ``tests/test_options.py``. The
flat attribute *reads* (``config.cache_bytes`` and friends) remain
first-class and never warn — only flat construction is deprecated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .core.sync import SyncSpec
from .errors import ConfigurationError
from .resilience.faults import FaultSpec
from .resilience.retry import RetryPolicy
from .scale.revocation import RevocationSpec

__all__ = [
    "CacheOptions",
    "SyncOptions",
    "MonitorOptions",
    "ResilienceOptions",
    "ScaleOptions",
]


@dataclass(frozen=True)
class CacheOptions:
    """Chunk-cache + prefetch configuration.

    ``bytes`` is the byte budget for the per-node
    :class:`~repro.cache.ChunkCache` (``0`` builds no cache machinery);
    ``prefetch`` overlaps each slave's next fetch with its current
    reduction (runtime mode only).
    """

    bytes: int = 0
    prefetch: bool = False

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ConfigurationError("cache_bytes cannot be negative")

    #: nested attribute -> legacy flat RunConfig kwarg.
    FLAT = {"bytes": "cache_bytes", "prefetch": "prefetch"}


@dataclass(frozen=True)
class SyncOptions:
    """Global-reduction sync configuration (:mod:`repro.core.sync`).

    The attribute names mirror the legacy flat knobs without their
    ``sync_`` prefix; :meth:`to_spec` converts to the
    :class:`~repro.core.sync.SyncSpec` both substrates execute. The
    defaults reproduce the paper's star/dense/barrier path with zero
    sync machinery.
    """

    encoding: str = "dense"
    compress: str = "none"
    topology: str = "star"
    stream: bool = False
    watermark: int = 8
    fanout: int = 2
    ratio: float = 1.0

    def __post_init__(self) -> None:
        # Building the spec validates every knob with the same messages
        # the runtime would raise; the result is cheap to rebuild.
        self.to_spec()

    def to_spec(self) -> SyncSpec:
        return SyncSpec(
            topology=self.topology,
            encoding=self.encoding,
            compress=self.compress,
            stream=self.stream,
            watermark=self.watermark,
            fanout=self.fanout,
            sim_ratio=self.ratio,
        )

    @property
    def is_default(self) -> bool:
        """True when the legacy zero-machinery path would run."""
        return self.to_spec().is_default

    FLAT = {
        "encoding": "sync_encoding",
        "compress": "sync_compress",
        "topology": "sync_topology",
        "stream": "sync_stream",
        "watermark": "sync_watermark",
        "fanout": "sync_fanout",
        "ratio": "sync_ratio",
    }


@dataclass(frozen=True)
class MonitorOptions:
    """Live run-health sampling (:mod:`repro.obs.live`).

    ``interval`` seconds between :class:`~repro.obs.live.RunSample`
    snapshots (``0.0`` builds no monitoring machinery), ``capacity``
    bounds the retained sample ring, ``on_sample`` is called with every
    sample as it lands.
    """

    interval: float = 0.0
    capacity: int = 512
    on_sample: Callable[[Any], None] | None = None

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ConfigurationError("monitor_interval cannot be negative")
        if self.capacity <= 0:
            raise ConfigurationError("monitor_capacity must be positive")
        if self.on_sample is not None and self.interval <= 0:
            raise ConfigurationError(
                "on_sample needs monitor_interval > 0 to ever be called"
            )

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    FLAT = {
        "interval": "monitor_interval",
        "capacity": "monitor_capacity",
        "on_sample": "on_sample",
    }


@dataclass(frozen=True)
class ResilienceOptions:
    """Fault injection, retry policy, and the run join deadline.

    ``faults`` accepts a :class:`~repro.resilience.FaultSpec` or its
    text form (``"transient=0.1,seed=7"``) and is normalized to the
    parsed spec. ``retry`` defaults to ``RetryPolicy()`` whenever faults
    are active and none was given (see
    :attr:`repro.RunConfig.effective_retry`). ``join_timeout`` bounds
    every head/master/slave join in the threaded runtime.
    """

    faults: FaultSpec | str | None = None
    retry: RetryPolicy | None = None
    join_timeout: float = 600.0

    def __post_init__(self) -> None:
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", FaultSpec.parse(self.faults))
        if self.join_timeout <= 0:
            raise ConfigurationError("join_timeout must be positive")

    FLAT = {
        "faults": "faults",
        "retry": "retry",
        "join_timeout": "join_timeout",
    }


@dataclass(frozen=True)
class ScaleOptions:
    """Elastic cloud bursting (:mod:`repro.scale`).

    ``autoscale`` turns the controller on; ``deadline`` (seconds of run
    time) and ``budget`` (dollars) are the targets it steers toward, and
    the cloud fleet stays inside ``[min_slaves, max_slaves]``. ``interval``
    is how often the controller observes (it drives an internal
    :class:`~repro.obs.live.RunMonitor` when none is configured);
    ``damping`` suppresses direction reversals inside its window.
    ``revocation`` accepts a :class:`~repro.scale.RevocationSpec` or its
    text form (``"rate=0.05,seed=7,provision=30"``) and is normalized to
    the parsed spec; revocation works with or without ``autoscale``.
    ``dollars_per_slave_hour`` defaults to the paper-era EC2 large
    instance price per core (:data:`repro.bench.cost.AWS_2011`).
    """

    autoscale: bool = False
    deadline: float | None = None
    budget: float | None = None
    min_slaves: int = 1
    max_slaves: int = 8
    interval: float = 0.2
    damping: float = 1.0
    revocation: RevocationSpec | str | None = None
    dollars_per_slave_hour: float = 0.17

    def __post_init__(self) -> None:
        if isinstance(self.revocation, str):
            object.__setattr__(
                self, "revocation", RevocationSpec.parse(self.revocation)
            )
        if self.min_slaves < 1:
            raise ConfigurationError("min_slaves must be >= 1")
        if self.max_slaves < self.min_slaves:
            raise ConfigurationError("max_slaves must be >= min_slaves")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError("deadline must be positive")
        if self.budget is not None and self.budget <= 0:
            raise ConfigurationError("budget must be positive")
        if self.interval <= 0:
            raise ConfigurationError("scale interval must be positive")
        if self.damping < 0:
            raise ConfigurationError("damping cannot be negative")
        if self.dollars_per_slave_hour < 0:
            raise ConfigurationError("dollars_per_slave_hour cannot be negative")

    @property
    def enabled(self) -> bool:
        """True when the run needs any scaling machinery at all."""
        return self.autoscale or self.revocation_spec is not None

    @property
    def revocation_spec(self) -> RevocationSpec | None:
        """The parsed revocation spec, or ``None`` when inactive."""
        spec = self.revocation
        if isinstance(spec, RevocationSpec) and spec.active:
            return spec
        return None

    #: No legacy flat kwargs: ScaleOptions postdates the flat era.
    FLAT = {}
