"""Structured option families for :class:`repro.RunConfig`.

``RunConfig`` grew past twenty flat knobs. This module groups them into
four coherent, individually-validated spec dataclasses:

* :class:`CacheOptions` — the chunk cache + prefetch pipeline
  (``cache_bytes``/``prefetch``);
* :class:`SyncOptions` — the global-reduction WAN levers
  (``sync_encoding``/``sync_compress``/``sync_topology``/``sync_stream``/
  ``sync_watermark``/``sync_fanout``/``sync_ratio``);
* :class:`MonitorOptions` — live run-health sampling
  (``monitor_interval``/``monitor_capacity``/``on_sample``);
* :class:`ResilienceOptions` — fault injection, retry policy and the
  join deadline (``faults``/``retry``/``join_timeout``).

New code writes::

    RunConfig(
        cache=CacheOptions(bytes=1 << 26, prefetch=True),
        sync=SyncOptions(encoding="delta", compress="zlib", topology="tree"),
        monitor=MonitorOptions(interval=0.5, on_sample=print),
        resilience=ResilienceOptions(faults="transient=0.1,seed=7"),
    )

Every legacy flat kwarg keeps working through back-compat shims on
``RunConfig`` that emit :class:`DeprecationWarning`; flat and nested
construction are pinned equivalent in ``tests/test_options.py``. The
flat attribute *reads* (``config.cache_bytes`` and friends) remain
first-class and never warn — only flat construction is deprecated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .core.sync import SyncSpec
from .errors import ConfigurationError
from .resilience.faults import FaultSpec
from .resilience.retry import RetryPolicy

__all__ = [
    "CacheOptions",
    "SyncOptions",
    "MonitorOptions",
    "ResilienceOptions",
]


@dataclass(frozen=True)
class CacheOptions:
    """Chunk-cache + prefetch configuration.

    ``bytes`` is the byte budget for the per-node
    :class:`~repro.cache.ChunkCache` (``0`` builds no cache machinery);
    ``prefetch`` overlaps each slave's next fetch with its current
    reduction (runtime mode only).
    """

    bytes: int = 0
    prefetch: bool = False

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ConfigurationError("cache_bytes cannot be negative")

    #: nested attribute -> legacy flat RunConfig kwarg.
    FLAT = {"bytes": "cache_bytes", "prefetch": "prefetch"}


@dataclass(frozen=True)
class SyncOptions:
    """Global-reduction sync configuration (:mod:`repro.core.sync`).

    The attribute names mirror the legacy flat knobs without their
    ``sync_`` prefix; :meth:`to_spec` converts to the
    :class:`~repro.core.sync.SyncSpec` both substrates execute. The
    defaults reproduce the paper's star/dense/barrier path with zero
    sync machinery.
    """

    encoding: str = "dense"
    compress: str = "none"
    topology: str = "star"
    stream: bool = False
    watermark: int = 8
    fanout: int = 2
    ratio: float = 1.0

    def __post_init__(self) -> None:
        # Building the spec validates every knob with the same messages
        # the runtime would raise; the result is cheap to rebuild.
        self.to_spec()

    def to_spec(self) -> SyncSpec:
        return SyncSpec(
            topology=self.topology,
            encoding=self.encoding,
            compress=self.compress,
            stream=self.stream,
            watermark=self.watermark,
            fanout=self.fanout,
            sim_ratio=self.ratio,
        )

    @property
    def is_default(self) -> bool:
        """True when the legacy zero-machinery path would run."""
        return self.to_spec().is_default

    FLAT = {
        "encoding": "sync_encoding",
        "compress": "sync_compress",
        "topology": "sync_topology",
        "stream": "sync_stream",
        "watermark": "sync_watermark",
        "fanout": "sync_fanout",
        "ratio": "sync_ratio",
    }


@dataclass(frozen=True)
class MonitorOptions:
    """Live run-health sampling (:mod:`repro.obs.live`).

    ``interval`` seconds between :class:`~repro.obs.live.RunSample`
    snapshots (``0.0`` builds no monitoring machinery), ``capacity``
    bounds the retained sample ring, ``on_sample`` is called with every
    sample as it lands.
    """

    interval: float = 0.0
    capacity: int = 512
    on_sample: Callable[[Any], None] | None = None

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ConfigurationError("monitor_interval cannot be negative")
        if self.capacity <= 0:
            raise ConfigurationError("monitor_capacity must be positive")
        if self.on_sample is not None and self.interval <= 0:
            raise ConfigurationError(
                "on_sample needs monitor_interval > 0 to ever be called"
            )

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    FLAT = {
        "interval": "monitor_interval",
        "capacity": "monitor_capacity",
        "on_sample": "on_sample",
    }


@dataclass(frozen=True)
class ResilienceOptions:
    """Fault injection, retry policy, and the run join deadline.

    ``faults`` accepts a :class:`~repro.resilience.FaultSpec` or its
    text form (``"transient=0.1,seed=7"``) and is normalized to the
    parsed spec. ``retry`` defaults to ``RetryPolicy()`` whenever faults
    are active and none was given (see
    :attr:`repro.RunConfig.effective_retry`). ``join_timeout`` bounds
    every head/master/slave join in the threaded runtime.
    """

    faults: FaultSpec | str | None = None
    retry: RetryPolicy | None = None
    join_timeout: float = 600.0

    def __post_init__(self) -> None:
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", FaultSpec.parse(self.faults))
        if self.join_timeout <= 0:
            raise ConfigurationError("join_timeout must be positive")

    FLAT = {
        "faults": "faults",
        "retry": "retry",
        "join_timeout": "join_timeout",
    }
