"""Unit and property tests for reduction objects.

The key property — the paper's explicit API contract — is that merge order
does not change the result.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import (
    ArrayReduction,
    DictReduction,
    ReductionObject,
    ScalarReduction,
    StructReduction,
    TopKReduction,
    from_bytes,
    merge_all,
)
from repro.errors import ReductionError


# -- ArrayReduction -----------------------------------------------------------


def test_array_sum_merge():
    a = ArrayReduction((3,), data=np.array([1.0, 2.0, 3.0]))
    b = ArrayReduction((3,), data=np.array([10.0, 20.0, 30.0]))
    a.merge(b)
    np.testing.assert_allclose(a.value(), [11.0, 22.0, 33.0])
    # b untouched
    np.testing.assert_allclose(b.value(), [10.0, 20.0, 30.0])


def test_array_min_max_identity():
    lo = ArrayReduction((2,), op="min")
    hi = ArrayReduction((2,), op="max")
    assert np.all(np.isinf(lo.value()))
    lo.merge(ArrayReduction((2,), op="min", data=np.array([3.0, -1.0])))
    hi.merge(ArrayReduction((2,), op="max", data=np.array([3.0, -1.0])))
    np.testing.assert_allclose(lo.value(), [3.0, -1.0])
    np.testing.assert_allclose(hi.value(), [3.0, -1.0])


def test_array_shape_mismatch_rejected():
    a = ArrayReduction((3,))
    with pytest.raises(ReductionError):
        a.merge(ArrayReduction((4,)))
    with pytest.raises(ReductionError):
        a.merge(ArrayReduction((3,), op="min"))
    with pytest.raises(ReductionError):
        a.merge(ScalarReduction())


def test_array_unknown_op_rejected():
    with pytest.raises(ReductionError):
        ArrayReduction((2,), op="median")


def test_array_roundtrip():
    a = ArrayReduction((2, 3), dtype=np.float32, op="max")
    a.merge(ArrayReduction((2, 3), dtype=np.float32, op="max",
                           data=np.arange(6, dtype=np.float32).reshape(2, 3)))
    b = from_bytes(a.to_bytes())
    assert isinstance(b, ArrayReduction)
    assert b.op == "max"
    np.testing.assert_array_equal(a.value(), b.value())


# -- DictReduction ------------------------------------------------------------


def test_dict_add_and_merge():
    a = DictReduction("sum")
    a.add("x", 1)
    a.add("x", 2)
    b = DictReduction("sum", {"x": 10, "y": 5})
    a.merge(b)
    assert a.value() == {"x": 13, "y": 5}


def test_dict_combiner_mismatch():
    with pytest.raises(ReductionError):
        DictReduction("sum").merge(DictReduction("max"))


def test_dict_roundtrip():
    a = DictReduction("max", {"k": 7})
    b = from_bytes(a.to_bytes())
    assert isinstance(b, DictReduction)
    assert b.value() == {"k": 7}
    assert b.combiner_name == "max"


# -- TopKReduction ------------------------------------------------------------


def test_topk_keeps_k_smallest():
    t = TopKReduction(3)
    t.offer(np.array([5.0, 1.0, 9.0, 2.0]), np.array([50, 10, 90, 20]))
    assert t.value() == [(1.0, 10), (2.0, 20), (5.0, 50)]


def test_topk_tie_break_by_id():
    t = TopKReduction(2)
    t.offer(np.array([1.0, 1.0, 1.0]), np.array([30, 10, 20]))
    assert t.value() == [(1.0, 10), (1.0, 20)]


def test_topk_worst():
    t = TopKReduction(2)
    assert t.worst == float("inf")
    t.offer(np.array([3.0, 1.0]), np.array([3, 1]))
    assert t.worst == 3.0


def test_topk_merge_k_mismatch():
    with pytest.raises(ReductionError):
        TopKReduction(2).merge(TopKReduction(3))


def test_topk_requires_positive_k():
    with pytest.raises(ReductionError):
        TopKReduction(0)


def test_topk_roundtrip():
    t = TopKReduction(2)
    t.offer(np.array([2.0, 1.0]), np.array([2, 1]))
    u = from_bytes(t.to_bytes())
    assert isinstance(u, TopKReduction)
    assert u.value() == t.value()


# -- ScalarReduction ----------------------------------------------------------


@pytest.mark.parametrize(
    "combiner,values,expected",
    [("sum", [1.0, 2.0, 3.0], 6.0), ("min", [3.0, 1.0, 2.0], 1.0),
     ("max", [3.0, 1.0, 2.0], 3.0)],
)
def test_scalar_combiners(combiner, values, expected):
    s = ScalarReduction(combiner)
    for v in values:
        s.add(v)
    assert s.value() == expected


def test_scalar_roundtrip():
    s = ScalarReduction("min", initial=4.5)
    t = from_bytes(s.to_bytes())
    assert isinstance(t, ScalarReduction)
    assert t.value() == 4.5


# -- StructReduction ----------------------------------------------------------


def test_struct_merges_fieldwise():
    a = StructReduction({"s": ScalarReduction("sum", 1.0),
                         "m": ScalarReduction("max", 5.0)})
    b = StructReduction({"s": ScalarReduction("sum", 2.0),
                         "m": ScalarReduction("max", 3.0)})
    a.merge(b)
    assert a.value() == {"s": 3.0, "m": 5.0}


def test_struct_field_mismatch():
    a = StructReduction({"x": ScalarReduction()})
    b = StructReduction({"y": ScalarReduction()})
    with pytest.raises(ReductionError):
        a.merge(b)


def test_struct_empty_rejected():
    with pytest.raises(ReductionError):
        StructReduction({})


def test_struct_roundtrip():
    a = StructReduction({
        "arr": ArrayReduction((2,), data=np.array([1.0, 2.0])),
        "top": TopKReduction(1, np.array([0.5]), np.array([7])),
    })
    b = from_bytes(a.to_bytes())
    assert isinstance(b, StructReduction)
    np.testing.assert_array_equal(b["arr"].value(), [1.0, 2.0])
    assert b["top"].value() == [(0.5, 7)]


# -- merge_all ------------------------------------------------------------------


def test_merge_all_empty_rejected():
    with pytest.raises(ReductionError):
        merge_all([])


def test_merge_all_does_not_mutate_inputs():
    parts = [ScalarReduction("sum", float(i)) for i in range(4)]
    total = merge_all(parts)
    assert total.value() == 6.0
    assert [p.value() for p in parts] == [0.0, 1.0, 2.0, 3.0]


def test_from_bytes_rejects_garbage():
    with pytest.raises(ReductionError):
        from_bytes(b"")
    with pytest.raises(ReductionError):
        from_bytes(b"\x05\x00\x00\x00XXXXXjunk")


# -- property: merge order independence -------------------------------------------


@st.composite
def scalar_parts(draw):
    combiner = draw(st.sampled_from(["sum", "min", "max"]))
    values = draw(st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1,
        max_size=8))
    return combiner, values


@given(scalar_parts(), st.randoms(use_true_random=False))
def test_scalar_merge_order_independent(parts, rnd):
    combiner, values = parts
    objs = [ScalarReduction(combiner, v) for v in values]
    forward = merge_all(objs).value()
    shuffled = list(objs)
    rnd.shuffle(shuffled)
    assert merge_all(shuffled).value() == pytest.approx(forward, rel=1e-9, abs=1e-9)


@given(
    st.lists(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=6,
        ),
        min_size=1,
        max_size=5,
    ),
    st.integers(min_value=1, max_value=4),
    st.randoms(use_true_random=False),
)
def test_topk_merge_order_independent(batches, k, rnd):
    objs = []
    for batch in batches:
        t = TopKReduction(k)
        if batch:
            scores, ids = zip(*batch)
            t.offer(np.array(scores), np.array(ids))
        objs.append(t)
    forward = merge_all(objs).value()
    shuffled = list(objs)
    rnd.shuffle(shuffled)
    assert merge_all(shuffled).value() == forward


@given(
    st.lists(
        st.dictionaries(st.integers(0, 10), st.integers(-100, 100), max_size=5),
        min_size=1,
        max_size=5,
    ),
    st.randoms(use_true_random=False),
)
def test_dict_sum_merge_order_independent(dicts, rnd):
    objs = [DictReduction("sum", d) for d in dicts]
    forward = merge_all(objs).value()
    shuffled = list(objs)
    rnd.shuffle(shuffled)
    assert merge_all(shuffled).value() == forward


def test_dict_nbytes_cache_invalidates_on_mutation():
    """nbytes() memoizes the pickled size; add() and merge() must both
    drop the memo so accounting never reports a stale size."""
    import pickle

    d = DictReduction("sum", {"a": 1})
    first = d.nbytes()
    assert first == len(pickle.dumps(d.items, protocol=pickle.HIGHEST_PROTOCOL))
    assert d.nbytes() is not None and d._nbytes_cache == first  # memoized

    d.add("long-key-to-change-the-size", 2)
    assert d._nbytes_cache is None  # invalidated
    second = d.nbytes()
    assert second > first
    assert second == len(pickle.dumps(d.items, protocol=pickle.HIGHEST_PROTOCOL))

    other = DictReduction("sum", {"another-key": 3})
    d.merge(other)
    assert d.nbytes() == len(
        pickle.dumps(d.items, protocol=pickle.HIGHEST_PROTOCOL)
    )
