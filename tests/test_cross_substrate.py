"""Cross-substrate consistency: the dynamic simulator models must agree
with the closed-form network estimates in steady state, randomized
experiment configurations must preserve the global accounting
invariants, and — the golden-equivalence matrix — every application must
produce bit-identical reduction results across the serial oracle and the
threaded runtime under every cache/prefetch combination.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import (
    ComputeSpec,
    DatasetSpec,
    ExperimentConfig,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.network.topology import Link
from repro.network.transfer import parallel_transfer_time, transfer_time
from repro.sim.engine import Environment
from repro.sim.linkmodel import FairShareLink
from repro.sim.simulation import simulate


@settings(deadline=None, max_examples=30)
@given(
    bandwidth=st.floats(10.0, 1000.0),
    latency=st.floats(0.0, 1.0),
    cap=st.floats(1.0, 100.0),
    nbytes=st.integers(1, 100_000),
)
def test_single_flow_matches_closed_form(bandwidth, latency, cap, nbytes):
    """One flow alone on a link: the fluid model equals transfer_time()."""
    link_spec = Link("a", "b", bandwidth=bandwidth, latency=latency,
                     per_flow_cap=cap)
    expected = transfer_time(link_spec, nbytes)

    env = Environment()
    fluid = FairShareLink(env, bandwidth=bandwidth, latency=latency,
                          per_flow_cap=cap)
    finished = {}

    def go():
        yield fluid.transfer(nbytes)
        finished["t"] = env.now

    env.process(go())
    env.run()
    assert finished["t"] == pytest.approx(expected, rel=1e-9, abs=1e-6)


@settings(deadline=None, max_examples=20)
@given(
    bandwidth=st.floats(50.0, 500.0),
    cap=st.floats(5.0, 50.0),
    nbytes=st.integers(1000, 50_000),
    connections=st.integers(1, 16),
)
def test_parallel_fetch_matches_closed_form(bandwidth, cap, nbytes, connections):
    """N simultaneous near-equal flows: completion lands between the
    closed-form estimate for a perfectly even split (nothing beats the
    aggregate rate) and the estimate for every flow carrying the largest
    share (per-flow rates never drop as flows drain, so the last —
    largest — flow can only finish sooner than that)."""
    link_spec = Link("a", "b", bandwidth=bandwidth, latency=0.0,
                     per_flow_cap=cap)
    expected = parallel_transfer_time(link_spec, nbytes, connections)
    largest = -(-nbytes // connections)  # plan_ranges-style 1-byte skew
    upper = parallel_transfer_time(
        link_spec, largest * connections, connections
    )

    env = Environment()
    fluid = FairShareLink(env, bandwidth=bandwidth, per_flow_cap=cap)
    share, remainder = divmod(nbytes, connections)
    events = [
        fluid.transfer(share + (1 if i < remainder else 0))
        for i in range(connections)
    ]
    done = env.all_of(events)
    env.run(done)
    assert expected - 1e-9 <= env.now <= upper * (1 + 1e-9)


@settings(deadline=None, max_examples=10)
@given(
    files=st.integers(2, 8),
    chunks=st.integers(1, 4),
    fraction=st.floats(0.0, 1.0),
    local_cores=st.integers(0, 6),
    cloud_cores=st.integers(0, 6),
    seed=st.integers(0, 10_000),
)
def test_random_configs_preserve_invariants(
    files, chunks, fraction, local_cores, cloud_cores, seed
):
    """Any valid configuration: every job processed once, accounting holds."""
    if local_cores + cloud_cores == 0:
        local_cores = 1
    chunk_bytes = 64 * 1024
    config = ExperimentConfig(
        name="fuzz",
        app="knn",
        dataset=DatasetSpec(
            total_bytes=files * chunks * chunk_bytes,
            num_files=files,
            chunk_bytes=chunk_bytes,
            record_bytes=4,
        ),
        placement=PlacementSpec(local_fraction=fraction),
        compute=ComputeSpec(local_cores=local_cores, cloud_cores=cloud_cores),
        tuning=MiddlewareTuning(job_group_size=3, pool_low_water=1),
        seed=seed,
    )
    report = simulate(config)
    report.validate()
    assert report.total_jobs == files * chunks
    for cluster in report.clusters.values():
        assert 0 <= cluster.jobs_stolen <= cluster.jobs_processed


# -- Golden-equivalence matrix ----------------------------------------------
#
# Every application, serial oracle vs threaded runtime, under every
# cache/prefetch combination: integer and dict reductions must be
# bit-identical; float reductions must agree to the last few ulps (the
# job-to-slave partition is scheduling-dependent and float addition is
# not associative). Sim rows can't compare values — the simulator models
# costs, not bytes — so they assert the accounting invariants plus the
# cache bookkeeping instead.

GOLDEN_APPS = ("histogram", "kmeans", "knn", "moments", "pagerank", "wordcount")

#: (cache_bytes, prefetch) corners of the feature matrix.
CACHE_MATRIX = (
    pytest.param(0, False, id="plain"),
    pytest.param(1 << 22, False, id="cache"),
    pytest.param(0, True, id="prefetch"),
    pytest.param(1 << 22, True, id="cache+prefetch"),
)


def _golden_dataset(app: str) -> DatasetSpec:
    units = 1024  # 16 chunks of 64 units each
    # The bundle's schema is authoritative for the record size (pagerank's
    # rows scale with the node count, so the static profile can't be used).
    rb = repro.make_bundle(app, units).schema.record_bytes
    return DatasetSpec(
        total_bytes=units * rb,
        num_files=4,
        chunk_bytes=(units // 16) * rb,
        record_bytes=rb,
    )


def _assert_same_value(a, b) -> None:
    if isinstance(a, np.ndarray) and np.issubdtype(a.dtype, np.floating):
        # Which slave sums which jobs varies with scheduling, and float
        # addition isn't associative — demand agreement to the last few
        # ulps rather than bit-identity.
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-15)
    elif isinstance(a, np.ndarray):
        np.testing.assert_array_equal(a, b)  # integer reductions: exact
    elif isinstance(a, dict):
        assert a.keys() == b.keys()
        for key, value in a.items():
            if isinstance(value, float):
                assert b[key] == pytest.approx(value, rel=1e-12)
            else:
                assert b[key] == value
    else:
        assert a == b


_golden_baselines: dict[str, object] = {}


def _baseline(app: str):
    """Serial-oracle result, computed once per app (fresh bundle per call,
    so registry apps stay deterministic across the whole matrix)."""
    if app not in _golden_baselines:
        _golden_baselines[app] = repro.run(
            app, _golden_dataset(app), repro.RunConfig(mode="serial")
        ).value
    return _golden_baselines[app]


@pytest.mark.parametrize("cache_bytes,prefetch", CACHE_MATRIX)
@pytest.mark.parametrize("app", GOLDEN_APPS)
def test_golden_matrix_runtime_matches_serial(app, cache_bytes, prefetch):
    config = repro.RunConfig(
        mode="runtime", cache_bytes=cache_bytes, prefetch=prefetch
    )
    result = repro.run(app, _golden_dataset(app), config)
    _assert_same_value(_baseline(app), result.value)
    if prefetch:
        assert result.telemetry.prefetches > 0
    if cache_bytes == 0:
        # Disabled cache constructs no accounting at all.
        assert result.telemetry.cache_hits == 0
        assert result.telemetry.cache_misses == 0


@pytest.mark.parametrize("app", GOLDEN_APPS)
@pytest.mark.parametrize("cache_bytes", [0, 1 << 30])
def test_golden_matrix_simulator_stays_consistent(app, cache_bytes):
    config = repro.RunConfig(mode="simulate", cache_bytes=cache_bytes,
                             iterations=2)
    result = repro.run(app, _golden_dataset(app), config)
    report = result.sim_report
    report.validate()
    if cache_bytes:
        # Iteration 2 pays no cross-site transfer the cache already holds.
        assert report.cache_hits >= report.cache_misses
    else:
        assert report.cache_hits == 0 and report.cache_misses == 0


#: Every sync_encoding x sync_topology x streaming combination. The
#: dense/star/barrier corner (with compress "none") is the default spec —
#: it runs the legacy path with zero sync machinery, and the matrix pins
#: that it still matches the oracle and reports no sync accounting.
SYNC_MATRIX = tuple(
    pytest.param(
        encoding, topology, stream,
        id=f"{encoding}-{topology}-{'stream' if stream else 'barrier'}",
    )
    for encoding in ("dense", "sparse", "delta", "auto")
    for topology in ("star", "tree", "ring")
    for stream in (False, True)
)


@pytest.mark.parametrize("encoding,topology,stream", SYNC_MATRIX)
@pytest.mark.parametrize("app", GOLDEN_APPS)
def test_golden_matrix_sync_matches_serial(app, encoding, topology, stream):
    config = repro.RunConfig(
        mode="runtime",
        sync_encoding=encoding,
        sync_topology=topology,
        sync_stream=stream,
        sync_compress="zlib" if stream else "none",
        sync_watermark=2,
    )
    result = repro.run(app, _golden_dataset(app), config)
    _assert_same_value(_baseline(app), result.value)
    t = result.telemetry
    if config.sync_spec is None:
        # The default spec constructs no sync machinery at all.
        assert t.sync_uploads == 0 and t.sync_partial_merges == 0
    else:
        assert t.sync_uploads >= 1
        assert t.sync_bytes_sent > 0
        if stream:
            assert t.sync_partial_merges > 0


def test_golden_matrix_iterative_pagerank_delta():
    """Three pagerank power iterations with the full WAN-shrinking stack
    (delta+zlib over a tree, streamed partials) end in the same ranks as
    the serial oracle, and the persistent codec saves wire bytes."""
    dataset = _golden_dataset("pagerank")
    serial = repro.run(
        "pagerank", dataset, repro.RunConfig(mode="serial", iterations=3)
    )
    runtime = repro.run(
        "pagerank", dataset,
        repro.RunConfig(mode="runtime", iterations=3,
                        sync_encoding="delta", sync_compress="zlib",
                        sync_topology="tree", sync_stream=True),
    )
    assert serial.passes == runtime.passes == 3
    _assert_same_value(serial.value, runtime.value)
    assert runtime.telemetry.sync_bytes_saved > 0


# -- Process substrate (GIL-free slaves) ------------------------------------
#
# The same golden matrix extended to slave_mode="process": decode + local
# reduction run in worker processes over shared memory, and the results
# must stay indistinguishable from the threaded runtime and the oracle.


@pytest.mark.parametrize("app", GOLDEN_APPS)
def test_golden_matrix_process_matches_serial(app):
    config = repro.RunConfig(mode="runtime", slave_mode="process")
    result = repro.run(app, _golden_dataset(app), config)
    _assert_same_value(_baseline(app), result.value)


def test_golden_matrix_process_chunk_merge():
    """The chunk-merge sharing discipline (worker returns a scratch robj
    per chunk, the proxy folds it in-process) gives the same answer."""
    from repro.apps import make_bundle
    from repro.data.dataset import build_dataset
    from repro.runtime.driver import CloudBurstingRuntime
    from repro.storage.objectstore import ObjectStore

    dataset = _golden_dataset("wordcount")
    bundle = make_bundle("wordcount", 1024)
    stores = {"local": ObjectStore(), "cloud": ObjectStore()}
    index = build_dataset(
        dataset, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    result = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2),
        slave_mode="process", process_strategy="chunk-merge",
    ).run()
    _assert_same_value(_baseline("wordcount"), result.value)


def test_golden_matrix_process_sync_stream():
    """Streamed partial flushes come out of the worker process at each
    watermark; the merged result still matches the oracle."""
    config = repro.RunConfig(
        mode="runtime", slave_mode="process",
        sync_stream=True, sync_watermark=2, sync_encoding="sparse",
    )
    result = repro.run("histogram", _golden_dataset("histogram"), config)
    _assert_same_value(_baseline("histogram"), result.value)
    assert result.telemetry.sync_partial_merges > 0


def test_golden_matrix_process_cache_prefetch():
    """Process slaves compose with the cache + prefetch pipeline (the
    proxy thread still owns the fetch; only compute moved out)."""
    config = repro.RunConfig(
        mode="runtime", slave_mode="process",
        cache_bytes=1 << 22, prefetch=True,
    )
    result = repro.run("moments", _golden_dataset("moments"), config)
    _assert_same_value(_baseline("moments"), result.value)
    assert result.telemetry.prefetches > 0


def test_golden_matrix_process_ragged_groups():
    """A units_per_group that does not divide the chunk's unit count
    exercises the ragged final group inside the worker process."""
    config = repro.RunConfig(
        mode="runtime", slave_mode="process",
        tuning=MiddlewareTuning(units_per_group=7),
    )
    result = repro.run("knn", _golden_dataset("knn"), config)
    _assert_same_value(_baseline("knn"), result.value)


# -- Zero-copy corners -------------------------------------------------------


@pytest.mark.parametrize("slave_mode", ["thread", "process"])
def test_golden_matrix_zero_copy_hot_loop(slave_mode):
    """With stealing off every read is same-site: the whole run is served
    as read-only views and the copy counter stays at zero."""
    config = repro.RunConfig(
        mode="runtime", slave_mode=slave_mode,
        tuning=MiddlewareTuning(allow_stealing=False),
    )
    result = repro.run("histogram", _golden_dataset("histogram"), config)
    _assert_same_value(_baseline("histogram"), result.value)
    t = result.telemetry
    assert t.bytes_copied == 0
    assert t.zero_copy_reads == t.total_jobs == 16


def test_golden_matrix_zero_copy_serial_cached():
    """Serial two-pass run over a cache: single-stream reads against
    in-memory stores are views even cross-site, and pass 2's cloud chunks
    come back as cache hits — the whole run never copies a byte."""
    dataset = _golden_dataset("kmeans")
    result = repro.run(
        "kmeans", dataset,
        repro.RunConfig(mode="serial", iterations=2, cache_bytes=1 << 22,
                        app_params={"k": 4}),
    )
    t = result.telemetry
    # 16 chunks/pass x 2 passes, all served as views; the 8 cloud chunks
    # hit the cache on pass 2.
    assert t.zero_copy_reads == 32
    assert t.bytes_copied == 0
    assert t.cache_hits == 8


@pytest.mark.parametrize("cache_bytes,prefetch", CACHE_MATRIX)
def test_golden_matrix_iterative_kmeans(cache_bytes, prefetch):
    """Three kmeans passes end in the same centroids on both executable
    substrates, with or without the cache/prefetch machinery."""
    dataset = _golden_dataset("kmeans")
    serial = repro.run(
        "kmeans", dataset,
        repro.RunConfig(mode="serial", iterations=3, app_params={"k": 4}),
    )
    runtime = repro.run(
        "kmeans", dataset,
        repro.RunConfig(mode="runtime", iterations=3, app_params={"k": 4},
                        cache_bytes=cache_bytes, prefetch=prefetch),
    )
    assert serial.passes == runtime.passes == 3
    _assert_same_value(serial.value, runtime.value)
