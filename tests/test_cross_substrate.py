"""Cross-substrate consistency: the dynamic simulator models must agree
with the closed-form network estimates in steady state, and randomized
experiment configurations must preserve the global accounting invariants.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    ComputeSpec,
    DatasetSpec,
    ExperimentConfig,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.network.topology import Link
from repro.network.transfer import parallel_transfer_time, transfer_time
from repro.sim.engine import Environment
from repro.sim.linkmodel import FairShareLink
from repro.sim.simulation import simulate


@settings(deadline=None, max_examples=30)
@given(
    bandwidth=st.floats(10.0, 1000.0),
    latency=st.floats(0.0, 1.0),
    cap=st.floats(1.0, 100.0),
    nbytes=st.integers(1, 100_000),
)
def test_single_flow_matches_closed_form(bandwidth, latency, cap, nbytes):
    """One flow alone on a link: the fluid model equals transfer_time()."""
    link_spec = Link("a", "b", bandwidth=bandwidth, latency=latency,
                     per_flow_cap=cap)
    expected = transfer_time(link_spec, nbytes)

    env = Environment()
    fluid = FairShareLink(env, bandwidth=bandwidth, latency=latency,
                          per_flow_cap=cap)
    finished = {}

    def go():
        yield fluid.transfer(nbytes)
        finished["t"] = env.now

    env.process(go())
    env.run()
    assert finished["t"] == pytest.approx(expected, rel=1e-9, abs=1e-6)


@settings(deadline=None, max_examples=20)
@given(
    bandwidth=st.floats(50.0, 500.0),
    cap=st.floats(5.0, 50.0),
    nbytes=st.integers(1000, 50_000),
    connections=st.integers(1, 16),
)
def test_parallel_fetch_matches_closed_form(bandwidth, cap, nbytes, connections):
    """N simultaneous equal flows: completion equals the closed-form
    parallel-transfer estimate (up to the one-byte remainder split)."""
    link_spec = Link("a", "b", bandwidth=bandwidth, latency=0.0,
                     per_flow_cap=cap)
    expected = parallel_transfer_time(link_spec, nbytes, connections)

    env = Environment()
    fluid = FairShareLink(env, bandwidth=bandwidth, per_flow_cap=cap)
    share, remainder = divmod(nbytes, connections)
    events = [
        fluid.transfer(share + (1 if i < remainder else 0))
        for i in range(connections)
    ]
    done = env.all_of(events)
    env.run(done)
    assert env.now == pytest.approx(expected, rel=0.01)


@settings(deadline=None, max_examples=10)
@given(
    files=st.integers(2, 8),
    chunks=st.integers(1, 4),
    fraction=st.floats(0.0, 1.0),
    local_cores=st.integers(0, 6),
    cloud_cores=st.integers(0, 6),
    seed=st.integers(0, 10_000),
)
def test_random_configs_preserve_invariants(
    files, chunks, fraction, local_cores, cloud_cores, seed
):
    """Any valid configuration: every job processed once, accounting holds."""
    if local_cores + cloud_cores == 0:
        local_cores = 1
    chunk_bytes = 64 * 1024
    config = ExperimentConfig(
        name="fuzz",
        app="knn",
        dataset=DatasetSpec(
            total_bytes=files * chunks * chunk_bytes,
            num_files=files,
            chunk_bytes=chunk_bytes,
            record_bytes=4,
        ),
        placement=PlacementSpec(local_fraction=fraction),
        compute=ComputeSpec(local_cores=local_cores, cloud_cores=cloud_cores),
        tuning=MiddlewareTuning(job_group_size=3, pool_low_water=1),
        seed=seed,
    )
    report = simulate(config)
    report.validate()
    assert report.total_jobs == files * chunks
    for cluster in report.clusters.values():
        assert 0 <= cluster.jobs_stolen <= cluster.jobs_processed
