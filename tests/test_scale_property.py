"""Property battery for the autoscaling controller — zero real seconds.

The controller is pure (time is ``sample.time``), so hypothesis can
drive whole elastic runs through a closed-loop plant model in plain
arithmetic, and the one test that exercises the real
:class:`~repro.obs.live.RunMonitor` sampling loop does it on a
:class:`~repro.clock.FakeClock`. The invariants pinned here are the
subsystem's contract (docs/SCALING.md):

* the fleet never leaves ``[min_slaves, max_slaves]`` — and when spot
  revocation knocks it below the floor, the very next observation
  repairs it, damping or not;
* the controller never reverses direction within the damping window
  (bound repairs exempt), so the fleet ratchets instead of thrashing;
* once spend crosses the budget high-water mark the controller never
  buys again — and with feasible headroom the budget is a hard cap;
* revocation schedules are a pure function of (seed, slave, ordinal), so
  swept chaos runs stay bit-identical across execution substrates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import FakeClock
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    PlacementSpec,
)
from repro.apps import make_bundle
from repro.core.api import run_serial
from repro.data.dataset import DatasetReader, build_dataset
from repro.obs import RunMonitor
from repro.obs.live import _derive
from repro.options import ScaleOptions
from repro.runtime.driver import CloudBurstingRuntime
from repro.scale import Autoscaler
from repro.scale.controller import HIGH_WATER, SAFETY
from repro.storage.objectstore import ObjectStore


# -- the closed-loop plant ---------------------------------------------------


def run_loop(
    ctl: Autoscaler,
    *,
    jobs_total: int,
    unit_rate: float,
    interval: float,
    fleet0: int,
    local: int,
    max_steps: int,
    revocations: frozenset[int] = frozenset(),
):
    """Drive the controller against a throughput-proportional plant.

    Each step advances virtual time by ``interval``; completed jobs grow
    at ``(local + fleet) * unit_rate`` per second, so scale-ups actually
    speed the run up (and the monitor-style run-average ETA stays a
    conservative overestimate while the fleet grows). Steps listed in
    ``revocations`` lose one cloud slave *before* the controller looks —
    the spot provider does not wait for a sample boundary. Returns the
    trajectory ``[(time, fleet_seen, decision, fleet_after, spent)]``.
    """
    fleet = fleet0
    done = 0.0
    trajectory = []
    t = 0.0
    for step in range(max_steps):
        t = (step + 1) * interval
        done = min(jobs_total, done + (local + fleet) * unit_rate * interval)
        if step in revocations and fleet > 0:
            fleet -= 1
        remaining = jobs_total - int(done)
        raw = {
            "jobs_total": jobs_total,
            "jobs_done": int(done),
            "pool_depth": max(0, remaining - (local + fleet)),
            "in_flight": min(local + fleet, remaining),
            "workers": local + fleet,
            "workers_busy": min(local + fleet, remaining),
        }
        decision = ctl.observe(_derive(raw, t), fleet)
        seen = fleet
        if decision.action == "add":
            fleet += decision.count
        elif decision.action == "remove":
            fleet -= decision.count
        trajectory.append((t, seen, decision, fleet, ctl.dollars_spent))
        if int(done) >= jobs_total:
            break
    ctl.finalize(t, fleet)
    return trajectory


configs = st.fixed_dictionaries(
    {
        "min_slaves": st.integers(1, 3),
        "extra": st.integers(0, 5),  # max = min + extra
        "damping": st.floats(0.0, 5.0, allow_nan=False),
        "deadline": st.one_of(st.none(), st.floats(1.0, 50.0)),
        "jobs_total": st.integers(20, 400),
        "unit_rate": st.floats(0.5, 20.0),
        "interval": st.floats(0.05, 1.0),
        "fleet0": st.integers(0, 9),
        "local": st.integers(1, 4),
        "revocations": st.frozensets(st.integers(0, 99), max_size=6),
    }
)


def build(cfg, **controller_overrides):
    kwargs = dict(
        min_slaves=cfg["min_slaves"],
        max_slaves=cfg["min_slaves"] + cfg["extra"],
        damping=cfg["damping"],
        deadline=cfg["deadline"],
    )
    kwargs.update(controller_overrides)
    ctl = Autoscaler(**kwargs)
    fleet0 = min(max(cfg["fleet0"], ctl.min_slaves), ctl.max_slaves)
    return ctl, fleet0


def is_bound_repair(decision) -> bool:
    return "floor" in decision.reason or "cap" in decision.reason


@settings(deadline=None, max_examples=150)
@given(cfg=configs)
def test_fleet_never_leaves_bounds(cfg):
    """After every applied decision the fleet is inside [min, max] — even
    when spot revocations keep yanking slaves out from under it."""
    ctl, fleet0 = build(cfg)
    trajectory = run_loop(
        ctl,
        jobs_total=cfg["jobs_total"],
        unit_rate=cfg["unit_rate"],
        interval=cfg["interval"],
        fleet0=fleet0,
        local=cfg["local"],
        max_steps=100,
        revocations=cfg["revocations"],
    )
    assert trajectory
    for t, seen, decision, after, _ in trajectory:
        assert ctl.min_slaves <= after <= ctl.max_slaves, (
            f"fleet {after} outside bounds after {decision} at t={t}"
        )
        # The repair is immediate: a below-floor fleet never survives
        # the observation that saw it.
        if seen < ctl.min_slaves:
            assert decision.action == "add" and is_bound_repair(decision)


@settings(deadline=None, max_examples=150)
@given(cfg=configs)
def test_no_direction_reversal_inside_damping_window(cfg):
    """The fleet ratchets: add→remove (or remove→add) never happens
    within ``damping`` seconds, unless the move is a bound repair."""
    ctl, fleet0 = build(cfg)
    run_loop(
        ctl,
        jobs_total=cfg["jobs_total"],
        unit_rate=cfg["unit_rate"],
        interval=cfg["interval"],
        fleet0=fleet0,
        local=cfg["local"],
        max_steps=100,
        revocations=cfg["revocations"],
    )
    last_time = last_action = None
    for t, decision in ctl.decisions:
        if decision.action == "none":
            continue
        if (
            last_action is not None
            and decision.action != last_action
            and t - last_time < ctl.damping
        ):
            assert is_bound_repair(decision), (
                f"reversal {last_action}->{decision.action} after "
                f"{t - last_time:.3f}s inside damping={ctl.damping}"
            )
        last_time, last_action = t, decision.action



@settings(deadline=None, max_examples=150)
@given(cfg=configs, budget_frac=st.floats(0.05, 1.0))
def test_high_water_latch_never_buys_again(cfg, budget_frac):
    """Once spend crosses HIGH_WATER x budget, every later decision is a
    shed or a hold — the controller never scales up again (bound repairs
    after a revocation exempt). Holds for *any* budget, feasible or not."""
    # Price spend so the budget is actually reachable inside the run.
    horizon = 100 * cfg["interval"]
    max_fleet = cfg["min_slaves"] + cfg["extra"]
    full_spend = max_fleet * horizon / 3600.0  # at $1/slave-hour
    budget = max(full_spend * budget_frac, 1e-9)
    ctl, fleet0 = build(cfg, budget=budget, dollars_per_slave_hour=1.0)
    trajectory = run_loop(
        ctl,
        jobs_total=cfg["jobs_total"],
        unit_rate=cfg["unit_rate"],
        interval=cfg["interval"],
        fleet0=fleet0,
        local=cfg["local"],
        max_steps=100,
        revocations=cfg["revocations"],
    )
    latched = False
    for t, seen, decision, after, spent in trajectory:
        if latched and decision.action == "add":
            assert is_bound_repair(decision), (
                f"bought capacity at t={t} with spend {spent:.6f} past "
                f"high water ({HIGH_WATER * budget:.6f} of {budget:.6f})"
            )
        if spent >= HIGH_WATER * budget:
            latched = True


@settings(deadline=None, max_examples=150)
@given(cfg=configs, headroom=st.floats(1.0, 4.0))
def test_budget_is_a_hard_cap_with_feasible_headroom(cfg, headroom):
    """With enough headroom to pay for the floor fleet for the whole run
    (plus one damping window at the cap — the shed can be damped), total
    spend never exceeds the budget."""
    rate = 1.0 / 3600.0  # $1/slave-hour in dollars per slave-second
    horizon = 100 * cfg["interval"]
    max_fleet = cfg["min_slaves"] + cfg["extra"]
    feasible = 10.0 * rate * (
        cfg["min_slaves"] * horizon
        + max_fleet * (cfg["damping"] + 2 * cfg["interval"])
    )
    budget = feasible * headroom
    ctl, fleet0 = build(
        cfg, budget=budget, dollars_per_slave_hour=1.0, deadline=None
    )
    run_loop(
        ctl,
        jobs_total=cfg["jobs_total"],
        unit_rate=cfg["unit_rate"],
        interval=cfg["interval"],
        fleet0=fleet0,
        local=cfg["local"],
        max_steps=100,
        revocations=cfg["revocations"],
    )
    assert ctl.dollars_spent <= budget, (
        f"spent ${ctl.dollars_spent:.6f} of ${budget:.6f}"
    )


@settings(deadline=None, max_examples=100)
@given(cfg=configs)
def test_scale_up_projections_respect_the_safety_pad(cfg):
    """At the moment of every non-repair scale-up, accrued spend is below
    budget/SAFETY — the controller only buys what its padded projection
    says it can pay for."""
    horizon = 100 * cfg["interval"]
    max_fleet = cfg["min_slaves"] + cfg["extra"]
    budget = max(max_fleet * horizon / 3600.0 * 0.5, 1e-9)
    ctl, fleet0 = build(cfg, budget=budget, dollars_per_slave_hour=1.0)
    trajectory = run_loop(
        ctl,
        jobs_total=cfg["jobs_total"],
        unit_rate=cfg["unit_rate"],
        interval=cfg["interval"],
        fleet0=fleet0,
        local=cfg["local"],
        max_steps=100,
        revocations=cfg["revocations"],
    )
    for t, seen, decision, after, spent in trajectory:
        if decision.action == "add" and not is_bound_repair(decision):
            assert spent * SAFETY <= budget + 1e-12


# -- the sampling loop on virtual time ---------------------------------------


def test_monitor_driven_controller_runs_on_fake_clock():
    """The full sampling pipeline — RunMonitor thread, probe, subscriber,
    controller — runs on a FakeClock: decisions land at exact virtual
    timestamps and the backlogged plant provokes a scale-up, with zero
    real seconds slept."""
    import time as _time

    state = {
        "jobs_total": 1000,
        "jobs_done": 0,
        "pool_depth": 900,
        "in_flight": 4,
        "workers": 4,
        "workers_busy": 4,
    }
    ctl = Autoscaler(min_slaves=1, max_slaves=4, budget=100.0, damping=0.0)
    fleet = [1]

    def on_sample(s):
        decision = ctl.observe(s, fleet[0])
        if decision.action == "add":
            fleet[0] += decision.count
        elif decision.action == "remove":
            fleet[0] -= decision.count

    started = _time.monotonic()
    with FakeClock() as clock:
        monitor = RunMonitor(1.0, clock=clock)
        monitor.bind(lambda: dict(state))
        monitor.subscribe(on_sample)
        monitor.start()
        for tick in range(1, 6):
            state["jobs_done"] = tick * 10  # slow: backlog persists
            deadline = _time.monotonic() + 10.0
            while monitor.samples_taken < tick:
                clock.advance(monitor.interval)
                _time.sleep(0.005)
                assert _time.monotonic() < deadline, "sampler never woke"
        monitor.stop()

    times = [t for t, _ in ctl.decisions]
    assert times == sorted(times)
    # Samples land on exact virtual seconds (the closing stop() sample
    # repeats the last tick's gauges at a later virtual instant).
    assert set(range(1, 6)) <= {round(t) for t in times}
    assert fleet[0] > 1, "a backlogged run on budget must scale up"
    assert ctl.dollars_spent > 0.0
    # The entire pipeline — five virtual seconds of sampling — must not
    # have cost anywhere near that in wall time.
    assert _time.monotonic() - started < 5.0


# -- bit-identical chaos across substrates -----------------------------------

DATASET = DatasetSpec(
    total_bytes=32768 * 8, num_files=4, chunk_bytes=256 * 8, record_bytes=8
)


def _materialize():
    bundle = make_bundle("histogram", DATASET.total_units, seed=2011)
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        DATASET, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    return bundle, index, stores


@pytest.mark.parametrize("rate", [0.0, 0.1, 0.3])
@pytest.mark.parametrize("slave_mode", ["thread", "process"])
def test_revocation_sweep_bit_identical_across_substrates(rate, slave_mode):
    """Sweeping the revocation rate over both slave substrates never
    changes a byte of the result, and the accounting is deterministic."""
    bundle, index, stores = _materialize()
    oracle = run_serial(
        bundle.app, DatasetReader(index, stores).read_all_chunks()
    )

    def one_run():
        b, ix, s = _materialize()
        runtime = CloudBurstingRuntime(
            b.app, ix, s,
            ComputeSpec(local_cores=2, cloud_cores=2),
            scale=ScaleOptions(revocation=f"rate={rate},seed=11"),
            slave_mode=slave_mode, seed=2011, join_timeout=60.0,
        )
        result = runtime.run()
        return result

    first = one_run()
    np.testing.assert_array_equal(first.value, oracle)
    if rate == 0.0:
        assert first.telemetry.slaves_revoked == 0
        return
    second = one_run()
    np.testing.assert_array_equal(second.value, oracle)
    # 128 jobs guarantee a cloud slave reaches its seeded ordinal on any
    # interleaving; the keep-one floor then pins the count at exactly one.
    assert first.telemetry.slaves_revoked == 1
    assert second.telemetry.slaves_revoked == 1
