"""Tests for live run-health monitoring (repro.obs.live)."""

from __future__ import annotations

import time

import pytest

import repro
from repro.clock import FakeClock
from repro.config import DatasetSpec
from repro.errors import ConfigurationError, TraceError
from repro.obs import EventLog, RunMonitor, RunSample, samples_from_log


def make_sample(**overrides) -> RunSample:
    base = dict(
        time=2.0,
        jobs_total=10,
        jobs_done=4,
        pool_depth=3,
        in_flight=2,
        steals=1,
        workers=4,
        workers_busy=3,
        cache_hits=6,
        cache_misses=2,
        sync_bytes_sent=1024,
        remote_fetches=5,
        completion_rate=2.0,
        eta_seconds=3.0,
    )
    base.update(overrides)
    return RunSample(**base)


def test_sample_derived_ratios():
    sample = make_sample()
    assert sample.cache_hit_ratio == pytest.approx(6 / 8)
    assert sample.utilization == pytest.approx(3 / 4)
    assert sample.progress == pytest.approx(0.4)
    doc = sample.to_dict()
    assert doc["eta_seconds"] == 3.0
    assert doc["cache_hit_ratio"] == pytest.approx(6 / 8)


def test_sample_ratios_degrade_to_zero():
    idle = make_sample(
        jobs_total=0, jobs_done=0, workers=0, workers_busy=0,
        cache_hits=0, cache_misses=0, eta_seconds=None,
    )
    assert idle.cache_hit_ratio == 0.0
    assert idle.utilization == 0.0
    assert idle.progress == 0.0
    assert idle.to_dict()["eta_seconds"] is None


# -- RunMonitor ---------------------------------------------------------------


def test_monitor_rejects_bad_knobs():
    with pytest.raises(TraceError, match="interval"):
        RunMonitor(0.0)
    with pytest.raises(TraceError, match="interval"):
        RunMonitor(-1.0)
    with pytest.raises(TraceError, match="capacity"):
        RunMonitor(1.0, capacity=0)


def test_monitor_requires_probe():
    monitor = RunMonitor(1.0)
    with pytest.raises(TraceError, match="no probe"):
        monitor.sample_now()
    with pytest.raises(TraceError, match="no probe"):
        monitor.start()


def test_double_start_rejected():
    with FakeClock() as clock:
        monitor = RunMonitor(1.0, clock=clock)
        monitor.bind(lambda: {"jobs_total": 1})
        monitor.start()
        with pytest.raises(TraceError, match="already running"):
            monitor.start()
        monitor.stop()


def _drain(monitor: RunMonitor, clock: FakeClock, target: int) -> None:
    """Advance virtual time until the sampler has taken ``target`` samples."""
    deadline = time.monotonic() + 10.0
    while monitor.samples_taken < target:
        clock.advance(monitor.interval)
        time.sleep(0.005)
        assert time.monotonic() < deadline, "sampler never woke"


def test_monitor_samples_on_virtual_time():
    """The whole loop runs on a FakeClock: no real sleeps, exact derived
    rates, and stop() takes a closing sample."""
    state = {"jobs_total": 3, "jobs_done": 0, "workers": 2, "workers_busy": 2}
    seen: list[RunSample] = []
    with FakeClock() as clock:
        monitor = RunMonitor(1.0, clock=clock)
        monitor.bind(lambda: dict(state))
        monitor.subscribe(seen.append)
        monitor.start()
        for done in (1, 2, 3):
            state["jobs_done"] = done
            _drain(monitor, clock, target=len(seen) + 1)
        monitor.stop()
    samples = monitor.samples()
    assert samples[-1] is monitor.last
    assert len(samples) == len(seen) == monitor.samples_taken
    done_seq = [s.jobs_done for s in samples]
    assert done_seq[:1] == [1] and done_seq[-1] == 3
    assert all(a <= b for a, b in zip(done_seq, done_seq[1:]))
    times = [s.time for s in samples]
    assert times == sorted(times) and times[0] >= 1.0
    for sample in samples:
        # Virtual time makes the derived rate exact, not approximate.
        assert sample.completion_rate == pytest.approx(
            sample.jobs_done / sample.time
        )
        if sample.eta_seconds is not None:
            assert sample.eta_seconds == pytest.approx(
                (3 - sample.jobs_done) / sample.completion_rate
            )
    assert samples[-1].progress == 1.0
    assert monitor.callback_errors == 0


def test_raising_subscriber_is_counted_not_fatal():
    monitor = RunMonitor(1.0)
    monitor.bind(lambda: {"jobs_total": 4, "jobs_done": 2})

    def bad(sample: RunSample) -> None:
        raise RuntimeError("subscriber bug")

    good: list[RunSample] = []
    monitor.subscribe(bad)
    monitor.subscribe(good.append)
    sample = monitor.sample_now()
    assert monitor.callback_errors == 1
    assert good == [sample]
    monitor.unsubscribe(bad)
    monitor.sample_now()
    assert monitor.callback_errors == 1


def test_ring_keeps_only_newest_samples():
    monitor = RunMonitor(1.0, capacity=4)
    ticks = {"n": 0}

    def probe() -> dict:
        ticks["n"] += 1
        return {"jobs_total": 100, "jobs_done": ticks["n"]}

    monitor.bind(probe)
    for _ in range(7):
        monitor.sample_now()
    samples = monitor.samples()
    assert len(samples) == 4
    assert [s.jobs_done for s in samples] == [4, 5, 6, 7]  # oldest dropped
    assert monitor.samples_taken == 7


# -- samples_from_log (the simulator's path) ---------------------------------


def traced_run_log() -> EventLog:
    log = EventLog()
    log.record(0.0, "group_assigned", cluster="a",
               detail="group 0 x4 (0 other readers)")
    log.record(0.2, "fetch_start", worker=0, job_id=0, file_id=0, cluster="a")
    log.record(0.25, "cache_miss", file_id=0, detail="chunk 0")
    log.record(0.3, "remote_fetch", worker=0, file_id=0, cluster="a")
    log.record(0.4, "fetch_end", worker=0, job_id=0, file_id=0, cluster="a")
    log.record(0.4, "compute_start", worker=0, job_id=0, cluster="a")
    log.record(0.5, "steal", cluster="b", file_id=3, detail="group 1 x1")
    log.record(0.9, "compute_end", worker=0, job_id=0, cluster="a")
    log.record(0.9, "job_done", worker=0, job_id=0, cluster="a")
    log.record(1.0, "fetch_start", worker=0, job_id=1, file_id=1, cluster="a")
    log.record(1.05, "cache_hit", file_id=1, detail="chunk 1")
    log.record(1.2, "fetch_end", worker=0, job_id=1, file_id=1, cluster="a")
    log.record(1.2, "compute_start", worker=0, job_id=1, cluster="a")
    log.record(1.8, "compute_end", worker=0, job_id=1, cluster="a")
    log.record(1.8, "job_done", worker=0, job_id=1, cluster="a")
    log.record(2.0, "sync_upload", cluster="a", detail="robj 128/512B zlib")
    return log


def test_samples_from_log_reconstructs_gauges():
    samples = samples_from_log(traced_run_log(), 1.0)
    assert [s.time for s in samples] == [1.0, 2.0]  # ticks + final at makespan

    mid, end = samples
    assert mid.jobs_total == end.jobs_total == 2
    assert mid.jobs_done == 1 and end.jobs_done == 2
    assert mid.in_flight == 1 and end.in_flight == 0  # job 1 started, not done
    assert mid.pool_depth == 2  # 4 assigned - 2 started
    assert mid.steals == end.steals == 1
    assert mid.cache_hits == 0 and end.cache_hits == 1
    assert mid.cache_misses == 1
    assert mid.remote_fetches == 1
    assert mid.sync_bytes_sent == 0 and end.sync_bytes_sent == 128  # wire bytes
    assert mid.workers == 1
    assert mid.workers_busy == 1  # inside job 1's fetch at t=1.0
    assert end.workers_busy == 0
    assert mid.completion_rate == pytest.approx(1.0)
    assert mid.eta_seconds == pytest.approx(1.0)
    assert end.progress == 1.0


def test_samples_from_log_prefetch_fallback():
    """A pipelined trace has no fetch events; started falls back to done."""
    log = EventLog()
    for job in range(2):
        log.record(job + 0.1, "compute_start", worker=0, job_id=job)
        log.record(job + 0.9, "compute_end", worker=0, job_id=job)
        log.record(job + 0.9, "job_done", worker=0, job_id=job)
    samples = samples_from_log(log, 1.0)
    assert [s.in_flight for s in samples] == [0, 0]
    assert samples[-1].jobs_done == 2


def test_samples_from_log_edge_cases():
    assert samples_from_log(EventLog(), 1.0) == []
    with pytest.raises(TraceError, match="interval"):
        samples_from_log(traced_run_log(), 0.0)


# -- facade integration -------------------------------------------------------

DATASET = DatasetSpec(
    total_bytes=2048 * 4, num_files=4, chunk_bytes=512, record_bytes=4
)


def test_facade_monitor_knob_validation():
    with pytest.raises(ConfigurationError, match="monitor_interval"):
        repro.RunConfig(monitor_interval=-1.0)
    with pytest.raises(ConfigurationError, match="monitor_capacity"):
        repro.RunConfig(monitor_capacity=0)
    with pytest.raises(ConfigurationError, match="on_sample"):
        repro.RunConfig(on_sample=lambda s: None)
    with pytest.raises(ConfigurationError, match="trace"):
        repro.RunConfig(mode="simulate", monitor_interval=1.0)


def test_facade_runtime_monitoring():
    seen: list[RunSample] = []
    result = repro.run(
        "wordcount",
        DATASET,
        repro.RunConfig(
            mode="runtime", monitor_interval=0.02, on_sample=seen.append
        ),
    )
    assert result.samples, "runtime monitor took no samples"
    assert seen == result.samples
    final = result.samples[-1]
    assert final.progress == 1.0
    assert final.jobs_total == 16
    assert final.workers > 0


def test_facade_simulate_monitoring_replays_the_trace():
    trace = EventLog()
    seen: list[RunSample] = []
    result = repro.run(
        "wordcount",
        DATASET,
        repro.RunConfig(
            mode="simulate",
            trace=trace,
            monitor_interval=1.0,
            on_sample=seen.append,
        ),
    )
    assert result.samples and seen == result.samples
    final = result.samples[-1]
    assert final.progress == 1.0
    assert final.time == pytest.approx(result.sim_report.makespan)
    # Both substrates speak the same sample vocabulary.
    runtime_keys = set(
        repro.run(
            "wordcount", DATASET,
            repro.RunConfig(mode="runtime", monitor_interval=0.02),
        ).samples[-1].to_dict()
    )
    assert set(final.to_dict()) == runtime_keys


def test_facade_serial_mode_takes_no_samples():
    result = repro.run(
        "wordcount", DATASET, repro.RunConfig(mode="serial")
    )
    assert result.samples == []
