"""Tests for the storage substrate: base validation, local FS, object store."""

from __future__ import annotations

import time

import pytest

from repro.errors import ObjectNotFoundError, StorageError
from repro.storage.base import validate_range
from repro.storage.localfs import LocalStorage
from repro.storage.objectstore import ObjectStore, TrafficShaper


# -- validate_range -------------------------------------------------------------


def test_validate_range_clamps_and_checks():
    assert validate_range(100, 0, None) == 100
    assert validate_range(100, 40, None) == 60
    assert validate_range(100, 40, 10) == 10
    assert validate_range(100, 90, 50) == 10
    assert validate_range(100, 100, 5) == 0
    with pytest.raises(StorageError):
        validate_range(100, -1, 10)
    with pytest.raises(StorageError):
        validate_range(100, 101, None)
    with pytest.raises(StorageError):
        validate_range(100, 0, -5)


# -- shared backend behaviour -------------------------------------------------------


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return ObjectStore()
    return LocalStorage(tmp_path / "root")


def test_put_get_roundtrip(store):
    store.put("a/b.bin", b"hello world")
    assert store.get("a/b.bin") == b"hello world"
    assert store.size("a/b.bin") == 11
    assert store.exists("a/b.bin")


def test_range_get(store):
    store.put("k", bytes(range(100)))
    assert store.get("k", offset=10, length=5) == bytes(range(10, 15))
    assert store.get("k", offset=95) == bytes(range(95, 100))
    assert store.get("k", offset=95, length=50) == bytes(range(95, 100))


def test_missing_key(store):
    with pytest.raises(ObjectNotFoundError):
        store.get("nope")
    with pytest.raises(ObjectNotFoundError):
        store.size("nope")
    assert not store.exists("nope")
    store.delete("nope")  # silent


def test_overwrite_and_delete(store):
    store.put("k", b"one")
    store.put("k", b"two")
    assert store.get("k") == b"two"
    store.delete("k")
    assert not store.exists("k")


def test_keys_sorted_with_prefix(store):
    for key in ("z", "data/1", "data/2", "other/x"):
        store.put(key, b"?")
    assert list(store.keys("data/")) == ["data/1", "data/2"]
    assert list(store.keys()) == ["data/1", "data/2", "other/x", "z"]


def test_append_stream(store):
    total = store.append_stream("big", (bytes([i]) * 10 for i in range(5)))
    assert total == 50
    assert store.size("big") == 50
    assert store.get("big", offset=10, length=10) == bytes([1]) * 10


def test_total_bytes(store):
    store.put("a", b"12345")
    store.put("b", b"123")
    assert store.total_bytes() == 8


# -- LocalStorage specifics ----------------------------------------------------------


def test_localfs_rejects_escaping_keys(tmp_path):
    fs = LocalStorage(tmp_path / "root")
    for bad in ("", "/abs", "a/../../etc/passwd"):
        with pytest.raises(StorageError):
            fs.put(bad, b"x")


def test_localfs_tmp_files_hidden(tmp_path):
    fs = LocalStorage(tmp_path / "root")
    fs.put("real.bin", b"x")
    (tmp_path / "root" / "junk.bin.tmp").write_bytes(b"partial")
    assert list(fs.keys()) == ["real.bin"]


# -- ObjectStore specifics -------------------------------------------------------------


def test_objectstore_counters():
    s = ObjectStore()
    s.put("k", b"0123456789")
    s.get("k", 0, 4)
    s.get("k")
    assert s.stats.puts == 1
    assert s.stats.gets == 2
    assert s.stats.bytes_read == 14
    assert s.stats.bytes_written == 10


def test_traffic_shaper_delays_gets():
    shaper = TrafficShaper(request_latency=0.02, bandwidth=1_000_000)
    s = ObjectStore(shaper=shaper)
    s.put("k", b"x" * 10_000)
    started = time.perf_counter()
    s.get("k")
    elapsed = time.perf_counter() - started
    assert elapsed >= 0.02  # latency + 10ms of bandwidth


def test_shaper_delay_model():
    assert TrafficShaper().delay_for(10**6) == 0.0
    assert TrafficShaper(request_latency=0.1).delay_for(0) == 0.1
    assert TrafficShaper(bandwidth=100.0).delay_for(50) == pytest.approx(0.5)
