"""Tests for the generate/run CLI pair (disk-backed datasets)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_generate_then_run(tmp_path, capsys):
    out = tmp_path / "ds"
    code = main([
        "generate", "histogram", "--out", str(out), "--units", "2048",
        "--files", "4", "--chunks-per-file", "2", "--local-fraction", "0.5",
    ])
    assert code == 0
    text = capsys.readouterr().out
    assert "wrote 8 chunks" in text
    assert (out / "index.json").is_file()
    assert (out / "dataset.json").is_file()
    # Half the files in each site directory.
    assert len(list((out / "local").rglob("*.bin"))) == 2
    assert len(list((out / "cloud").rglob("*.bin"))) == 2

    code = main(["run", str(out), "--local-cores", "2", "--cloud-cores", "2"])
    assert code == 0
    text = capsys.readouterr().out
    assert "app: histogram" in text
    assert "ndarray" in text
    assert "local-cluster" in text and "cloud-cluster" in text


def test_run_results_deterministic_for_a_dataset(tmp_path, capsys):
    out = tmp_path / "ds"
    main(["generate", "wordcount", "--out", str(out), "--units", "1024",
          "--files", "2", "--chunks-per-file", "2"])
    capsys.readouterr()
    main(["run", str(out)])
    first = capsys.readouterr().out
    main(["run", str(out)])
    second = capsys.readouterr().out
    # Result lines identical (wall time differs).
    assert first.splitlines()[1] == second.splitlines()[1]


def test_generate_rejects_indivisible_units(tmp_path, capsys):
    code = main([
        "generate", "knn", "--out", str(tmp_path / "x"), "--units", "1000",
        "--files", "3", "--chunks-per-file", "7",
    ])
    assert code == 1
    assert "divisible" in capsys.readouterr().err


def test_run_rejects_non_dataset_dir(tmp_path, capsys):
    code = main(["run", str(tmp_path)])
    assert code == 1
    assert "generated dataset" in capsys.readouterr().err


def test_generated_meta_contents(tmp_path, capsys):
    out = tmp_path / "ds"
    main(["--seed", "7", "generate", "knn", "--out", str(out),
          "--units", "512", "--files", "2", "--chunks-per-file", "2"])
    meta = json.loads((out / "dataset.json").read_text())
    assert meta["app"] == "knn"
    assert meta["units"] == 512
    assert meta["seed"] == 7


def test_run_with_sync_flags_prints_accounting(tmp_path, capsys):
    out = tmp_path / "ds"
    main(["generate", "wordcount", "--out", str(out), "--units", "1024",
          "--files", "2", "--chunks-per-file", "2"])
    capsys.readouterr()
    code = main([
        "run", str(out),
        "--sync-topology", "tree", "--sync-encoding", "auto",
        "--sync-compress", "zlib", "--sync-stream", "--sync-watermark", "2",
    ])
    assert code == 0
    text = capsys.readouterr().out
    assert "sync: tree/auto/zlib" in text
    assert "wire bytes" in text and "off dense" in text

    # The same run without sync flags matches result-for-result.
    main(["run", str(out)])
    plain = capsys.readouterr().out
    assert plain.splitlines()[1] == text.splitlines()[1]


def test_run_rejects_unknown_sync_values(tmp_path, capsys):
    out = tmp_path / "ds"
    main(["generate", "wordcount", "--out", str(out), "--units", "256",
          "--files", "1", "--chunks-per-file", "2"])
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["run", str(out), "--sync-topology", "mesh"])
