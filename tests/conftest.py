"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CLOUD_SITE, LOCAL_SITE, DatasetSpec, PlacementSpec
from repro.storage.objectstore import ObjectStore


@pytest.fixture
def two_site_stores():
    """A fresh in-memory store per site."""
    return {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}


def small_spec(record_bytes: int, *, files: int = 4, chunks_per_file: int = 4,
               units_per_chunk: int = 64) -> DatasetSpec:
    """A tiny dataset spec with exact divisibility."""
    chunk = units_per_chunk * record_bytes
    return DatasetSpec(
        total_bytes=files * chunks_per_file * chunk,
        num_files=files,
        chunk_bytes=chunk,
        record_bytes=record_bytes,
    )


@pytest.fixture
def half_placement():
    return PlacementSpec(local_fraction=0.5)


@pytest.fixture
def rng():
    return np.random.default_rng(42)
