"""Tests for the benchmark harness: configurations, experiment runners
(at reduced scale), and reporting."""

from __future__ import annotations

import pytest

from repro.bench.configs import (
    ENV_NAMES,
    HYBRID_ENVS,
    env_config,
    figure3_configs,
    figure4_configs,
    paper_dataset,
)
from repro.bench.experiments import (
    mean_hybrid_slowdown,
    run_figure3,
    run_figure4,
    run_retrieval_ablation,
    run_robj_ablation,
    run_scheduling_ablation,
    table1_rows,
    table2_rows,
)
from repro.bench.paper_values import (
    FIGURE4_SPEEDUPS,
    HEADLINE,
    TABLE1,
    TABLE2,
    table1_row,
    table2_row,
)
from repro.bench.reporting import (
    render_bar,
    render_figure3,
    render_figure4,
    render_table,
    render_table1,
    render_table2,
)

SCALE = 0.03


def test_paper_dataset_shapes():
    for app in ("knn", "kmeans", "pagerank"):
        spec = paper_dataset(app)
        assert spec.num_files == 32
        assert spec.num_chunks == 960
    small = paper_dataset("knn", scale=0.01)
    assert small.num_chunks == 960
    assert small.total_bytes < paper_dataset("knn").total_bytes


def test_env_configs_match_paper_cores():
    assert env_config("knn", "env-local").compute.label() == "(32,0)"
    assert env_config("knn", "env-cloud").compute.label() == "(0,32)"
    assert env_config("kmeans", "env-cloud").compute.label() == "(0,44)"
    assert env_config("kmeans", "env-50/50").compute.label() == "(16,22)"
    assert env_config("pagerank", "env-17/83").compute.label() == "(16,16)"
    with pytest.raises(KeyError):
        env_config("knn", "env-99/1")


def test_env_config_placements():
    assert env_config("knn", "env-local").placement.local_fraction == 1.0
    assert env_config("knn", "env-cloud").placement.local_fraction == 0.0
    assert env_config("knn", "env-33/67").local_files == 11


def test_figure_config_factories():
    f3 = figure3_configs("pagerank", scale=SCALE)
    assert set(f3) == set(ENV_NAMES)
    f4 = figure4_configs("knn", scale=SCALE)
    assert set(f4) == {"(4,4)", "(8,8)", "(16,16)", "(32,32)"}
    for config in f4.values():
        assert config.placement.local_fraction == 0.0


def test_paper_values_complete_and_consistent():
    assert len(TABLE1) == 9 and len(TABLE2) == 9
    for row in TABLE1:
        assert row.ec2_jobs + row.local_jobs == 960
    assert table1_row("kmeans", "env-17/83").stolen == 256
    assert table2_row("pagerank", "env-33/67").global_reduction == 41.320
    with pytest.raises(KeyError):
        table1_row("knn", "env-1/99")
    assert set(FIGURE4_SPEEDUPS) == {"knn", "kmeans", "pagerank"}
    assert HEADLINE["mean_hybrid_slowdown_pct"] == 15.55


@pytest.fixture(scope="module")
def knn_run():
    return run_figure3("knn", scale=SCALE)


def test_run_figure3_structure(knn_run):
    assert set(knn_run.reports) == set(ENV_NAMES)
    assert knn_run.baseline.experiment == "env-local"
    for env in HYBRID_ENVS:
        assert knn_run.reports[env].total_jobs == 960


def test_table_extraction(knn_run):
    t1 = table1_rows(knn_run)
    assert len(t1) == 3
    for row in t1:
        assert row["ec2_jobs"] + row["local_jobs"] == 960
    t2 = table2_rows(knn_run)
    assert len(t2) == 3
    for row in t2:
        assert row["global_reduction"] >= 0


def test_stealing_monotone_in_skew(knn_run):
    rows = {r["env"]: r["stolen"] for r in table1_rows(knn_run)}
    assert rows["env-50/50"] <= rows["env-33/67"] <= rows["env-17/83"]


def test_mean_hybrid_slowdown(knn_run):
    mean = mean_hybrid_slowdown({"knn": knn_run})
    assert -0.1 < mean < 0.6  # fraction, not percent


def test_run_figure4_speedups():
    run = run_figure4("kmeans", ladder=(4, 8, 16), scale=SCALE)
    speedups = run.speedups()
    assert len(speedups) == 2
    assert all(s > 30.0 for s in speedups)  # compute-bound scales well


def test_scheduling_ablation_variants():
    out = run_scheduling_ablation("knn", "env-17/83", scale=SCALE)
    assert set(out) == {"baseline", "no-consecutive", "no-min-contention", "neither"}
    for report in out.values():
        assert report.total_jobs == 960


def test_retrieval_ablation_monotone_until_saturation():
    out = run_retrieval_ablation("knn", "env-cloud", threads=(1, 4), scale=SCALE)
    assert out[1].makespan > out[4].makespan  # more connections help


def test_robj_ablation_grows_global_reduction():
    out = run_robj_ablation("pagerank", "env-50/50", robj_mb=(1, 300), scale=SCALE)
    assert out[300].global_reduction > out[1].global_reduction * 10


# -- reporting -------------------------------------------------------------------


def test_render_table_alignment():
    text = render_table(("a", "long"), [(1, 2), (333, 4)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line) for line in lines)) == 1  # rectangular


def test_render_figure3_contains_envs(knn_run):
    text = render_figure3(knn_run)
    for env in ENV_NAMES:
        assert env in text
    assert "slowdown" in text


def test_render_figure4_contains_paper_column():
    run = run_figure4("knn", ladder=(4, 8), scale=SCALE)
    text = render_figure4(run)
    assert "(4,4)" in text and "(8,8)" in text
    assert "paper speedup" in text
    assert "82.4%" in text


def test_render_tables_side_by_side(knn_run):
    t1 = render_table1({"knn": knn_run})
    assert "Table I" in t1 and "stolen" in t1 and "paper" in t1
    t2 = render_table2({"knn": knn_run})
    assert "Table II" in t2 and "glob.red." in t2


def test_render_bar():
    bar = render_bar("env-local", {"processing": 10.0, "retrieval": 20.0,
                                   "sync": 5.0}, unit_per_char=5.0)
    assert bar.count("P") == 2
    assert bar.count("R") == 4
    assert bar.count("S") == 1
    assert "35.0s" in bar
