"""Unit and integration tests for the chunk cache + prefetch pipeline.

Covers the :mod:`repro.cache` pieces in isolation (LRU accounting,
oversized rejection, thread safety, the prefetcher's pipelining and
error propagation), the :class:`~repro.clock.FakeClock` the deterministic
tests stand on, and the wiring: reader-level cache hits, runtime-level
prefetching (including crash recovery mid-pipeline), and iterative
facade runs whose second pass fetches zero remote bytes.
"""

from __future__ import annotations

import queue
import threading

import numpy as np
import pytest

import repro
from repro.cache import ChunkCache, Prefetcher
from repro.clock import FakeClock, SystemClock
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.core.api import run_serial
from repro.data.dataset import DatasetReader, build_dataset
from repro.errors import (
    ConfigurationError,
    ReproError,
    RuntimeProtocolError,
    WorkerFailure,
)
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.runtime.driver import CloudBurstingRuntime
from repro.runtime.telemetry import RunTelemetry
from repro.storage.objectstore import ObjectStore


# -- ChunkCache unit behavior ------------------------------------------------


def test_cache_rejects_nonpositive_capacity():
    with pytest.raises(ConfigurationError):
        ChunkCache(0)
    with pytest.raises(ConfigurationError):
        ChunkCache(-5)


def test_cache_round_trip_and_stats():
    cache = ChunkCache(100)
    assert cache.get("a") is None
    assert cache.put("a", b"hello") == 0
    assert cache.get("a") == b"hello"
    s = cache.stats
    assert (s.hits, s.misses, s.insertions) == (1, 1, 1)
    assert s.bytes_saved == 5
    assert cache.bytes_used == 5
    assert "a" in cache and len(cache) == 1


def test_cache_evicts_least_recently_used_first():
    cache = ChunkCache(30)
    cache.put("a", b"x" * 10)
    cache.put("b", b"y" * 10)
    cache.put("c", b"z" * 10)
    cache.get("a")  # refresh a: b is now the LRU entry
    evicted = cache.put("d", b"w" * 10)
    assert evicted == 1
    assert "b" not in cache
    assert "a" in cache and "c" in cache and "d" in cache
    assert cache.stats.evictions == 1
    assert cache.bytes_used == 30


def test_cache_rejects_oversized_entries_whole():
    cache = ChunkCache(10)
    cache.put("small", b"s" * 4)
    assert cache.put("big", b"b" * 11) == 0
    assert "big" not in cache
    assert "small" in cache  # nothing was evicted to make room
    assert cache.stats.rejected == 1


def test_cache_replacing_a_key_reaccounts_bytes():
    cache = ChunkCache(20)
    cache.put("k", b"a" * 8)
    cache.put("k", b"b" * 12)
    assert cache.bytes_used == 12
    assert cache.get("k") == b"b" * 12
    assert len(cache) == 1


def test_cache_clear_resets_contents_not_stats():
    cache = ChunkCache(100)
    cache.put("k", b"data")
    cache.get("k")
    cache.clear()
    assert len(cache) == 0 and cache.bytes_used == 0
    assert cache.stats.hits == 1  # history survives a clear


def test_cache_is_thread_safe_under_contention():
    cache = ChunkCache(512)
    errors: list[BaseException] = []

    def hammer(seed: int) -> None:
        try:
            for i in range(300):
                key = (seed * 7 + i) % 16
                cache.put(key, bytes([seed]) * 32)
                cache.get((i * 3) % 16)
                assert cache.bytes_used <= 512
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert cache.stats.hits + cache.stats.misses == 8 * 300


def test_cache_emits_trace_events_and_metrics():
    trace = EventLog()
    trace.start()
    registry = MetricsRegistry()
    cache = ChunkCache(100, trace=trace, metrics=registry)
    cache.get("k")
    cache.put("k", b"abc")
    cache.get("k")
    cache.put("other", b"d" * 98)  # evicts k
    assert len(trace.of_kind("cache_miss")) == 1
    assert len(trace.of_kind("cache_hit")) == 1
    assert len(trace.of_kind("cache_evict")) == 1
    assert registry.counter("cache_hits").value == 1
    assert registry.counter("cache_misses").value == 1
    assert registry.counter("cache_evictions").value == 1
    assert registry.gauge("bytes_saved").value == 3.0


# -- FakeClock ---------------------------------------------------------------


def test_fake_clock_owner_sleep_advances_virtually():
    clock = FakeClock(start=5.0)
    clock.sleep(2.5)
    assert clock.monotonic() == pytest.approx(7.5)
    clock.advance(0.5)
    assert clock.monotonic() == pytest.approx(8.0)


def test_fake_clock_wait_advances_past_sleeping_worker():
    with FakeClock() as clock:
        out: queue.Queue = queue.Queue()

        def worker() -> None:
            clock.sleep(60.0)
            out.put("done")

        clock.spawn(worker)
        assert clock.wait(out, 120.0) == "done"
        # Virtual time jumped straight to the worker's wake-up.
        assert clock.monotonic() == pytest.approx(60.0)


def test_fake_clock_wait_times_out_in_virtual_time():
    with FakeClock() as clock:
        out: queue.Queue = queue.Queue()

        def worker() -> None:
            clock.sleep(100.0)
            out.put("late")

        clock.spawn(worker)
        with pytest.raises(queue.Empty):
            clock.wait(out, 10.0)
        assert clock.monotonic() == pytest.approx(10.0)


def test_fake_clock_wait_refuses_to_block_forever():
    clock = FakeClock()
    # No workers and no deadline: nothing can ever arrive.
    with pytest.raises(ReproError):
        clock.wait(queue.Queue(), None)
    # With a deadline the wait times out in virtual time instead.
    with pytest.raises(queue.Empty):
        clock.wait(queue.Queue(), 5.0)
    assert clock.monotonic() == pytest.approx(5.0)


def test_system_clock_wait_maps_to_queue_get():
    clock = SystemClock()
    q: queue.Queue = queue.Queue()
    q.put(41)
    assert clock.wait(q, 1.0) == 41
    assert clock.monotonic() > 0


# -- Prefetcher --------------------------------------------------------------


def test_prefetcher_pipelines_acquire_and_fetch():
    jobs = iter([1, 2, None])
    fetched: list[int] = []

    def fetch(job: int) -> bytes:
        fetched.append(job)
        return bytes([job])

    pf = Prefetcher(lambda: next(jobs), fetch)
    try:
        pf.request()
        assert pf.take(timeout=5.0) == (1, b"\x01")
        pf.request()
        assert pf.take(timeout=5.0) == (2, b"\x02")
        pf.request()
        assert pf.take(timeout=5.0) == (None, None)
        assert fetched == [1, 2]
        assert pf.prefetches == 2
    finally:
        pf.close()


def test_prefetcher_propagates_fetch_errors():
    def fetch(job: int) -> bytes:
        raise OSError("disk gone")

    pf = Prefetcher(lambda: 7, fetch)
    try:
        pf.request()
        with pytest.raises(OSError, match="disk gone"):
            pf.take(timeout=5.0)
    finally:
        pf.close()


def test_prefetcher_propagates_acquire_errors():
    def acquire() -> int:
        raise RuntimeProtocolError("master vanished")

    pf = Prefetcher(acquire, lambda job: b"")
    try:
        pf.request()
        with pytest.raises(RuntimeProtocolError, match="master vanished"):
            pf.take(timeout=5.0)
    finally:
        pf.close()


def test_prefetcher_take_times_out_without_request():
    pf = Prefetcher(lambda: None, lambda job: b"")
    try:
        with pytest.raises(RuntimeProtocolError):
            pf.take(timeout=0.05)
    finally:
        pf.close()


# -- Reader-level cache wiring ----------------------------------------------


def materialize(app_key="histogram", total_units=2048, *, local_fraction=0.5,
                **params):
    bundle = repro.make_bundle(app_key, total_units, **params)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=total_units * rb,
        num_files=4,
        chunk_bytes=(total_units // 16) * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(spec, PlacementSpec(local_fraction), bundle.schema,
                          bundle.block_fn, stores)
    return bundle, index, stores


def test_reader_consults_cache_before_remote_fetch():
    _, index, stores = materialize()
    trace = EventLog()
    trace.start()
    registry = MetricsRegistry()
    cache = ChunkCache(1 << 20)
    reader = DatasetReader(index, stores, trace=trace, metrics=registry,
                           cache=cache)
    job = next(j for j in index.jobs()
               if index.entry(j.file_id).site == CLOUD_SITE)
    first = reader.read_job(job, from_site=LOCAL_SITE)
    second = reader.read_job(job, from_site=LOCAL_SITE)
    assert first == second
    assert cache.stats.misses == 1 and cache.stats.hits == 1
    # The remote fetch happened exactly once: the hit never touched the wire.
    assert len(trace.of_kind("remote_fetch")) == 1
    assert registry.counter("remote_bytes").value == job.nbytes


def test_reader_ignores_cache_for_local_reads():
    _, index, stores = materialize()
    cache = ChunkCache(1 << 20)
    reader = DatasetReader(index, stores, cache=cache)
    job = next(j for j in index.jobs()
               if index.entry(j.file_id).site == LOCAL_SITE)
    reader.read_job(job, from_site=LOCAL_SITE)
    reader.read_job(job, from_site=LOCAL_SITE)
    assert len(cache) == 0
    assert cache.stats.hits == 0 and cache.stats.misses == 0


def test_reader_without_cache_never_builds_cache_state():
    _, index, stores = materialize()
    reader = DatasetReader(index, stores)
    assert reader.cache is None
    job = index.jobs()[0]
    reader.read_job(job, from_site=LOCAL_SITE)  # no cache machinery involved


# -- Runtime prefetch end-to-end --------------------------------------------


def test_runtime_prefetch_matches_sequential_result():
    bundle, index, stores = materialize(bins=32)
    baseline = run_serial(
        bundle.app, DatasetReader(index, stores).read_all_chunks()
    )
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2),
        tuning=MiddlewareTuning(units_per_group=100),
        prefetch=True,
    )
    result = runtime.run()
    np.testing.assert_array_equal(result.value, baseline)
    assert result.telemetry.prefetches > 0


def test_runtime_prefetch_survives_slave_crash():
    bundle, index, stores = materialize(bins=16)
    fired = threading.Event()

    def hook(slave_id: int, job) -> None:
        if slave_id == 1 and not fired.is_set():
            fired.set()
            raise WorkerFailure("injected crash mid-pipeline")

    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2),
        tuning=MiddlewareTuning(units_per_group=100),
        fault_hook=hook,
        prefetch=True,
        join_timeout=60.0,
    )
    result = runtime.run()
    assert fired.is_set()
    oracle = run_serial(
        bundle.app, DatasetReader(index, stores).read_all_chunks()
    )
    np.testing.assert_array_equal(result.value, oracle)
    assert result.telemetry.slaves_failed == 1
    assert result.telemetry.jobs_reexecuted >= 1


def test_runtime_cache_and_prefetch_together_preserve_result():
    # All data on the cloud, all compute local: every read is cross-site,
    # so the cache traffic is deterministic regardless of scheduling.
    bundle, index, stores = materialize(bins=32, local_fraction=0.0)
    baseline = run_serial(
        bundle.app, DatasetReader(index, stores).read_all_chunks()
    )
    cache = ChunkCache(1 << 22)
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=0),
        tuning=MiddlewareTuning(units_per_group=100),
        cache=cache, prefetch=True,
    )
    first = runtime.run()
    second = runtime.run()
    np.testing.assert_array_equal(first.value, baseline)
    np.testing.assert_array_equal(second.value, baseline)
    # Pass 2 found every cross-site chunk already cached.
    assert second.telemetry.cache_misses == 0
    assert second.telemetry.cache_hits >= first.telemetry.cache_misses > 0


# -- Iterative facade --------------------------------------------------------


def test_facade_iterative_second_pass_fetches_zero_remote_bytes():
    rb = 16  # kmeans record size
    dataset = DatasetSpec(
        total_bytes=1024 * rb, num_files=4, chunk_bytes=64 * rb,
        record_bytes=rb,
    )
    registry = MetricsRegistry()
    config = repro.RunConfig(
        mode="serial", cache_bytes=1 << 22, iterations=3,
        metrics=registry, app_params={"k": 4},
    )
    result = repro.run("kmeans", dataset, config)
    assert result.passes == 3
    t = result.telemetry
    # Pass 1 misses every cloud chunk once; passes 2 and 3 hit them all, so
    # the remote byte counter stops growing after the first pass.
    assert t.cache_misses > 0
    assert t.cache_hits == 2 * t.cache_misses
    assert registry.counter("remote_bytes").value == t.bytes_saved // 2
    assert t.cache_evictions == 0


def test_facade_converge_stops_early():
    rb = 16
    dataset = DatasetSpec(
        total_bytes=1024 * rb, num_files=4, chunk_bytes=64 * rb,
        record_bytes=rb,
    )
    config = repro.RunConfig(
        mode="serial", iterations=50, converge=1e12,  # converges instantly
        app_params={"k": 4},
    )
    result = repro.run("kmeans", dataset, config)
    assert result.passes == 2  # pass 2's result compared against pass 1's


def test_facade_rejects_bad_cache_and_iteration_knobs():
    with pytest.raises(ConfigurationError):
        repro.RunConfig(cache_bytes=-1)
    with pytest.raises(ConfigurationError):
        repro.RunConfig(iterations=0)
    with pytest.raises(ConfigurationError):
        repro.RunConfig(converge=-0.5)


# -- Telemetry round-trips ---------------------------------------------------


def test_run_telemetry_round_trips_cache_fields():
    t = RunTelemetry(wall_seconds=1.5)
    t.cache_hits = 7
    t.cache_misses = 3
    t.cache_evictions = 2
    t.bytes_saved = 4096
    t.prefetches = 11
    doc = t.to_dict()
    back = RunTelemetry.from_dict(doc)
    assert back.cache_hits == 7
    assert back.cache_misses == 3
    assert back.cache_evictions == 2
    assert back.bytes_saved == 4096
    assert back.prefetches == 11


def test_sim_report_round_trips_cache_fields():
    from repro.sim.metrics import SimReport

    report = SimReport(
        experiment="e", app="kmeans", makespan=10.0, global_reduction=1.0,
        cache_hits=5, cache_misses=3,
    )
    back = SimReport.from_json(report.to_json())
    assert back.cache_hits == 5 and back.cache_misses == 3
