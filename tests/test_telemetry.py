"""Tests for runtime telemetry and the exception hierarchy."""

from __future__ import annotations

import pytest

import repro.errors as errors
from repro.runtime.telemetry import (
    ClusterTelemetry,
    RunTelemetry,
    SlaveTelemetry,
    Stopwatch,
)


def test_stopwatch_accumulates():
    # Injected clock: intervals are exact, no real sleeping.
    now = [0.0]
    watch = Stopwatch(clock=lambda: now[0])
    with watch:
        now[0] = 0.25
    assert watch.total == pytest.approx(0.25)
    with watch:
        now[0] = 1.0
    assert watch.total == pytest.approx(1.0)


def test_cluster_aggregate_means():
    slaves = []
    for i, (proc, retr, jobs) in enumerate([(1.0, 2.0, 3), (3.0, 4.0, 5)]):
        s = SlaveTelemetry(slave_id=i, cluster="c")
        s.processing.total = proc
        s.retrieval.total = retr
        s.jobs = jobs
        slaves.append(s)
    agg = ClusterTelemetry.aggregate("c", "local", slaves, stolen=2)
    assert agg.jobs == 8
    assert agg.stolen == 2
    assert agg.slaves == 2
    assert agg.mean_processing == pytest.approx(2.0)
    assert agg.mean_retrieval == pytest.approx(3.0)


def test_cluster_aggregate_empty_crew():
    agg = ClusterTelemetry.aggregate("c", "local", [], stolen=0)
    assert agg.jobs == 0
    assert agg.mean_processing == 0.0


def test_run_telemetry_totals():
    run = RunTelemetry(wall_seconds=1.5)
    run.clusters["a"] = ClusterTelemetry("a", "local", 2, 10, 3, 0.1, 0.2)
    run.clusters["b"] = ClusterTelemetry("b", "cloud", 2, 6, 0, 0.1, 0.2)
    assert run.total_jobs == 16
    assert run.total_stolen == 3
    assert run.slaves_failed == 0


# -- exception hierarchy ------------------------------------------------------


def test_every_error_is_a_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is errors.ReproError:
                continue
            assert issubclass(obj, errors.ReproError), name


def test_object_not_found_carries_key():
    exc = errors.ObjectNotFoundError("some/key")
    assert exc.key == "some/key"
    assert "some/key" in str(exc)
    assert isinstance(exc, errors.StorageError)


def test_worker_failure_is_catchable_as_repro_error():
    with pytest.raises(errors.ReproError):
        raise errors.WorkerFailure("node down")
