"""Global-reduction sync: plan shapes, spec validation, codec accounting,
head timing via an injectable clock, streaming fault tolerance, and the
topology story (tree beats star on a shared head-ingress trunk).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.apps import make_bundle
from repro.apps.base import get_profile
from repro.bench.configs import env_config
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.core.api import run_serial
from repro.core.index import build_index
from repro.core.reduction import DictReduction, ScalarReduction, from_bytes
from repro.core.scheduler import HeadScheduler
from repro.core.sync import (
    SyncCodec,
    SyncSpec,
    build_sync_plan,
    plan_depth,
    plan_roots,
)
from repro.data.dataset import DatasetReader, build_dataset
from repro.errors import ConfigurationError, RuntimeProtocolError, WorkerFailure
from repro.network.topology import Link
from repro.network.transfer import sync_aggregation_time, transfer_time
from repro.runtime.driver import CloudBurstingRuntime
from repro.runtime.head import HeadNode, HeadSync
from repro.runtime.messages import ReductionUpload
from repro.sim.multisite import (
    CrossPath,
    MultiSiteConfig,
    MultiSiteSimulation,
    SiteSpec,
)
from repro.sim.simulation import CloudBurstSimulation
from repro.sim.storagemodel import StorePath
from repro.storage.objectstore import ObjectStore
from repro.units import MB

from conftest import small_spec


# -- plan shapes -------------------------------------------------------------


def test_star_plan_everyone_uploads_to_head():
    plan = build_sync_plan(["a", "b", "c", "d"], "star")
    assert plan_roots(plan) == ["a", "b", "c", "d"]
    assert plan_depth(plan) == 1
    assert all(node.children == () for node in plan.values())


def test_tree_plan_uses_heap_indexing():
    names = [f"c{i}" for i in range(7)]
    plan = build_sync_plan(names, "tree", fanout=2)
    assert plan_roots(plan) == ["c0"]
    assert plan["c0"].children == ("c1", "c2")
    assert plan["c1"].children == ("c3", "c4")
    assert plan["c2"].children == ("c5", "c6")
    assert plan_depth(plan) == 3
    # A parent always precedes its children in cluster order, so the
    # runtime can build masters in index order and wire parent inboxes.
    order = {name: i for i, name in enumerate(names)}
    for node in plan.values():
        if node.parent is not None:
            assert order[node.parent] < order[node.name]


def test_tree_plan_respects_fanout():
    plan = build_sync_plan([f"c{i}" for i in range(5)], "tree", fanout=4)
    assert plan["c0"].children == ("c1", "c2", "c3", "c4")
    assert plan_depth(plan) == 2


def test_ring_plan_is_a_chain():
    plan = build_sync_plan(["a", "b", "c"], "ring")
    assert plan["c"].parent == "b" and plan["b"].parent == "a"
    assert plan["a"].parent is None
    assert plan_depth(plan) == 3


def test_single_cluster_plans_degenerate_to_star():
    for topology in ("star", "tree", "ring"):
        plan = build_sync_plan(["only"], topology)
        assert plan_roots(plan) == ["only"] and plan_depth(plan) == 1


def test_plan_rejects_bad_inputs():
    with pytest.raises(ConfigurationError, match="at least one"):
        build_sync_plan([], "star")
    with pytest.raises(ConfigurationError, match="duplicate"):
        build_sync_plan(["a", "a"], "tree")
    with pytest.raises(ConfigurationError, match="topology"):
        build_sync_plan(["a"], "mesh")


# -- spec validation ---------------------------------------------------------


def test_spec_validation():
    with pytest.raises(ConfigurationError, match="topology"):
        SyncSpec(topology="mesh")
    with pytest.raises(ConfigurationError, match="encoding"):
        SyncSpec(encoding="huffman")
    with pytest.raises(ConfigurationError, match="compression"):
        SyncSpec(compress="zstd")
    with pytest.raises(ConfigurationError, match="watermark"):
        SyncSpec(watermark=0)
    with pytest.raises(ConfigurationError, match="fanout"):
        SyncSpec(fanout=0)
    with pytest.raises(ConfigurationError, match="sim_ratio"):
        SyncSpec(sim_ratio=0.0)


def test_spec_is_default_ignores_sim_only_knobs():
    assert SyncSpec().is_default
    assert SyncSpec(watermark=3, fanout=5, sim_ratio=0.5).is_default
    assert not SyncSpec(topology="tree").is_default
    assert not SyncSpec(encoding="auto").is_default
    assert not SyncSpec(compress="zlib").is_default
    assert not SyncSpec(stream=True).is_default


# -- codec accounting --------------------------------------------------------


def test_codec_tracks_bytes_saved_per_channel():
    codec = SyncCodec(SyncSpec(encoding="delta", compress="zlib"))
    robj = DictReduction("sum", {f"w{i}": i for i in range(200)})
    for _ in range(3):
        blob = codec.encode("cloud-cluster", robj).blob
        assert codec.decode("cloud-cluster", blob).to_bytes() == robj.to_bytes()
    stats = codec.stats
    assert stats.uploads == 3
    assert stats.dense_bytes == 3 * len(robj.to_bytes())
    # Passes 2 and 3 are pure deltas of an unchanged object: near-free.
    assert stats.bytes_saved > stats.dense_bytes // 2
    assert stats.encodings.get("delta", 0) >= 2


# -- head timing via the injectable clock ------------------------------------


class TickClock:
    """monotonic() advances exactly one second per call."""

    def __init__(self) -> None:
        self.now = 0.0

    def monotonic(self) -> float:
        self.now += 1.0
        return self.now


def make_head(clusters, **kwargs):
    spec = small_spec(record_bytes=4, files=2, chunks_per_file=2)
    index = build_index(spec, PlacementSpec(local_fraction=1.0))
    scheduler = HeadScheduler(index.jobs(), MiddlewareTuning())
    for name in clusters:
        scheduler.register_cluster(name, LOCAL_SITE)
    return HeadNode(scheduler, list(clusters), **kwargs)


def test_head_barrier_timing_is_clock_driven():
    clock = TickClock()
    head = make_head(("a", "b"), clock=clock)
    for name in ("a", "b"):
        head.inbox.post(
            ReductionUpload(cluster=name, blob=ScalarReduction("sum", 1.0).to_bytes())
        )
    head._serve()  # drive on this thread: timing must come from the clock
    # One started/finished pair around the whole barrier merge: 1 tick.
    assert head.global_reduction_seconds == 1.0
    assert from_bytes(head.result.blob).value() == 2.0


def test_head_stream_timing_accumulates_per_upload():
    clock = TickClock()
    codec = SyncCodec(SyncSpec(stream=True))
    sync = HeadSync(codec=codec, roots=("a", "b"), stream=True)
    head = make_head(("a", "b"), clock=clock, sync=sync)
    for name in ("a", "b"):
        blob = codec.encode(name, ScalarReduction("sum", 2.0)).blob
        head.inbox.post(ReductionUpload(cluster=name, blob=blob))
    head._serve()
    # One started/finished pair per streamed merge: 2 ticks in total.
    assert head.global_reduction_seconds == 2.0
    assert from_bytes(head.result.blob).value() == 4.0


def test_head_rejects_incomplete_coverage():
    codec = SyncCodec(SyncSpec(topology="tree"))
    sync = HeadSync(codec=codec, roots=("a",))
    head = make_head(("a", "b", "c"), sync=sync)
    blob = codec.encode("a", ScalarReduction("sum", 1.0)).blob
    head.inbox.post(ReductionUpload(cluster="a", blob=blob, origins=("a", "b")))
    with pytest.raises(RuntimeProtocolError, match="coverage"):
        head._serve()  # "c" never showed up in any origins


def test_head_accepts_relayed_coverage():
    codec = SyncCodec(SyncSpec(topology="ring"))
    sync = HeadSync(codec=codec, roots=("a",))
    head = make_head(("a", "b", "c"), sync=sync)
    blob = codec.encode("a", ScalarReduction("sum", 6.0)).blob
    head.inbox.post(
        ReductionUpload(cluster="a", blob=blob, origins=("a", "b", "c"))
    )
    head._serve()
    assert from_bytes(head.result.blob).value() == 6.0


# -- runtime equivalence and streaming fault tolerance -----------------------


def materialize(app_key="histogram", total_units=2048, **params):
    bundle = make_bundle(app_key, total_units, **params)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=total_units * rb,
        num_files=4,
        chunk_bytes=(total_units // 16) * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    return bundle, index, stores


def run_once(bundle, index, stores, sync=None, fault_hook=None, cores=(1, 1)):
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=cores[0], cloud_cores=cores[1]),
        tuning=MiddlewareTuning(units_per_group=100),
        sync=sync,
        fault_hook=fault_hook,
    )
    return runtime.run()


def test_runtime_sync_telemetry_accounts_for_wire_savings():
    bundle, index, stores = materialize("wordcount", vocabulary=64)
    oracle = run_serial(
        bundle.app, DatasetReader(index, stores).read_all_chunks()
    )
    result = run_once(
        bundle, index, stores,
        sync=SyncSpec(encoding="auto", compress="zlib"),
    )
    assert result.value == oracle
    t = result.telemetry
    assert t.sync_uploads == 2  # one combined object per cluster
    assert t.sync_bytes_sent > 0
    assert t.sync_bytes_saved > 0  # zlib easily beats pickled dicts
    assert t.sync_partial_merges == 0  # barrier mode: no partial flushes


def test_runtime_streaming_flushes_partials():
    bundle, index, stores = materialize("histogram")
    oracle = run_serial(
        bundle.app, DatasetReader(index, stores).read_all_chunks()
    )
    result = run_once(
        bundle, index, stores,
        sync=SyncSpec(stream=True, watermark=2),
        cores=(2, 2),
    )
    np.testing.assert_array_equal(result.value, oracle)
    assert result.telemetry.sync_partial_merges > 0


class CrashOnce:
    """Kill one slave after it has processed ``after`` jobs."""

    def __init__(self, victim: int, after: int) -> None:
        self.victim = victim
        self.after = after
        self.count = 0

    def __call__(self, slave_id: int, job) -> None:
        if slave_id == self.victim:
            self.count += 1
            if self.count == self.after + 1:
                raise WorkerFailure(f"injected crash of slave {slave_id}")


def test_streaming_commits_flushed_work_across_a_crash():
    """A dead slave's flushed partials survive: only the jobs since its
    last watermark flush (plus the in-flight one) are re-executed, and
    the result still equals the oracle."""
    bundle, index, stores = materialize("histogram")
    oracle = run_serial(
        bundle.app, DatasetReader(index, stores).read_all_chunks()
    )
    watermark = 1
    streamed = run_once(
        bundle, index, stores,
        sync=SyncSpec(stream=True, watermark=watermark),
        fault_hook=CrashOnce(victim=0, after=2),
        cores=(2, 2),
    )
    np.testing.assert_array_equal(streamed.value, oracle)
    assert streamed.telemetry.slaves_failed == 1
    # Every processed job was flushed (watermark 1), so only the job that
    # was in flight at the crash replays.
    assert 0 < streamed.telemetry.jobs_reexecuted <= watermark + 1

    barrier = run_once(
        bundle, index, stores, fault_hook=CrashOnce(victim=0, after=2),
        cores=(2, 2),
    )
    np.testing.assert_array_equal(barrier.value, oracle)
    # Without commits the whole history of the victim replays.
    assert barrier.telemetry.jobs_reexecuted >= 3


# -- simulators --------------------------------------------------------------


def test_sim_default_spec_is_byte_identical_to_legacy():
    config = env_config("pagerank", "env-50/50", scale=0.05)
    legacy = CloudBurstSimulation(config).run()
    default = CloudBurstSimulation(config, sync=SyncSpec()).run()
    assert default.makespan == legacy.makespan
    assert default.events_processed == legacy.events_processed


@pytest.mark.parametrize("topology", ("star", "tree", "ring"))
def test_sim_topologies_keep_invariants(topology):
    config = env_config("pagerank", "env-50/50", scale=0.05)
    report = CloudBurstSimulation(
        config, sync=SyncSpec(topology=topology, stream=True)
    ).run()
    report.validate()
    assert report.total_jobs == CloudBurstSimulation(config).run().total_jobs


def test_sim_ratio_cuts_modeled_sync_time():
    config = env_config("pagerank", "env-50/50", scale=0.05)
    dense = CloudBurstSimulation(config, sync=SyncSpec(topology="ring")).run()
    thin = CloudBurstSimulation(
        config, sync=SyncSpec(topology="ring", sim_ratio=0.01)
    ).run()
    assert thin.makespan < dense.makespan


# -- multisite: the tree-beats-star story ------------------------------------


def _many_site_config(n_sites=6, ingress_mb=4):
    def storage_path(name):
        return StorePath(
            name=name, bandwidth=200 * MB, per_connection_cap=20 * MB,
            request_latency=0.001,
        )

    names = ["campus"] + [f"cloud{i}" for i in range(1, n_sites)]
    sites = tuple(
        SiteSpec(name=name, cores=2, data_files=1, storage=storage_path(name))
        for name in names
    )
    cross = tuple(
        CrossPath(
            src=a, dst=b,
            path=StorePath(
                name=f"{a}->{b}", bandwidth=40 * MB,
                per_connection_cap=20 * MB, request_latency=0.05,
            ),
        )
        for a in names for b in names if a != b
    )
    return MultiSiteConfig(
        name="wan-tax",
        app="kmeans",
        dataset=DatasetSpec(
            total_bytes=n_sites * 4 * MB,
            num_files=n_sites,
            chunk_bytes=1 * MB,
            record_bytes=4,
        ),
        sites=sites,
        cross_paths=cross,
        head_site="campus",
        head_ingress_bandwidth=ingress_mb * MB,
    )


def _big_robj_profile():
    return replace(get_profile("kmeans"), robj_bytes=64 * MB)


def test_multisite_tree_beats_star_on_shared_ingress():
    """With a 64 MB reduction object and a skinny shared trunk into the
    head site, star's n-1 concurrent flows strangle each other while
    tree ships at most a level's worth at a time."""
    config = _many_site_config()
    profile = _big_robj_profile()
    results = {
        topo: MultiSiteSimulation(
            config, profile=profile, sync=SyncSpec(topology=topo)
        ).run()
        for topo in ("star", "tree", "ring")
    }
    for report in results.values():
        report.validate()
    assert results["tree"].makespan < results["star"].makespan
    assert results["ring"].makespan < results["star"].makespan


def test_multisite_star_spec_matches_legacy_exactly():
    config = _many_site_config()
    profile = _big_robj_profile()
    legacy = MultiSiteSimulation(config, profile=profile).run()
    star = MultiSiteSimulation(
        config, profile=profile, sync=SyncSpec(topology="star")
    ).run()
    assert star.makespan == legacy.makespan


def test_multisite_sim_ratio_models_wire_savings():
    config = _many_site_config()
    profile = _big_robj_profile()
    dense = MultiSiteSimulation(
        config, profile=profile, sync=SyncSpec(topology="tree")
    ).run()
    thin = MultiSiteSimulation(
        config, profile=profile,
        sync=SyncSpec(topology="tree", sim_ratio=0.1),
    ).run()
    assert thin.makespan < dense.makespan


def test_head_ingress_bandwidth_validation():
    with pytest.raises(ConfigurationError, match="ingress"):
        _many_site_config(ingress_mb=0)


# -- closed-form estimates ---------------------------------------------------


def test_sync_aggregation_time_closed_forms():
    link = Link("sites", "head", bandwidth=100.0, latency=0.5)
    one = transfer_time(link, 1000)
    # Star: one n-way shared transfer plus n serial head merges.
    star = sync_aggregation_time(
        link, 1000, 4, merge_seconds=2.0, topology="star"
    )
    assert star == pytest.approx(transfer_time(link, 1000, concurrent_flows=4) + 8.0)
    # Ring: n serial single-flow hops, one merge each.
    ring = sync_aggregation_time(
        link, 1000, 4, merge_seconds=2.0, topology="ring"
    )
    assert ring == pytest.approx(4 * (one + 2.0))
    # Tree sits between the two extremes on a capped trunk.
    capped = Link("sites", "head", bandwidth=100.0, latency=0.5,
                  per_flow_cap=50.0)
    times = {
        topo: sync_aggregation_time(capped, 10_000, 8, topology=topo)
        for topo in ("star", "tree", "ring")
    }
    assert times["star"] <= times["tree"] <= times["ring"]


def test_sync_aggregation_time_rejects_bad_inputs():
    link = Link("a", "b", bandwidth=10.0)
    with pytest.raises(ConfigurationError):
        sync_aggregation_time(link, -1, 2)
    with pytest.raises(ConfigurationError):
        sync_aggregation_time(link, 10, 0)
    with pytest.raises(ConfigurationError):
        sync_aggregation_time(link, 10, 2, merge_seconds=-1.0)
