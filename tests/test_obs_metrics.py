"""Tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)


def test_counter_inc_and_reject_negative():
    reg = MetricsRegistry()
    c = reg.counter("jobs")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ObservabilityError):
        c.inc(-1)


def test_gauge_set_and_add():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(3)
    g.add(2.5)
    assert g.value == pytest.approx(5.5)


def test_histogram_buckets_and_mean():
    h = Histogram("lat", (0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    assert h.counts == [1, 1, 1, 1]  # one value per bucket + overflow
    assert h.count == 4
    assert h.mean == pytest.approx((0.005 + 0.05 + 0.5 + 5.0) / 4)


def test_histogram_boundary_lands_in_lower_bucket():
    h = Histogram("lat", (0.01, 0.1))
    h.observe(0.01)  # exactly on a bound: counts as <= bound
    assert h.counts == [1, 0, 0]


def test_histogram_quantile_is_bucket_resolution():
    h = Histogram("lat", (1.0, 2.0, 4.0))
    for _ in range(90):
        h.observe(0.5)
    for _ in range(10):
        h.observe(3.0)
    assert h.quantile(0.5) == 1.0
    assert h.quantile(0.95) == 4.0
    assert Histogram("empty", (1.0,)).quantile(0.9) == 0.0
    with pytest.raises(ObservabilityError):
        h.quantile(1.5)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ObservabilityError):
        Histogram("bad", ())
    with pytest.raises(ObservabilityError):
        Histogram("bad", (1.0, 0.5))


def test_registry_get_or_create_shares_instruments():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("h") is reg.histogram("h")
    assert reg.histogram("h").buckets == DEFAULT_LATENCY_BUCKETS


def test_registry_name_collisions_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ObservabilityError):
        reg.gauge("x")
    with pytest.raises(ObservabilityError):
        reg.histogram("x")
    reg.histogram("h", (1.0, 2.0))
    with pytest.raises(ObservabilityError):
        reg.histogram("h", (1.0, 3.0))  # different buckets, same name


def test_snapshot_is_plain_json_data():
    import json

    reg = MetricsRegistry()
    reg.counter("jobs").inc(3)
    reg.gauge("workers").set(4)
    reg.histogram("lat", (0.1, 1.0)).observe(0.05)
    snap = reg.snapshot()
    doc = json.loads(json.dumps(snap))
    assert doc["counters"]["jobs"] == 3
    assert doc["gauges"]["workers"] == 4.0
    hist = doc["histograms"]["lat"]
    assert hist["buckets"] == [0.1, 1.0]
    assert hist["counts"] == [1, 0, 0]
    assert hist["count"] == 1
    assert hist["mean"] == pytest.approx(0.05)


def test_concurrent_counter_increments():
    reg = MetricsRegistry()
    c = reg.counter("n")
    h = reg.histogram("lat", (0.5,))

    def work():
        for _ in range(1000):
            c.inc()
            h.observe(0.1)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000
    assert h.count == 8000
    assert h.counts[0] == 8000
