"""Per-application tests: correctness against serial references and the
order-independence contract of the Generalized Reduction API."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    PAPER_APPS,
    available_apps,
    get_app_factory,
    make_bundle,
)
from repro.apps.base import get_profile
from repro.apps.kmeans import KMeansApp
from repro.apps.knn import KnnApp
from repro.apps.pagerank import PageRankApp
from repro.baselines.serial import (
    histogram_reference,
    kmeans_reference,
    knn_reference,
    pagerank_reference,
    wordcount_reference,
)
from repro.core.api import run_serial
from repro.core.reduction import merge_all
from repro.errors import ConfigurationError


def test_registry_contains_all_apps():
    apps = available_apps()
    for key in ("knn", "kmeans", "pagerank", "wordcount", "histogram"):
        assert key in apps
    assert set(PAPER_APPS) <= set(apps)
    with pytest.raises(ConfigurationError):
        get_app_factory("no-such-app")
    with pytest.raises(ConfigurationError):
        get_profile("no-such-app")


def test_paper_profiles_match_paper_setup():
    # Record sizes tie the 120 GB dataset to the paper's element counts.
    assert get_profile("knn").record_bytes == 4  # ~32.1e9 elements
    assert get_profile("kmeans").record_bytes == 16
    assert get_profile("pagerank").record_bytes == 128  # ~1e9 edges
    assert get_profile("pagerank").robj_bytes == 300 * 1024 * 1024
    assert get_profile("kmeans").cloud_slowdown == pytest.approx(22 / 16)


def chunks_for(bundle, total_units, chunk_units):
    out = []
    for start in range(0, total_units, chunk_units):
        block = bundle.block_fn(start, min(chunk_units, total_units - start), start)
        out.append(bundle.schema.encode(block))
    return out


@pytest.mark.parametrize("key", ["knn", "kmeans", "pagerank", "wordcount", "histogram"])
def test_group_size_invariance(key):
    """The paper's contract: the result is independent of how the runtime
    batches data units."""
    bundle = make_bundle(key, 512)
    chunks = chunks_for(bundle, 512, 128)
    a = run_serial(bundle.app, chunks, units_per_group=16)
    b = run_serial(bundle.app, chunks, units_per_group=512)
    if isinstance(a, np.ndarray):
        np.testing.assert_allclose(a, b, atol=1e-6)
    else:
        assert a == b


@pytest.mark.parametrize("key", ["knn", "wordcount", "histogram", "pagerank"])
def test_chunk_order_invariance(key):
    bundle = make_bundle(key, 512)
    chunks = chunks_for(bundle, 512, 64)
    forward = run_serial(bundle.app, chunks)
    backward = run_serial(bundle.app, list(reversed(chunks)))
    if isinstance(forward, np.ndarray):
        np.testing.assert_allclose(forward, backward, rtol=1e-12, atol=1e-12)
    else:
        assert forward == backward


# -- knn ---------------------------------------------------------------------


def test_knn_against_reference():
    bundle = make_bundle("knn", 1000, dims=4, k=25)
    chunks = chunks_for(bundle, 1000, 250)
    result = run_serial(bundle.app, chunks)
    decoded = np.concatenate([bundle.app.decode_chunk(c) for c in chunks])
    expected = knn_reference(decoded["id"], decoded["coords"], bundle.app.query, 25)
    assert result == expected
    assert len(result) == 25


def test_knn_fewer_points_than_k():
    app = KnnApp(query=np.zeros(2, dtype=np.float32), k=100)
    robj = app.create_reduction_object()
    pts = np.zeros(3, dtype=app._schema.dtype)
    pts["id"] = [1, 2, 3]
    pts["coords"] = [[0, 0], [1, 0], [0, 1]]
    app.local_reduction(robj, pts)
    assert len(app.finalize(robj)) == 3


def test_knn_rejects_bad_query():
    with pytest.raises(ValueError):
        KnnApp(query=np.zeros((2, 2)))


# -- kmeans ---------------------------------------------------------------------


def test_kmeans_against_reference():
    bundle = make_bundle("kmeans", 600, dims=3, k=5)
    chunks = chunks_for(bundle, 600, 150)
    result = run_serial(bundle.app, chunks)
    decoded = np.concatenate([bundle.app.decode_chunk(c) for c in chunks])
    expected = kmeans_reference(decoded, bundle.app.centroids)
    np.testing.assert_allclose(result, expected, atol=1e-4)


def test_kmeans_empty_cluster_keeps_centroid():
    far = np.array([[100.0, 100.0], [0.0, 0.0]], dtype=np.float32)
    app = KMeansApp(far)
    robj = app.create_reduction_object()
    app.local_reduction(robj, np.zeros((5, 2), dtype=np.float32))
    out = app.finalize(robj)
    np.testing.assert_allclose(out[0], [100.0, 100.0])  # untouched
    np.testing.assert_allclose(out[1], [0.0, 0.0])


def test_kmeans_update_validates_shape():
    app = KMeansApp(np.zeros((3, 2), dtype=np.float32))
    with pytest.raises(ValueError):
        app.update(np.zeros((4, 2)))
    with pytest.raises(ValueError):
        KMeansApp(np.zeros(3))


# -- pagerank --------------------------------------------------------------------


def test_pagerank_against_reference_and_stochasticity():
    bundle = make_bundle("pagerank", 4000)
    chunks = chunks_for(bundle, 4000, 500)
    result = run_serial(bundle.app, chunks)
    decoded = np.concatenate([bundle.app.decode_chunk(c) for c in chunks])
    expected = pagerank_reference(decoded, bundle.app.n_pages)
    np.testing.assert_allclose(result, expected, rtol=1e-12)
    assert result.sum() == pytest.approx(1.0)
    assert (result > 0).all()


def test_pagerank_dangling_mass_redistributed():
    # Page 2 has no out-edges; total rank must still sum to 1.
    edges = np.array([[0, 1], [1, 2]], dtype=np.int32)
    outdeg = np.bincount(edges[:, 0], minlength=3).astype(np.int64)
    app = PageRankApp(3, outdeg)
    robj = app.create_reduction_object()
    app.local_reduction(robj, edges)
    ranks = app.finalize(robj)
    assert ranks.sum() == pytest.approx(1.0)


def test_pagerank_validation():
    with pytest.raises(ValueError):
        PageRankApp(0, np.zeros(0, dtype=np.int64))
    with pytest.raises(ValueError):
        PageRankApp(3, np.zeros(4, dtype=np.int64))
    with pytest.raises(ValueError):
        PageRankApp(3, np.zeros(3, dtype=np.int64), damping=1.5)
    app = PageRankApp(3, np.zeros(3, dtype=np.int64))
    with pytest.raises(ValueError):
        app.update(np.zeros(4))


# -- wordcount / histogram -----------------------------------------------------------


def test_wordcount_against_reference():
    bundle = make_bundle("wordcount", 2000, vocabulary=50)
    chunks = chunks_for(bundle, 2000, 400)
    result = run_serial(bundle.app, chunks)
    decoded = np.concatenate([bundle.app.decode_chunk(c) for c in chunks])
    assert result == wordcount_reference(decoded)
    assert sum(result.values()) == 2000


def test_histogram_against_reference_and_clipping():
    bundle = make_bundle("histogram", 2000, bins=16)
    chunks = chunks_for(bundle, 2000, 500)
    result = run_serial(bundle.app, chunks)
    decoded = np.concatenate([bundle.app.decode_chunk(c) for c in chunks])
    expected = histogram_reference(decoded, 16, bundle.app.lo, bundle.app.hi)
    np.testing.assert_array_equal(result, expected)
    assert result.sum() == 2000  # clipping conserves every unit


# -- property: worker partitioning invariance -----------------------------------------


@settings(deadline=None, max_examples=20)
@given(
    key=st.sampled_from(["knn", "wordcount", "histogram"]),
    cut=st.integers(1, 7),
)
def test_worker_split_invariance(key, cut):
    """Splitting units among W 'workers' and merging their reduction
    objects gives the single-worker result — the global-reduction contract."""
    bundle = make_bundle(key, 256)
    units = bundle.block_fn(0, 256, 0)
    app = bundle.app
    single = app.create_reduction_object()
    app.local_reduction(single, units)
    boundary = 256 * cut // 8
    parts = []
    for piece in (units[:boundary], units[boundary:]):
        robj = app.create_reduction_object()
        if len(piece):
            app.local_reduction(robj, piece)
        parts.append(robj)
    merged = merge_all(parts)
    a, b = app.finalize(single), app.finalize(merged)
    if isinstance(a, np.ndarray):
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)
    else:
        assert a == b
