"""The zero-copy data path: decode views, their read-only contract, and
the edge cases a view-based pipeline must survive.

A chunk read now comes back as a read-only ``memoryview`` aliasing the
fetched buffer, and ``RecordSchema.decode`` turns it into a read-only
``np.frombuffer`` array — no byte is copied between the storage layer and
the reduction kernel. These tests pin the contract: decode results reject
in-place mutation, views over odd offsets and ragged groups decode
correctly, empty chunks decode to empty arrays, and a view outlives the
cache entry it aliases.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cache import ChunkCache
from repro.config import DatasetSpec
from repro.core.api import GeneralizedReductionApp, run_serial
from repro.core.reduction import ArrayReduction
from repro.data.chunks import readonly_view
from repro.data.records import (
    EDGE_SCHEMA,
    TOKEN_SCHEMA,
    VALUE_SCHEMA,
    idpoint_schema,
    point_schema,
)
from repro.errors import DataFormatError

ALL_SCHEMAS = (
    point_schema(4),
    idpoint_schema(3),
    EDGE_SCHEMA,
    TOKEN_SCHEMA,
    VALUE_SCHEMA,
)


def _sample_units(schema, n=12):
    if schema.columns:
        shape = (n, schema.columns)
        return np.arange(n * schema.columns, dtype=schema.dtype).reshape(shape)
    out = np.zeros(n, dtype=schema.dtype)
    if schema.dtype.fields:
        out["id"] = np.arange(n)
        out["coords"] = 1.5
    return out


# -- the read-only contract --------------------------------------------------


@pytest.mark.parametrize("schema", ALL_SCHEMAS, ids=lambda s: s.name)
def test_decode_views_are_read_only(schema):
    units = _sample_units(schema)
    decoded = schema.decode(schema.encode(units))
    assert not decoded.flags.writeable
    with pytest.raises(ValueError):
        decoded[0] = decoded[0]


def test_decode_read_only_even_over_writable_buffer():
    """A writable source (bytearray, shm-style) still decodes read-only."""
    raw = bytearray(VALUE_SCHEMA.encode(_sample_units(VALUE_SCHEMA)))
    decoded = VALUE_SCHEMA.decode(raw)
    assert not decoded.flags.writeable
    with pytest.raises(ValueError):
        decoded += 1.0


def test_mutating_kernel_raises():
    """Regression: an application kernel that scribbles on its input units
    fails loudly instead of silently corrupting aliased views."""

    class MutatingApp(GeneralizedReductionApp):
        def create_reduction_object(self):
            return ArrayReduction(1)

        def decode_chunk(self, raw):
            return VALUE_SCHEMA.decode(raw)

        def local_reduction(self, robj, units):
            units *= 2.0  # forbidden in-place mutation
            robj.data[0] += float(units.sum())

        def finalize(self, robj):
            return robj.data

    chunk = VALUE_SCHEMA.encode(_sample_units(VALUE_SCHEMA))
    with pytest.raises(ValueError):
        run_serial(MutatingApp(), [chunk])


# -- decode-view edge cases --------------------------------------------------


def test_decode_view_at_unaligned_offset():
    """A view sliced at an offset that is not a multiple of the dtype's
    alignment (here: 1 header byte before float64 records) still decodes
    to the right values — np.frombuffer handles unaligned buffers."""
    units = _sample_units(VALUE_SCHEMA)
    payload = VALUE_SCHEMA.encode(units)
    framed = b"\x01" + payload + b"\x02"
    view = readonly_view(framed)[1 : 1 + len(payload)]
    decoded = VALUE_SCHEMA.decode(view)
    np.testing.assert_array_equal(decoded, units)
    assert not decoded.flags.writeable


def test_decode_view_mid_blob_offset():
    """Slicing a multi-chunk blob at a record boundary (the reader's
    offset/nbytes pattern) decodes exactly the addressed chunk."""
    units = _sample_units(EDGE_SCHEMA, n=16)
    blob = readonly_view(EDGE_SCHEMA.encode(units))
    rb = EDGE_SCHEMA.record_bytes
    middle = EDGE_SCHEMA.decode(blob[4 * rb : 12 * rb])
    np.testing.assert_array_equal(middle, units[4:12])


def test_decode_rejects_partial_record_view():
    payload = VALUE_SCHEMA.encode(_sample_units(VALUE_SCHEMA))
    torn = readonly_view(payload)[: len(payload) - 3]
    with pytest.raises(DataFormatError):
        VALUE_SCHEMA.decode(torn)


def test_decode_empty_chunk():
    for schema in ALL_SCHEMAS:
        decoded = schema.decode(readonly_view(b""))
        assert decoded.size == 0
        assert not decoded.flags.writeable


def test_ragged_final_unit_group():
    """A group size that does not divide the unit count covers every unit
    exactly once, with a short final group — over a decoded view."""
    app = repro.make_bundle("histogram", 12).app
    units = app.decode_chunk(
        readonly_view(VALUE_SCHEMA.encode(_sample_units(VALUE_SCHEMA)))
    )
    groups = list(app.unit_groups(units, 5))
    assert [len(g) for g in groups] == [5, 5, 2]
    rejoined = np.concatenate([np.asarray(g) for g in groups])
    np.testing.assert_array_equal(rejoined, np.asarray(units))


# -- views vs. the cache -----------------------------------------------------


def test_view_survives_cache_eviction():
    """Eviction drops the cache's reference, not the buffer: a decoded
    view taken before the entry was evicted stays valid and correct."""
    units = _sample_units(VALUE_SCHEMA, n=8)
    payload = VALUE_SCHEMA.encode(units)
    cache = ChunkCache(capacity_bytes=len(payload))
    cache.put("chunk-0", readonly_view(payload))
    held = VALUE_SCHEMA.decode(cache.get("chunk-0"))
    # A same-size insert must evict chunk-0 to fit.
    cache.put("chunk-1", readonly_view(bytes(len(payload))))
    assert "chunk-0" not in cache
    assert cache.stats.evictions == 1
    np.testing.assert_array_equal(held, units.ravel().reshape(-1, 1))


def test_cache_sizes_memoryview_entries():
    payload = readonly_view(bytes(256))
    cache = ChunkCache(capacity_bytes=1024)
    cache.put("k", payload)
    assert cache.bytes_used == 256


# -- counters end to end -----------------------------------------------------


def test_serial_run_reports_zero_copies():
    spec = DatasetSpec(
        total_bytes=4096, num_files=4, chunk_bytes=256, record_bytes=8
    )
    result = repro.run("histogram", spec, repro.RunConfig(mode="serial"))
    t = result.telemetry
    assert t.bytes_copied == 0
    assert t.zero_copy_reads == 16


def test_retry_path_counts_copies():
    """A retry policy routes reads through the retriever, which assembles
    fresh buffers — every byte read lands in bytes_copied."""
    from repro.resilience.retry import RetryPolicy

    spec = DatasetSpec(
        total_bytes=4096, num_files=4, chunk_bytes=256, record_bytes=8
    )
    result = repro.run(
        "histogram", spec,
        repro.RunConfig(mode="serial", retry=RetryPolicy()),
    )
    t = result.telemetry
    assert t.zero_copy_reads == 0
    assert t.bytes_copied == 4096
