"""Property test: the executable runtime equals the serial oracle for
randomized shapes (placement, core split, chunking, group size).

Thread spin-up makes each example cost milliseconds, so the example count
is capped; the shapes drawn still cover single-site/hybrid, skewed
placements, and ragged unit-group sizes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import make_bundle
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.core.api import run_serial
from repro.data.dataset import DatasetReader, build_dataset
from repro.runtime.driver import CloudBurstingRuntime
from repro.storage.objectstore import ObjectStore


@settings(deadline=None, max_examples=12)
@given(
    files=st.integers(1, 6),
    chunks=st.integers(1, 4),
    units_per_chunk=st.integers(8, 64),
    fraction=st.floats(0.0, 1.0),
    local_cores=st.integers(0, 3),
    cloud_cores=st.integers(0, 3),
    units_per_group=st.integers(1, 200),
    seed=st.integers(0, 1000),
)
def test_runtime_equals_oracle_for_random_shapes(
    files, chunks, units_per_chunk, fraction, local_cores, cloud_cores,
    units_per_group, seed,
):
    if local_cores + cloud_cores == 0:
        local_cores = 1
    total_units = files * chunks * units_per_chunk
    bundle = make_bundle("wordcount", total_units, seed=seed, vocabulary=32)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=total_units * rb,
        num_files=files,
        chunk_bytes=units_per_chunk * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(fraction), bundle.schema, bundle.block_fn, stores
    )
    runtime = CloudBurstingRuntime(
        bundle.app,
        index,
        stores,
        ComputeSpec(local_cores=local_cores, cloud_cores=cloud_cores),
        tuning=MiddlewareTuning(units_per_group=units_per_group,
                                job_group_size=2, pool_low_water=1),
    )
    result = runtime.run()
    oracle = run_serial(
        bundle.app,
        DatasetReader(index, stores).read_all_chunks(),
        units_per_group=units_per_group,
    )
    assert result.value == oracle
    assert sum(result.value.values()) == total_units
    assert result.telemetry.total_jobs == spec.num_chunks
