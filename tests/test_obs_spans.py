"""Tests for causal job spans and the critical path (repro.obs.spans)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import DatasetSpec
from repro.errors import TraceError
from repro.obs import (
    PHASES,
    EventLog,
    build_spans,
    critical_path,
    phase_totals,
    render_critical_path,
    span_summary,
)


def cycle_log(*, prefetch: bool = False) -> EventLog:
    """Two chained cycles on worker 0, one on worker 1."""
    log = EventLog()
    log.record(0.1, "fetch_start", worker=0, job_id=1, file_id=0, cluster="a")
    log.record(0.3, "fetch_end", worker=0, job_id=1, file_id=0, cluster="a")
    log.record(0.35, "compute_start", worker=0, job_id=1, cluster="a")
    log.record(0.9, "compute_end", worker=0, job_id=1, cluster="a")
    if prefetch:  # second cycle through the pipeline: no fetch events
        log.record(1.1, "compute_start", worker=0, job_id=2, file_id=1,
                   cluster="a")
        log.record(1.6, "compute_end", worker=0, job_id=2, cluster="a")
    else:
        log.record(1.0, "fetch_start", worker=0, job_id=2, file_id=1,
                   cluster="a")
        log.record(1.1, "fetch_end", worker=0, job_id=2, file_id=1,
                   cluster="a")
        log.record(1.1, "compute_start", worker=0, job_id=2, cluster="a")
        log.record(1.6, "compute_end", worker=0, job_id=2, cluster="a")
    log.record(0.2, "fetch_start", worker=1, job_id=3, file_id=2, cluster="b")
    log.record(0.5, "fetch_end", worker=1, job_id=3, file_id=2, cluster="b")
    log.record(0.5, "compute_start", worker=1, job_id=3, cluster="b")
    log.record(1.2, "compute_end", worker=1, job_id=3, cluster="b")
    return log


def test_build_spans_chains_queued_from_per_worker():
    spans = build_spans(cycle_log())
    assert len(spans) == 3
    by_job = {s.job_id: s for s in spans}
    assert by_job[1].queued_from == 0.0
    assert by_job[2].queued_from == by_job[1].compute_end
    assert by_job[3].queued_from == 0.0  # other worker's first cycle
    assert by_job[1].cluster == "a" and by_job[3].cluster == "b"
    assert by_job[1].latency == pytest.approx(0.9)


def test_span_phases_tile_the_lifetime():
    for span in build_spans(cycle_log()):
        phases = span.phases
        assert [p.name for p in phases] == ["queued", "fetch", "stall", "compute"]
        assert phases[0].start == span.queued_from
        assert phases[-1].end == span.compute_end
        for left, right in zip(phases, phases[1:]):
            assert left.end == right.start  # non-overlapping, no gaps
        assert sum(p.duration for p in phases) == pytest.approx(span.latency)


def test_prefetch_cycle_gets_zero_width_fetch_anchored_at_compute():
    spans = build_spans(cycle_log(prefetch=True))
    piped = next(s for s in spans if s.job_id == 2)
    assert piped.fetch_start is None
    fetch = piped.phases[1]
    stall = piped.phases[2]
    assert fetch.name == "fetch" and fetch.duration == 0.0
    assert stall.name == "stall" and stall.duration == 0.0
    assert fetch.start == piped.compute_start
    assert piped.file_id == 1  # carried by compute_start in the pipeline
    # The queued phase absorbs the whole pre-compute wait.
    assert piped.phases[0].duration == pytest.approx(
        piped.compute_start - piped.queued_from
    )


def test_steal_events_mark_spans_stolen():
    log = cycle_log()
    log.record(0.05, "steal", cluster="b", file_id=2, detail="group 9 x1")
    spans = build_spans(log)
    assert [s.job_id for s in spans if s.stolen] == [3]


def test_steal_recorded_after_cycle_still_marks_span():
    """Threaded emission can log the steal after the stolen job's cycle
    has already completed; pairing is by (cluster, file), not order."""
    log = cycle_log()
    log.record(1.5, "steal", cluster="b", file_id=2, detail="group 9 x1")
    spans = build_spans(log)
    assert [s.job_id for s in spans if s.stolen] == [3]


def test_steal_for_other_cluster_does_not_match():
    log = cycle_log()
    log.record(0.05, "steal", cluster="a", file_id=2)  # file 2 ran on "b"
    assert not any(s.stolen for s in build_spans(log))


def test_reexecution_attempts_ordered_by_completion():
    log = cycle_log()
    # Job 1 runs again on worker 1 (recovered from a dead slave).
    log.record(1.3, "fetch_start", worker=1, job_id=1, file_id=0, cluster="b")
    log.record(1.4, "fetch_end", worker=1, job_id=1, file_id=0, cluster="b")
    log.record(1.4, "compute_start", worker=1, job_id=1, cluster="b")
    log.record(1.9, "compute_end", worker=1, job_id=1, cluster="b")
    spans = build_spans(log)
    attempts = sorted(
        (s.attempt, s.reexecution) for s in spans if s.job_id == 1
    )
    assert attempts == [(1, False), (2, True)]


def test_sole_cycle_of_reissued_job_is_a_reexecution():
    log = cycle_log()
    # The first try died before compute_end ever hit the log.
    log.record(0.8, "job_reexecuted", job_id=3, cluster="b")
    spans = build_spans(log)
    span = next(s for s in spans if s.job_id == 3)
    assert span.attempt == 1 and span.reexecution


def test_compute_end_without_start_raises():
    log = EventLog()
    log.record(1.0, "compute_end", worker=0, job_id=1)
    with pytest.raises(TraceError, match="without a compute_start"):
        build_spans(log)


def test_phase_totals_sum_per_phase():
    totals = phase_totals(build_spans(cycle_log()))
    assert set(totals) == {"queued", "fetch", "stall", "compute"}
    assert totals["compute"] == pytest.approx(0.55 + 0.5 + 0.7)
    assert totals["fetch"] == pytest.approx(0.2 + 0.1 + 0.3)


def full_run_log() -> EventLog:
    """A complete little run: jobs, combine, upload, merge."""
    log = cycle_log()
    log.record(1.7, "combine_done", cluster="a")
    log.record(1.9, "robj_sent", cluster="a")
    log.record(1.3, "combine_done", cluster="b")
    log.record(1.4, "robj_sent", cluster="b")
    log.record(2.0, "merge_done", cluster="a")
    return log


def test_critical_path_tiles_zero_to_makespan():
    log = full_run_log()
    segments = critical_path(log)
    assert segments[0].start == 0.0
    assert segments[-1].end == pytest.approx(log.makespan())
    for left, right in zip(segments, segments[1:]):
        assert left.end == pytest.approx(right.start)
    total = sum(s.duration for s in segments)
    assert total == pytest.approx(log.makespan())
    assert {s.phase for s in segments} <= set(PHASES)
    # The tail is the causal closing chain.
    assert [s.phase for s in segments[-3:]] == ["combine", "upload", "merge"]
    # The gating worker is the last compute_end in the sending cluster.
    assert segments[-3].worker == 0


def test_critical_path_rejects_empty_or_cycle_free_traces():
    with pytest.raises(TraceError, match="empty trace"):
        critical_path(EventLog())
    log = EventLog()
    log.record(1.0, "group_assigned", cluster="a")
    with pytest.raises(TraceError, match="no completed job cycles"):
        critical_path(log)


def test_render_critical_path_lists_chain_and_totals():
    text = render_critical_path(critical_path(full_run_log()))
    assert "critical path:" in text
    assert "per-phase totals on the path:" in text
    for name in ("compute", "upload", "merge"):
        assert name in text


def test_span_summary_plain_data():
    doc = span_summary(full_run_log())
    assert doc["jobs"] == 3
    assert doc["makespan"] == pytest.approx(2.0)
    assert set(doc["phase_seconds"]) == {"queued", "fetch", "stall", "compute"}
    path_seconds = sum(doc["critical_path_seconds"].values())
    assert path_seconds == pytest.approx(doc["makespan"])
    assert doc["stolen_jobs"] == 0 and doc["reexecutions"] == 0


def test_span_summary_empty_log_is_zeroes():
    doc = span_summary(EventLog())
    assert doc["jobs"] == 0
    assert doc["critical_path"] == []


# -- property suite: span phases always tile ---------------------------------

durations = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(durations, durations, durations, durations),
             min_size=1, max_size=8)
)
def test_span_phases_property(cycles):
    """For any realizable per-worker schedule: phases are ordered and
    non-overlapping, cover the span's lifetime exactly, and their
    durations sum to the end-to-end latency."""
    log = EventLog()
    t = 0.0
    for job_id, (queued, fetch, stall, compute) in enumerate(cycles):
        t += queued
        log.record(t, "fetch_start", worker=0, job_id=job_id, file_id=0,
                   cluster="c")
        t += fetch
        log.record(t, "fetch_end", worker=0, job_id=job_id, file_id=0,
                   cluster="c")
        t += stall
        log.record(t, "compute_start", worker=0, job_id=job_id, cluster="c")
        t += compute
        log.record(t, "compute_end", worker=0, job_id=job_id, cluster="c")
    spans = build_spans(log)
    assert len(spans) == len(cycles)
    previous_end = 0.0
    for span in spans:
        assert span.queued_from == previous_end  # chained per worker
        phases = span.phases
        assert [p.name for p in phases] == list(PHASES[:4])
        assert phases[0].start == span.queued_from
        assert phases[-1].end == span.compute_end
        for left, right in zip(phases, phases[1:]):
            assert left.end == right.start
            assert right.duration >= 0.0
        assert math.isclose(
            sum(p.duration for p in phases), span.latency,
            rel_tol=1e-9, abs_tol=1e-9,
        )
        previous_end = span.compute_end


# -- cross-substrate acceptance ----------------------------------------------


def _traced_run(mode: str) -> EventLog:
    trace = EventLog()
    dataset = DatasetSpec(
        total_bytes=2048 * 4, num_files=4, chunk_bytes=512, record_bytes=4
    )
    repro.run("wordcount", dataset, repro.RunConfig(mode=mode, trace=trace))
    return trace


def test_both_substrates_produce_identical_span_vocabulary():
    """The acceptance criterion: a simulated and a real run of the same
    app yield critical paths over the same phase vocabulary, each tiling
    its makespan to within 1%."""
    vocabularies = {}
    for mode in ("simulate", "runtime"):
        trace = _traced_run(mode)
        segments = critical_path(trace)
        makespan = trace.makespan()
        total = sum(s.duration for s in segments)
        assert abs(total - makespan) <= 0.01 * makespan, mode
        assert segments[0].start == 0.0
        assert segments[-1].end == pytest.approx(makespan)
        vocabularies[mode] = {s.phase for s in segments}
        spans = build_spans(trace)
        assert len(spans) == 16  # one per chunk job
        assert {p.name for s in spans for p in s.phases} == set(PHASES[:4])
    assert vocabularies["simulate"] == vocabularies["runtime"]
    assert vocabularies["runtime"] <= set(PHASES)
    assert {"compute", "merge"} <= vocabularies["runtime"]
