"""Tests for synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import (
    gaussian_points,
    labeled_gaussian_points,
    mixture_values,
    powerlaw_edges,
    stream_blocks,
    zipf_tokens,
)
from repro.errors import DataFormatError


def test_gaussian_points_shape_and_determinism():
    a = gaussian_points(100, 3, seed=5)
    b = gaussian_points(100, 3, seed=5)
    c = gaussian_points(100, 3, seed=6)
    assert a.shape == (100, 3)
    assert a.dtype == np.float32
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


def test_labeled_points_ids():
    arr = labeled_gaussian_points(10, 2, id_offset=100)
    assert arr["id"].tolist() == list(range(100, 110))
    assert arr["coords"].shape == (10, 2)


def test_powerlaw_edges_bounds_and_skew():
    edges = powerlaw_edges(20_000, 500, seed=1)
    assert edges.shape == (20_000, 2)
    assert edges.min() >= 0
    assert edges.max() < 500
    indeg = np.bincount(edges[:, 1], minlength=500)
    # Power-law: the top page collects far more than the mean in-degree.
    assert indeg.max() > 10 * indeg.mean()


def test_zipf_tokens_bounds_and_skew():
    tokens = zipf_tokens(20_000, 100, seed=2)
    assert tokens.shape == (20_000, 1)
    assert tokens.min() >= 0 and tokens.max() < 100
    counts = np.bincount(tokens.ravel(), minlength=100)
    assert counts[0] > counts[50] > 0 or counts[0] > 20 * counts.mean() / 10


def test_mixture_values_bimodal_range():
    vals = mixture_values(10_000, seed=3).ravel()
    assert vals.shape == (10_000,)
    assert 0.0 < vals.mean() < 1.0


def test_generator_validation():
    with pytest.raises(DataFormatError):
        gaussian_points(0, 3)
    with pytest.raises(DataFormatError):
        powerlaw_edges(10, 10, zipf_a=0.9)
    with pytest.raises(DataFormatError):
        zipf_tokens(10, 0)
    with pytest.raises(DataFormatError):
        mixture_values(-1)


def test_stream_blocks_exact_cover():
    calls = []

    def make(start, count, index):
        calls.append((start, count, index))
        return np.arange(start, start + count)

    blocks = list(stream_blocks(10, 4, make))
    assert [len(b) for b in blocks] == [4, 4, 2]
    assert np.concatenate(blocks).tolist() == list(range(10))
    assert calls == [(0, 4, 0), (4, 4, 1), (8, 2, 2)]


def test_stream_blocks_rejects_wrong_count():
    def bad(start, count, index):
        return np.zeros(count + 1)

    with pytest.raises(DataFormatError):
        list(stream_blocks(4, 2, bad))
