"""Tests for the master-side job pool."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import LOCAL_SITE
from repro.core.job import Job, JobGroup
from repro.core.jobpool import JobPool
from repro.errors import SchedulingError


def group(group_id: int, job_ids: list[int], file_id: int = 0) -> JobGroup:
    jobs = tuple(
        Job(job_id=j, file_id=file_id, chunk_index=i, offset=i * 10, nbytes=10,
            num_units=1, site=LOCAL_SITE)
        for i, j in enumerate(job_ids)
    )
    return JobGroup(group_id=group_id, cluster="c", jobs=jobs)


def test_fifo_order():
    pool = JobPool()
    pool.add_group(group(0, [5, 6, 7]))
    assert [pool.take().job_id for _ in range(3)] == [5, 6, 7]
    assert pool.take() is None


def test_group_completion_signal():
    pool = JobPool()
    pool.add_group(group(0, [1, 2]))
    pool.add_group(group(1, [3], file_id=1))
    pool.take(), pool.take(), pool.take()
    assert pool.mark_done(1) is None
    assert pool.mark_done(3) == 1
    assert pool.mark_done(2) == 0
    assert pool.drained


def test_double_add_rejected():
    pool = JobPool()
    pool.add_group(group(0, [1]))
    with pytest.raises(SchedulingError):
        pool.add_group(group(0, [2]))
    with pytest.raises(SchedulingError):
        pool.add_group(group(1, [1]))


def test_unknown_done_rejected():
    pool = JobPool()
    pool.add_group(group(0, [1]))
    with pytest.raises(SchedulingError):
        pool.mark_done(99)
    pool.take()
    pool.mark_done(1)
    with pytest.raises(SchedulingError):
        pool.mark_done(1)  # double completion


def test_low_water_and_counts():
    pool = JobPool(low_water=2)
    assert pool.needs_refill
    pool.add_group(group(0, [1, 2, 3, 4]))
    assert not pool.needs_refill
    pool.take(), pool.take()
    assert pool.needs_refill
    assert pool.in_flight == 2
    assert not pool.drained


def test_negative_low_water_rejected():
    with pytest.raises(SchedulingError):
        JobPool(low_water=-1)


@given(st.lists(st.integers(1, 6), min_size=1, max_size=10))
def test_conservation_property(group_sizes):
    """Every job added is taken exactly once and completes exactly once."""
    pool = JobPool()
    next_id = 0
    for gid, size in enumerate(group_sizes):
        ids = list(range(next_id, next_id + size))
        next_id += size
        pool.add_group(group(gid, ids, file_id=gid))
    taken = []
    while True:
        job = pool.take()
        if job is None:
            break
        taken.append(job.job_id)
    assert sorted(taken) == list(range(next_id))
    completed_groups = set()
    for job_id in taken:
        result = pool.mark_done(job_id)
        if result is not None:
            assert result not in completed_groups
            completed_groups.add(result)
    assert completed_groups == set(range(len(group_sizes)))
    assert pool.drained
