"""Tests for the trace exporters (repro.obs.export)."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceError
from repro.obs import (
    EventLog,
    TraceEvent,
    event_to_dict,
    read_jsonl,
    render_report,
    to_perfetto,
    write_jsonl,
    write_perfetto,
)


def sample_log() -> EventLog:
    log = EventLog()
    log.record(0.0, "group_assigned", cluster="local-cluster", file_id=0,
               detail="group 0 x4")
    log.record(0.1, "fetch_start", cluster="local-cluster", worker=0,
               job_id=1, file_id=0)
    log.record(0.4, "fetch_end", cluster="local-cluster", worker=0,
               job_id=1, file_id=0)
    log.record(0.4, "compute_start", cluster="local-cluster", worker=0, job_id=1)
    log.record(0.9, "compute_end", cluster="local-cluster", worker=0, job_id=1)
    log.record(0.9, "job_done", cluster="local-cluster", worker=0, job_id=1)
    log.record(1.0, "steal", cluster="cloud-cluster", file_id=0, detail="x2")
    log.record(1.2, "combine_done", cluster="local-cluster")
    log.record(1.3, "robj_sent", cluster="local-cluster")
    log.record(1.4, "group_acked", cluster="local-cluster", detail="group 0")
    log.record(1.5, "merge_done", cluster="local-cluster")
    return log


def test_event_to_dict_omits_defaults():
    doc = event_to_dict(TraceEvent(time=1.0, kind="job_done", worker=3))
    assert doc == {"time": 1.0, "kind": "job_done", "worker": 3}


def test_jsonl_round_trip(tmp_path):
    log = sample_log()
    path = tmp_path / "trace.jsonl"
    count = write_jsonl(log, path)
    assert count == len(log)
    back = read_jsonl(path)
    assert back.events == log.events
    # Every line is standalone JSON.
    for line in path.read_text().splitlines():
        json.loads(line)


def test_read_jsonl_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.raises(TraceError, match="bad trace line"):
        read_jsonl(bad)
    bad.write_text('{"time": 0.0, "kind": "galactic_flare"}\n')
    with pytest.raises(TraceError, match="unknown event kind"):
        read_jsonl(bad)
    bad.write_text('{"time": 0.0, "kind": "job_done", "nope": 1}\n')
    with pytest.raises(TraceError):
        read_jsonl(bad)


def test_read_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"time": 0.0, "kind": "job_done", "worker": 0}\n\n')
    assert len(read_jsonl(path)) == 1


def test_perfetto_structure():
    doc = to_perfetto(sample_log())
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    # Metadata names one head track, two master tracks, one worker track.
    names = [e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"]
    assert "head" in names
    assert "master:local-cluster" in names and "master:cloud-cluster" in names
    assert any(n.startswith("w000") for n in names)
    # The paired fetch/compute become complete slices with µs timestamps.
    slices = [e for e in events if e["ph"] == "X"]
    assert {s["name"] for s in slices} == {"retrieval", "processing"}
    retrieval = next(s for s in slices if s["name"] == "retrieval")
    assert retrieval["ts"] == pytest.approx(0.1e6)
    assert retrieval["dur"] == pytest.approx(0.3e6)
    assert retrieval["args"]["job_id"] == 1
    # Instants cover the control-plane events.
    instants = {e["name"] for e in events if e["ph"] == "i"}
    assert {"group_assigned", "steal", "combine_done", "robj_sent",
            "group_acked", "merge_done", "job_done"} <= instants
    # head-owned kinds land on tid 0.
    acked = next(e for e in events if e["ph"] == "i" and e["name"] == "group_acked")
    assert acked["tid"] == 0
    # The whole document serializes.
    json.dumps(doc)


def test_perfetto_family_tracks():
    """Worker-less events from the resilience/cache/storage families get
    their own named tracks instead of vanishing onto the head track."""
    log = sample_log()
    log.record(0.2, "retry", cluster="local-cluster", file_id=0,
               detail="attempt 2")
    log.record(0.25, "fault_injected", cluster="local-cluster", file_id=0)
    log.record(0.3, "cache_miss", file_id=0)
    log.record(0.6, "cache_hit", file_id=0)
    log.record(0.2, "remote_fetch", cluster="cloud-cluster", file_id=0)
    doc = to_perfetto(log)
    events = doc["traceEvents"]
    tracks = {
        e["args"]["name"]: e["tid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"resilience", "cache", "storage"} <= set(tracks)
    for kind, family in (("retry", "resilience"), ("cache_hit", "cache"),
                         ("remote_fetch", "storage")):
        instant = next(e for e in events if e["ph"] == "i" and e["name"] == kind)
        assert instant["tid"] == tracks[family]
        assert instant["s"] == "t"  # thread-scoped, not process-wide


def test_perfetto_family_kind_with_worker_stays_on_worker_track():
    log = sample_log()
    log.record(0.2, "remote_fetch", worker=0, file_id=0,
               cluster="local-cluster")
    doc = to_perfetto(log)
    events = doc["traceEvents"]
    tracks = {
        e["args"]["name"]: e["tid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert "storage" not in tracks  # no worker-less family events
    instant = next(e for e in events if e["ph"] == "i"
                   and e["name"] == "remote_fetch")
    worker_tid = next(tid for name, tid in tracks.items()
                      if name.startswith("w000"))
    assert instant["tid"] == worker_tid


def test_write_perfetto(tmp_path):
    path = tmp_path / "trace.json"
    count = write_perfetto(sample_log(), path)
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == count


def test_perfetto_rejects_malformed_pairs():
    log = EventLog()
    log.record(0.0, "fetch_start", worker=0)
    with pytest.raises(TraceError):
        to_perfetto(log)


def test_render_report_contains_gantt_and_utilization():
    report = render_report(sample_log(), width=20)
    assert "events over" in report
    assert "r" in report and "P" in report
    assert "w000" in report
    assert "mean worker idle fraction" in report
    assert "fetch_start=1" in report


def test_render_report_defaults_makespan_to_last_event():
    report = render_report(sample_log())
    assert "over 1.500s" in report


def test_render_report_rejects_empty_trace():
    with pytest.raises(TraceError):
        render_report(EventLog())


def test_render_report_includes_spans_and_stragglers():
    report = render_report(sample_log())
    assert "job spans; per-phase seconds:" in report
    assert "straggler detector" in report


def test_render_report_optional_critical_path():
    plain = render_report(sample_log())
    assert "critical path" not in plain
    with_path = render_report(sample_log(), show_critical_path=True)
    assert "critical path:" in with_path


def test_render_report_warns_about_dropped_events():
    log = EventLog(max_events=6)
    for event in sample_log().events:
        log.record(event.time, event.kind, cluster=event.cluster,
                   worker=event.worker, job_id=event.job_id,
                   file_id=event.file_id, detail=event.detail)
    assert log.events_dropped > 0
    report = render_report(log)
    assert "ring buffer dropped" in report
    assert f"{log.events_dropped} oldest" in report
