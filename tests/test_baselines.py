"""Tests for the serial references and the Map-Reduce comparison engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mapreduce import MapReduceEngine, mr_histogram, mr_wordcount
from repro.baselines.serial import (
    histogram_reference,
    kmeans_reference,
    knn_reference,
    pagerank_reference,
    wordcount_reference,
)
from repro.data.generators import mixture_values, zipf_tokens


# -- serial references (self-consistency / known answers) ---------------------------


def test_knn_reference_known_answer():
    ids = np.array([10, 20, 30])
    coords = np.array([[0.0, 0.0], [3.0, 0.0], [1.0, 0.0]], dtype=np.float32)
    out = knn_reference(ids, coords, np.array([0.9, 0.0]), k=2)
    assert out == [(pytest.approx(0.01, abs=1e-6), 30),
                   (pytest.approx(0.81, abs=1e-6), 10)]


def test_kmeans_reference_known_answer():
    pts = np.array([[0.0, 0.0], [0.2, 0.0], [10.0, 10.0]], dtype=np.float32)
    cents = np.array([[0.0, 0.0], [9.0, 9.0]], dtype=np.float32)
    out = kmeans_reference(pts, cents)
    np.testing.assert_allclose(out[0], [0.1, 0.0], atol=1e-6)
    np.testing.assert_allclose(out[1], [10.0, 10.0], atol=1e-6)


def test_pagerank_reference_uniform_cycle():
    # A 3-cycle is symmetric: stationary distribution is uniform.
    edges = np.array([[0, 1], [1, 2], [2, 0]], dtype=np.int32)
    out = pagerank_reference(edges, 3, iterations=50)
    np.testing.assert_allclose(out, [1 / 3] * 3, atol=1e-9)


def test_wordcount_reference():
    tokens = np.array([1, 1, 2, 3, 3, 3])
    assert wordcount_reference(tokens) == {1: 2, 2: 1, 3: 3}


def test_histogram_reference_clips():
    vals = np.array([-5.0, 0.5, 99.0])
    out = histogram_reference(vals, 4, 0.0, 1.0)
    assert out.tolist() == [1, 0, 1, 1]


# -- MapReduce engine ----------------------------------------------------------------


def test_mr_wordcount_matches_reference():
    tokens = zipf_tokens(5000, 40, seed=11)
    splits = [tokens[i : i + 500] for i in range(0, 5000, 500)]
    result, stats = mr_wordcount(splits)
    assert result == wordcount_reference(tokens)
    assert stats.map_tasks == 10
    assert stats.pairs_emitted == 5000
    assert stats.pairs_shuffled == 5000  # no combiner: everything crosses


def test_mr_combiner_reduces_shuffle_not_emission():
    """Section III-A's argument, measured: combine cuts communication but
    the intermediate pairs are still generated on the map side."""
    tokens = zipf_tokens(5000, 40, seed=11)
    splits = [tokens[i : i + 500] for i in range(0, 5000, 500)]
    plain, s_plain = mr_wordcount(splits, combine=False)
    combined, s_comb = mr_wordcount(splits, combine=True)
    assert plain == combined
    assert s_comb.pairs_emitted == s_plain.pairs_emitted == 5000
    assert s_comb.pairs_shuffled < s_plain.pairs_shuffled / 5
    assert s_comb.peak_buffer_pairs == 500  # full split still buffered


def test_mr_histogram_matches_reference():
    vals = mixture_values(3000, seed=4)
    splits = [vals[i : i + 300] for i in range(0, 3000, 300)]
    result, stats = mr_histogram(splits, bins=8, lo=-0.5, hi=1.5, combine=True)
    expected = histogram_reference(vals, 8, -0.5, 1.5)
    assert sum(result.values()) == 3000
    for b, count in enumerate(expected):
        assert result.get(b, 0) == count


def test_mr_engine_partitioning_covers_all_keys():
    engine = MapReduceEngine(
        map_fn=lambda split: [(k, 1) for k in split],
        reduce_fn=lambda key, values: sum(values),
        num_partitions=3,
    )
    result = engine.run([[1, 2, 3], [2, 3, 4]])
    assert result == {1: 1, 2: 2, 3: 2, 4: 1}
    assert engine.stats.reduce_groups == 4
