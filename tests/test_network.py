"""Tests for the network substrate (topology + closed-form transfers)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import Link, Topology
from repro.network.transfer import message_time, parallel_transfer_time, transfer_time


def wan():
    return Link(src="s3", dst="campus", bandwidth=100.0, latency=0.1,
                per_flow_cap=10.0)


def test_link_validation():
    with pytest.raises(ConfigurationError):
        Link("a", "b", bandwidth=0)
    with pytest.raises(ConfigurationError):
        Link("a", "b", bandwidth=1, latency=-1)
    with pytest.raises(ConfigurationError):
        Link("a", "b", bandwidth=1, per_flow_cap=0)


def test_flow_rate_fair_share_with_cap():
    link = wan()
    assert link.flow_rate(1) == 10.0  # capped
    assert link.flow_rate(20) == 5.0  # fair share below cap
    with pytest.raises(ConfigurationError):
        link.flow_rate(0)


def test_transfer_time():
    link = wan()
    assert transfer_time(link, 100) == pytest.approx(0.1 + 10.0)
    assert transfer_time(link, 100, concurrent_flows=20) == pytest.approx(0.1 + 20.0)
    with pytest.raises(ConfigurationError):
        transfer_time(link, -1)


def test_message_time_is_latency_dominated():
    assert message_time(wan()) == pytest.approx(0.1 + 1024 / 10.0 / 1)


def test_parallel_transfer_scaling():
    link = wan()
    one = parallel_transfer_time(link, 1000, 1)
    four = parallel_transfer_time(link, 1000, 4)
    twenty = parallel_transfer_time(link, 1000, 20)
    assert one == pytest.approx(0.1 + 100.0)
    assert four == pytest.approx(0.1 + 25.0)
    # Trunk saturates at 10 connections; more do not help.
    assert twenty == pytest.approx(0.1 + 10.0)
    assert parallel_transfer_time(link, 1000, 100) == twenty
    with pytest.raises(ConfigurationError):
        parallel_transfer_time(link, 10, 0)


def test_topology_add_and_lookup():
    topo = Topology()
    topo.add(wan())
    assert topo.has_link("s3", "campus")
    assert not topo.has_link("campus", "s3")
    assert topo.link("s3", "campus").bandwidth == 100.0
    with pytest.raises(ConfigurationError):
        topo.add(wan())
    with pytest.raises(ConfigurationError):
        topo.link("x", "y")


def test_topology_symmetric():
    topo = Topology()
    topo.add_symmetric(wan())
    assert topo.link("campus", "s3").per_flow_cap == 10.0
