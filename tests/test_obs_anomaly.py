"""Tests for robust straggler detection (repro.obs.anomaly)."""

from __future__ import annotations

import math

import pytest

import repro
from repro.config import DatasetSpec
from repro.obs import (
    EventLog,
    annotate,
    detect_stragglers,
    render_stragglers,
)


def exec_log(latencies) -> EventLog:
    """One job per worker, each with the given execution latency."""
    log = EventLog()
    for worker, latency in enumerate(latencies):
        log.record(0.0, "fetch_start", worker=worker, job_id=worker,
                   file_id=worker, cluster="a")
        log.record(0.0, "fetch_end", worker=worker, job_id=worker,
                   file_id=worker, cluster="a")
        log.record(0.0, "compute_start", worker=worker, job_id=worker,
                   cluster="a")
        log.record(latency, "compute_end", worker=worker, job_id=worker,
                   cluster="a")
    return log


def test_too_few_jobs_says_nothing():
    report = detect_stragglers(exec_log([1.0, 9.0, 1.0]))
    assert report.jobs_seen == 3
    assert math.isinf(report.threshold)
    assert report.stragglers == ()
    assert report.flagged == ()


def test_uniform_fleet_is_clean():
    """Zero variance must not flag anyone: the relative floor absorbs it."""
    report = detect_stragglers(exec_log([1.0] * 8))
    assert report.median == 1.0 and report.mad == 0.0
    assert report.threshold == pytest.approx(1.0 + 3.0 * 0.05)
    assert report.stragglers == ()


def test_single_outlier_is_flagged():
    report = detect_stragglers(exec_log([1.0] * 7 + [3.0]))
    assert len(report.stragglers) == 1
    straggler = report.stragglers[0]
    assert straggler.worker == 7
    assert straggler.cluster == "a"
    assert straggler.jobs == (7,)
    assert straggler.worst_latency == pytest.approx(3.0)
    assert straggler.slowdown == pytest.approx(3.0)
    assert report.flagged[0].job_id == 7
    doc = report.to_dict()
    assert doc["stragglers"][0]["worker"] == 7
    assert doc["jobs_seen"] == 8


def test_mad_scales_the_threshold():
    """With real spread the MAD term wins over the relative floor, so a
    value just past the floor-only cut is *not* flagged."""
    latencies = [0.8, 0.9, 1.0, 1.0, 1.1, 1.2, 1.4]
    report = detect_stragglers(exec_log(latencies))
    assert report.mad > 0.0
    assert report.threshold > report.median + 3.0 * 0.05 * report.median
    assert report.stragglers == ()


def test_annotate_records_verdict_events():
    log = exec_log([1.0] * 7 + [3.0])
    report = annotate(log)
    events = log.of_kind("straggler_detected")
    assert len(events) == len(report.flagged) == 1
    event = events[0]
    assert event.worker == 7 and event.job_id == 7
    assert event.time == pytest.approx(3.0)  # stamped at compute_end
    assert "threshold" in event.detail and "median" in event.detail


def test_render_stragglers_all_clear_and_flagged():
    clean = render_stragglers(detect_stragglers(exec_log([1.0] * 8)))
    assert "no stragglers flagged" in clean
    noisy = render_stragglers(detect_stragglers(exec_log([1.0] * 7 + [3.0])))
    assert "w007" in noisy
    assert "3.0x median" in noisy


# -- end to end: an injected latency fault is flagged in both substrates -----

DATASET = DatasetSpec(
    total_bytes=2048 * 4, num_files=4, chunk_bytes=512, record_bytes=4
)


def test_injected_latency_fault_flagged_in_simulator():
    trace = EventLog()
    result = repro.run(
        "wordcount",
        DATASET,
        repro.RunConfig(
            mode="simulate", trace=trace, faults="latency=0.1:25.0,seed=3"
        ),
    )
    assert result.sim_report.faults_injected > 0
    report = detect_stragglers(trace)
    assert report.jobs_seen == 16
    assert report.stragglers, "seeded latency fault was not flagged"
    # The injected 25s stall dwarfs the sub-second healthy jobs.
    assert report.stragglers[0].slowdown > 5.0


def test_injected_latency_fault_flagged_in_runtime():
    trace = EventLog()
    result = repro.run(
        "wordcount",
        DATASET,
        repro.RunConfig(
            mode="runtime", trace=trace, faults="latency=0.12:0.4,seed=5"
        ),
    )
    assert result.telemetry.faults_injected > 0
    report = detect_stragglers(trace)
    assert report.jobs_seen == 16
    assert report.stragglers, "seeded latency fault was not flagged"
    worst = max(s.worst_latency for s in report.stragglers)
    assert worst > 0.3  # the injected 0.4s sleep dominates ms-scale jobs
