"""Tests for the simulated storage services."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.storagemodel import SimStore, StorePath


def make_store(env, **overrides):
    params = dict(
        name="test",
        bandwidth=100.0,
        per_connection_cap=10.0,
        request_latency=0.0,
        file_service_cap=None,
        seek_time=1.0,
        random_penalty=2.0,
    )
    params.update(overrides)
    return SimStore(env, StorePath(**params))


def fetch_and_time(env, store, **kwargs):
    result = {}

    def go():
        yield store.fetch(**kwargs)
        result["t"] = env.now

    env.process(go())
    env.run()
    return result["t"]


def test_sequential_stream_fast_path():
    env = Environment()
    store = make_store(env)
    # chunk 0 then 1: both sequential, single connection at the 10/s cap.
    t = {}

    def go():
        yield store.fetch(file_id=0, nbytes=100, chunk_index=0)
        t["first"] = env.now
        yield store.fetch(file_id=0, nbytes=100, chunk_index=1)
        t["second"] = env.now

    env.process(go())
    env.run()
    assert t["first"] == pytest.approx(10.0)
    assert t["second"] == pytest.approx(20.0)
    assert store.sequential_reads == 2


def test_random_read_pays_seek_and_penalty():
    env = Environment()
    store = make_store(env)
    # First read of chunk 5 is non-sequential: 1s seek + 200 effective bytes.
    elapsed = fetch_and_time(env, store, file_id=0, nbytes=100, chunk_index=5)
    assert elapsed == pytest.approx(1.0 + 20.0)
    assert store.sequential_reads == 0
    assert store.reads == 1


def test_interleaved_consumers_keep_stream_sequential():
    """Two slaves draining consecutive chunks keep the file streaming —
    the behaviour the head's consecutive assignment exploits."""
    env = Environment()
    store = make_store(env)

    def slave(chunks):
        for c in chunks:
            yield store.fetch(file_id=0, nbytes=10, chunk_index=c)

    env.process(slave([0, 2]))
    env.process(slave([1, 3]))
    env.run()
    assert store.sequential_reads >= 3  # chunk ordering preserved at store


def test_connection_scaling_until_trunk():
    env = Environment()
    store = make_store(env, seek_time=0.0, random_penalty=1.0)
    one = fetch_and_time(env, store, file_id=0, nbytes=1000, chunk_index=0,
                         connections=1)
    env2 = Environment()
    store2 = make_store(env2, seek_time=0.0, random_penalty=1.0)
    four = fetch_and_time(env2, store2, file_id=0, nbytes=1000, chunk_index=0,
                          connections=4)
    env3 = Environment()
    store3 = make_store(env3, seek_time=0.0, random_penalty=1.0)
    fifty = fetch_and_time(env3, store3, file_id=0, nbytes=1000, chunk_index=0,
                           connections=50)
    assert one == pytest.approx(100.0)
    assert four == pytest.approx(25.0)
    assert fifty == pytest.approx(10.0)  # trunk-limited


def test_file_service_cap_contention():
    env = Environment()
    store = make_store(env, seek_time=0.0, random_penalty=1.0,
                       file_service_cap=20.0)
    times = {}

    def reader(tag, file_id):
        yield store.fetch(file_id=file_id, nbytes=100, chunk_index=0,
                          connections=1)
        times[tag] = env.now

    env.process(reader("a", 0))
    env.process(reader("b", 0))
    env.process(reader("c", 1))
    env.run()
    # Same-file readers split the 20/s cap; the other file gets its own 10/s cap.
    assert times["a"] == pytest.approx(10.0)
    assert times["b"] == pytest.approx(10.0)
    assert times["c"] == pytest.approx(10.0)


def test_fetch_validation():
    env = Environment()
    store = make_store(env)
    with pytest.raises(SimulationError):
        store.fetch(file_id=0, nbytes=10, connections=0)
    with pytest.raises(SimulationError):
        store.fetch(file_id=0, nbytes=-1)


def test_storepath_validation():
    with pytest.raises(SimulationError):
        StorePath(name="x", bandwidth=0)
    with pytest.raises(SimulationError):
        StorePath(name="x", bandwidth=1, random_penalty=0.5)
    with pytest.raises(SimulationError):
        StorePath(name="x", bandwidth=1, seek_time=-1)
