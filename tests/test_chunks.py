"""Tests for chunk/unit-group arithmetic (exact-cover invariants)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.chunks import (
    groups_in_chunk,
    iter_chunk_slices,
    iter_group_slices,
)
from repro.errors import DataFormatError


def test_chunk_slices_cover_file():
    slices = list(iter_chunk_slices(100, 25))
    assert [s.offset for s in slices] == [0, 25, 50, 75]
    assert all(s.nbytes == 25 for s in slices)
    assert [s.index for s in slices] == [0, 1, 2, 3]


def test_chunk_slices_reject_ragged():
    with pytest.raises(DataFormatError):
        list(iter_chunk_slices(100, 33))
    with pytest.raises(DataFormatError):
        list(iter_chunk_slices(0, 10))


def test_group_slices_last_short():
    groups = list(iter_group_slices(10, 4))
    assert groups == [slice(0, 4), slice(4, 8), slice(8, 10)]
    assert list(iter_group_slices(0, 4)) == []


def test_groups_in_chunk():
    assert groups_in_chunk(10, 4) == 3
    assert groups_in_chunk(8, 4) == 2
    assert groups_in_chunk(0, 4) == 0
    with pytest.raises(DataFormatError):
        groups_in_chunk(10, 0)
    with pytest.raises(DataFormatError):
        groups_in_chunk(-1, 4)


@given(chunks=st.integers(1, 50), chunk_bytes=st.integers(1, 1000))
def test_chunk_cover_property(chunks, chunk_bytes):
    file_bytes = chunks * chunk_bytes
    slices = list(iter_chunk_slices(file_bytes, chunk_bytes))
    assert len(slices) == chunks
    covered = 0
    for i, s in enumerate(slices):
        assert s.offset == covered
        covered += s.nbytes
    assert covered == file_bytes


@given(units=st.integers(0, 500), per_group=st.integers(1, 64))
def test_group_cover_property(units, per_group):
    slices = list(iter_group_slices(units, per_group))
    assert len(slices) == groups_in_chunk(units, per_group)
    covered = 0
    for s in slices:
        assert s.start == covered
        assert s.stop - s.start <= per_group
        covered = s.stop
    assert covered == units
