"""Error-path tests: misconfigured simulations fail loudly, not silently."""

from __future__ import annotations

import pytest

from repro.config import (
    ComputeSpec,
    DatasetSpec,
    ExperimentConfig,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.errors import SimulationError
from repro.sim.simulation import simulate


def tiny_config(**overrides):
    params = dict(
        name="err",
        app="knn",
        dataset=DatasetSpec(total_bytes=4 * 2 * 1024, num_files=4,
                            chunk_bytes=512, record_bytes=4),
        placement=PlacementSpec(local_fraction=0.0),
        compute=ComputeSpec(local_cores=2, cloud_cores=0),
        tuning=MiddlewareTuning(),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def test_stranded_data_without_stealing_is_detected():
    """All data in the cloud, compute only local, stealing disabled: the
    jobs can never be assigned — the simulation must raise, not return a
    report that silently skipped data."""
    config = tiny_config(tuning=MiddlewareTuning(allow_stealing=False))
    with pytest.raises(SimulationError, match="unassigned"):
        simulate(config)


def test_stealing_rescues_the_same_configuration():
    config = tiny_config()  # stealing on by default
    report = simulate(config)
    assert report.total_jobs == 16
    assert report.cluster("local-cluster").jobs_stolen == 16


def test_unknown_app_fails_at_construction():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="unknown application"):
        simulate(tiny_config(app="does-not-exist"))
