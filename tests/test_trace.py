"""Tests for simulator tracing and the timeline analyses built on it."""

from __future__ import annotations

import pytest

from repro.bench.configs import env_config
from repro.errors import SimulationError
from repro.sim.simulation import CloudBurstSimulation
from repro.sim.trace import (
    TraceRecorder,
    render_gantt,
    utilization,
    worker_intervals,
)

SCALE = 0.03


@pytest.fixture(scope="module")
def traced_run():
    trace = TraceRecorder()
    config = env_config("knn", "env-50/50", scale=SCALE)
    report = CloudBurstSimulation(config, trace=trace).run()
    return trace, report


def test_trace_event_counts(traced_run):
    trace, report = traced_run
    # One fetch and one compute interval per processed job.
    assert len(trace.of_kind("fetch_start")) == 960
    assert len(trace.of_kind("fetch_end")) == 960
    assert len(trace.of_kind("compute_start")) == 960
    assert len(trace.of_kind("job_done")) == 960
    # Two clusters combine, ship, and get merged.
    assert len(trace.of_kind("combine_done")) == 2
    assert len(trace.of_kind("robj_sent")) == 2
    assert len(trace.of_kind("merge_done")) == 2
    # Group assignments equal head exchanges that returned work.
    assigned = trace.of_kind("group_assigned")
    assert sum(int(e.detail.split("x")[1]) for e in assigned) == 960
    # Every assigned group is eventually acknowledged.
    assert len(trace.of_kind("group_acked")) == len(assigned)


def test_trace_times_ordered_and_within_makespan(traced_run):
    trace, report = traced_run
    times = [e.time for e in trace.events]
    assert all(t >= 0 for t in times)
    assert max(times) <= report.makespan + 1e-6


def test_worker_intervals_alternate_and_nest(traced_run):
    trace, report = traced_run
    workers = trace.workers()
    assert len(workers) == 32  # 16 + 16 cores
    for worker in workers[:4]:
        intervals = worker_intervals(trace, worker)
        assert intervals, f"worker {worker} did nothing"
        # Intervals are disjoint and ordered; activities alternate r, P, r, P...
        for a, b in zip(intervals, intervals[1:]):
            assert a.end <= b.start + 1e-9
        assert [iv.activity for iv in intervals[:2]] == ["retrieval", "processing"]


def test_utilization_sums_to_one(traced_run):
    trace, report = traced_run
    util = utilization(trace, report.makespan)
    assert set(util) == set(trace.workers())
    for worker, parts in util.items():
        total = parts["retrieval"] + parts["processing"] + parts["idle"]
        assert total == pytest.approx(1.0, abs=1e-6)
        assert parts["retrieval"] > 0 and parts["processing"] > 0
    # knn: retrieval dominates processing for every worker.
    assert all(p["retrieval"] > p["processing"] for p in util.values())


def test_utilization_matches_report_means(traced_run):
    trace, report = traced_run
    util = utilization(trace, report.makespan)
    # Cross-check: mean worker processing fraction x makespan equals the
    # report's per-cluster mean processing (averaged over both clusters).
    mean_proc_trace = (
        sum(p["processing"] for p in util.values()) / len(util) * report.makespan
    )
    mean_proc_report = sum(
        c.mean_processing * c.cores for c in report.clusters.values()
    ) / sum(c.cores for c in report.clusters.values())
    assert mean_proc_trace == pytest.approx(mean_proc_report, rel=1e-6)


def test_render_gantt(traced_run):
    trace, report = traced_run
    chart = render_gantt(trace, report.makespan, width=40)
    lines = chart.splitlines()
    assert len(lines) == 1 + 32
    assert "r" in chart and "P" in chart
    for line in lines[1:]:
        assert len(line) == len("w000 |") + 40 + 1


def test_trace_validation():
    trace = TraceRecorder()
    with pytest.raises(SimulationError):
        trace.record(0.0, "not-a-kind")
    # Malformed interval streams are rejected.
    bad = TraceRecorder()
    bad.record(1.0, "fetch_end", worker=0)
    with pytest.raises(SimulationError, match="without a start"):
        worker_intervals(bad, 0)
    bad2 = TraceRecorder()
    bad2.record(0.0, "fetch_start", worker=0)
    bad2.record(1.0, "compute_start", worker=0)
    with pytest.raises(SimulationError, match="still open"):
        worker_intervals(bad2, 0)
    bad3 = TraceRecorder()
    bad3.record(0.0, "fetch_start", worker=0)
    with pytest.raises(SimulationError, match="mid-retrieval"):
        worker_intervals(bad3, 0)
    with pytest.raises(SimulationError):
        utilization(TraceRecorder(), 0.0)
    with pytest.raises(SimulationError):
        render_gantt(TraceRecorder(), 1.0, width=0)


def test_empty_trace_has_no_workers_or_intervals():
    empty = TraceRecorder()
    assert empty.workers() == []
    assert worker_intervals(empty, 0) == []
    # A worker absent from the trace simply has no intervals.
    lone = TraceRecorder()
    lone.record(0.0, "fetch_start", worker=3)
    lone.record(0.5, "fetch_end", worker=3)
    assert worker_intervals(lone, 7) == []


def test_render_gantt_width_one():
    trace = TraceRecorder()
    trace.record(0.0, "fetch_start", worker=0)
    trace.record(0.4, "fetch_end", worker=0)
    trace.record(0.4, "compute_start", worker=0)
    trace.record(1.0, "compute_end", worker=0)
    chart = render_gantt(trace, 1.0, width=1)
    lines = chart.splitlines()
    assert len(lines) == 2
    # The single cell shows the dominant activity (processing: 0.6 vs 0.4).
    assert lines[1] == "w000 |P|"


def test_worker_intervals_sorts_out_of_order_events():
    # Threaded emission can append events out of timestamp order; the
    # pairing must sort by time first instead of rejecting the stream.
    trace = TraceRecorder()
    trace.record(0.4, "compute_start", worker=0)
    trace.record(0.1, "fetch_start", worker=0)
    trace.record(0.9, "compute_end", worker=0)
    trace.record(0.4, "fetch_end", worker=0)
    intervals = worker_intervals(trace, 0)
    assert [(iv.activity, iv.start, iv.end) for iv in intervals] == [
        ("retrieval", 0.1, 0.4),
        ("processing", 0.4, 0.9),
    ]


def test_utilization_with_zero_interval_worker():
    # A worker whose start and end coincide is fully idle, not an error.
    trace = TraceRecorder()
    trace.record(0.5, "fetch_start", worker=0)
    trace.record(0.5, "fetch_end", worker=0)
    trace.record(0.0, "fetch_start", worker=1)
    trace.record(1.0, "fetch_end", worker=1)
    util = utilization(trace, 1.0)
    assert util[0]["retrieval"] == 0.0
    assert util[0]["idle"] == pytest.approx(1.0)
    assert util[1]["retrieval"] == pytest.approx(1.0)


def test_disabled_trace_changes_nothing():
    config = env_config("knn", "env-50/50", scale=SCALE)
    plain = CloudBurstSimulation(config).run()
    traced = CloudBurstSimulation(config, trace=TraceRecorder()).run()
    assert plain.makespan == traced.makespan
    assert plain.events_processed == traced.events_processed
