"""Tests for the streaming-moments application."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import make_bundle
from repro.apps.moments import MomentsApp
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    PlacementSpec,
)
from repro.core.api import run_serial
from repro.core.reduction import merge_all
from repro.data.dataset import DatasetReader, build_dataset
from repro.data.records import VALUE_SCHEMA
from repro.runtime.driver import CloudBurstingRuntime
from repro.storage.objectstore import ObjectStore


def run_on(values: np.ndarray, units_per_group: int = 64) -> dict[str, float]:
    app = MomentsApp()
    raw = VALUE_SCHEMA.encode(values.reshape(-1, 1))
    return run_serial(app, [raw], units_per_group=units_per_group)


def test_known_answer():
    stats = run_on(np.array([1.0, 2.0, 3.0, 4.0]))
    assert stats["count"] == 4
    assert stats["mean"] == pytest.approx(2.5)
    assert stats["std"] == pytest.approx(math.sqrt(1.25))
    assert stats["min"] == 1.0
    assert stats["max"] == 4.0


def test_empty_stream():
    app = MomentsApp()
    robj = app.create_reduction_object()
    stats = app.finalize(robj)
    assert stats["count"] == 0
    assert math.isnan(stats["mean"])


@settings(deadline=None, max_examples=40)
@given(
    st.lists(st.floats(-1e4, 1e4, allow_nan=False), min_size=1, max_size=200),
    st.integers(1, 64),
)
def test_matches_numpy_property(values, group):
    arr = np.asarray(values, dtype=np.float64)
    stats = run_on(arr, units_per_group=group)
    assert stats["count"] == len(arr)
    assert stats["mean"] == pytest.approx(float(arr.mean()), rel=1e-9, abs=1e-9)
    # The app's variance is single-pass (E[x^2] - E[x]^2 — that's the point
    # of a mergeable reduction), so cancellation error scales with
    # sqrt(eps * E[x^2]): e.g. identical values ~4e3 yield std ~4e-5, not 0.
    std_tol = math.sqrt(np.finfo(np.float64).eps * float((arr * arr).mean()))
    assert stats["std"] == pytest.approx(
        float(arr.std()), rel=1e-6, abs=max(1e-6, 2 * std_tol)
    )
    assert stats["min"] == float(arr.min())
    assert stats["max"] == float(arr.max())


def test_worker_split_invariance():
    arr = np.linspace(-5, 5, 301)
    app = MomentsApp()
    whole = app.create_reduction_object()
    app.local_reduction(whole, arr)
    parts = []
    for piece in np.array_split(arr, 7):
        robj = app.create_reduction_object()
        app.local_reduction(robj, piece)
        parts.append(robj)
    merged = merge_all(parts)
    assert app.finalize(whole) == pytest.approx(app.finalize(merged))


def test_hybrid_runtime_end_to_end():
    total = 2048
    bundle = make_bundle("moments", total)
    spec = DatasetSpec(total_bytes=total * 8, num_files=4, chunk_bytes=128 * 8,
                       record_bytes=8)
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(spec, PlacementSpec(0.5), bundle.schema,
                          bundle.block_fn, stores)
    result = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2)
    ).run()
    decoded = np.concatenate(
        [bundle.app.decode_chunk(c)
         for c in DatasetReader(index, stores).read_all_chunks()]
    ).ravel()
    assert result.value["count"] == total
    assert result.value["mean"] == pytest.approx(float(decoded.mean()))
    assert result.value["std"] == pytest.approx(float(decoded.std()), rel=1e-6)


def test_registered():
    from repro.apps import available_apps

    assert "moments" in available_apps()
