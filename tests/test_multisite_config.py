"""Tests for the declarative multisite JSON loader and its CLI command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.sim.multisite import MultiSiteSimulation, load_multisite_config
from repro.units import MB

DOC = {
    "name": "json-three-sites",
    "app": "knn",
    "head_site": "campus",
    "seed": 5,
    "dataset": {
        "total_bytes": 6 * 4 * MB,
        "num_files": 6,
        "chunk_bytes": 1 * MB,
        "record_bytes": 4,
    },
    "sites": [
        {"name": "campus", "cores": 4, "data_files": 2,
         "storage": {"bandwidth": 200 * MB, "per_connection_cap": 20 * MB,
                     "request_latency": 0.001}},
        {"name": "aws", "cores": 4, "data_files": 2, "compute_slowdown": 1.2,
         "storage": {"bandwidth": 200 * MB, "per_connection_cap": 20 * MB,
                     "request_latency": 0.01}},
        {"name": "azure", "cores": 0, "data_files": 2,
         "storage": {"bandwidth": 200 * MB}},
    ],
    "cross_paths": [
        {"src": a, "dst": b,
         "path": {"bandwidth": 40 * MB, "per_connection_cap": 3 * MB,
                  "request_latency": 0.05}}
        for a in ("campus", "aws", "azure")
        for b in ("campus", "aws", "azure")
        if a != b
    ],
}


def test_loader_builds_runnable_config():
    config = load_multisite_config(json.dumps(DOC))
    assert config.name == "json-three-sites"
    assert len(config.sites) == 3
    assert config.head == "campus"
    assert config.seed == 5
    report = MultiSiteSimulation(config).run()
    assert report.total_jobs == 24


def test_loader_rejects_garbage():
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        load_multisite_config("{nope")
    with pytest.raises(ConfigurationError, match="malformed"):
        load_multisite_config('{"app": "knn"}')


def test_loader_rejects_unknown_path_keys():
    doc = json.loads(json.dumps(DOC))
    doc["sites"][0]["storage"]["bandwidt"] = 1  # typo
    with pytest.raises(ConfigurationError, match="unknown keys"):
        load_multisite_config(json.dumps(doc))


def test_cli_multisite(tmp_path, capsys):
    path = tmp_path / "ms.json"
    path.write_text(json.dumps(DOC))
    code = main(["multisite", str(path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "json-three-sites" in out
    assert "campus" in out and "aws" in out
    # azure has no cores: only two clusters appear.
    assert "azure" not in out.split("makespan")[1]


def test_cli_multisite_json_output(tmp_path, capsys):
    path = tmp_path / "ms.json"
    path.write_text(json.dumps(DOC))
    code = main(["multisite", str(path), "--json"])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["experiment"] == "json-three-sites"
    assert doc["makespan"] > 0


def test_cli_multisite_bad_file(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{broken")
    code = main(["multisite", str(path)])
    assert code == 1
    assert "error:" in capsys.readouterr().err
