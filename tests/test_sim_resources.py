"""Tests for simulated Resource and Store primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.resources import Resource, Store


def test_resource_limits_concurrency():
    env = Environment()
    res = Resource(env, capacity=2)
    active = []
    peak = []

    def worker(i):
        req = res.request()
        yield req
        active.append(i)
        peak.append(len(active))
        yield env.timeout(1)
        active.remove(i)
        res.release(req)

    for i in range(5):
        env.process(worker(i))
    env.run()
    assert max(peak) <= 2
    assert res.grants == 5
    assert res.in_use == 0
    assert env.now == 3.0  # ceil(5/2) batches of 1s


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(i):
        req = res.request()
        yield req
        order.append(i)
        yield env.timeout(1)
        res.release(req)

    for i in range(4):
        env.process(worker(i))
    env.run()
    assert order == [0, 1, 2, 3]


def test_resource_release_validation():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_store_buffers_items():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [i for i, _ in got] == [0, 1, 2]


def test_store_getters_wait_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    env.process(consumer("a"))
    env.process(consumer("b"))

    def producer():
        yield env.timeout(1)
        store.put(1)
        store.put(2)

    env.process(producer())
    env.run()
    assert got == [("a", 1), ("b", 2)]
    assert len(store) == 0
    assert store.puts == 2 and store.gets == 2
