"""The GIL-free process-slave substrate, exercised directly.

The cross-substrate golden matrix proves process slaves agree with the
oracle through the whole runtime; these tests pin the pool's own
contract: both sharing strategies reduce correctly, the spawn start
method works (workers are importable, apps picklable), worker errors
surface as protocol failures, capacity is enforced, and full locking is
rejected up front.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.shmem import ShmemStrategy
from repro.errors import ConfigurationError, RuntimeProtocolError
from repro.runtime import ProcessSlavePool
from repro.runtime.procpool import default_start_method


def _chunks(app_key="histogram", units=256, n_chunks=4):
    bundle = repro.make_bundle(app_key, units)
    per = units // n_chunks
    rb = bundle.schema.record_bytes
    raw = [
        bundle.block_fn(i * per, per, i) for i in range(n_chunks)
    ]
    return bundle, [bundle.schema.encode(block) for block in raw], per * rb


def _reduce_all(pool, chunks):
    for i, chunk in enumerate(chunks):
        pool.slaves[i % len(pool.slaves)].reduce(chunk)
    partials = [slave.take() for slave in pool.slaves]
    return partials


@pytest.mark.parametrize(
    "strategy", [ShmemStrategy.FULL_REPLICATION, ShmemStrategy.CHUNK_MERGE]
)
def test_pool_reduces_like_serial(strategy):
    bundle, chunks, chunk_bytes = _chunks()
    from repro.core.api import run_serial

    expected = run_serial(bundle.app, chunks)
    with ProcessSlavePool(
        bundle.app, 2, max_chunk_bytes=chunk_bytes, strategy=strategy
    ) as pool:
        partials = _reduce_all(pool, chunks)
        value = bundle.app.finalize(bundle.app.global_reduction(partials))
        assert pool.chunks_reduced == len(chunks)
        assert pool.shm_bytes == sum(len(c) for c in chunks)
    np.testing.assert_allclose(np.asarray(expected), np.asarray(value))


def test_pool_take_resets_accumulation():
    """take() hands over the partial accumulated since the last take —
    the watermark-flush contract the slave proxy relies on."""
    bundle, chunks, chunk_bytes = _chunks()
    with ProcessSlavePool(
        bundle.app, 1, max_chunk_bytes=chunk_bytes
    ) as pool:
        slave = pool.slaves[0]
        slave.reduce(chunks[0])
        first = slave.take()
        slave.reduce(chunks[1])
        second = slave.take()
        empty = slave.take()  # nothing reduced since: the identity
    a = np.asarray(first.data)
    b = np.asarray(second.data)
    assert a.sum() > 0 and b.sum() > 0
    assert np.asarray(empty.data).sum() == 0


def test_pool_spawn_start_method():
    """The worker entrypoint is importable and the app picklable, so the
    spawn context (the only one on some platforms) works too."""
    bundle, chunks, chunk_bytes = _chunks(units=64, n_chunks=2)
    from repro.core.api import run_serial

    expected = run_serial(bundle.app, chunks)
    with ProcessSlavePool(
        bundle.app, 1, max_chunk_bytes=chunk_bytes, start_method="spawn"
    ) as pool:
        partials = _reduce_all(pool, chunks)
        value = bundle.app.finalize(bundle.app.global_reduction(partials))
    np.testing.assert_allclose(np.asarray(expected), np.asarray(value))


def test_pool_rejects_full_locking():
    bundle, _, chunk_bytes = _chunks(units=64, n_chunks=2)
    with pytest.raises(ConfigurationError, match="full-locking"):
        ProcessSlavePool(
            bundle.app, 1, max_chunk_bytes=chunk_bytes,
            strategy=ShmemStrategy.FULL_LOCKING,
        )


def test_pool_validates_sizes():
    bundle, _, chunk_bytes = _chunks(units=64, n_chunks=2)
    with pytest.raises(ConfigurationError):
        ProcessSlavePool(bundle.app, 0, max_chunk_bytes=chunk_bytes)
    with pytest.raises(ConfigurationError):
        ProcessSlavePool(bundle.app, 1, max_chunk_bytes=0)


def test_pool_rejects_oversized_chunk():
    bundle, chunks, _ = _chunks(units=64, n_chunks=2)
    with ProcessSlavePool(bundle.app, 1, max_chunk_bytes=8) as pool:
        with pytest.raises(RuntimeProtocolError, match="capacity"):
            pool.slaves[0].reduce(chunks[0])


def test_worker_error_surfaces_with_traceback():
    """A bad chunk (torn record) makes the worker's decode raise; the
    proxy side sees a protocol error carrying the worker's traceback."""
    bundle, chunks, chunk_bytes = _chunks(units=64, n_chunks=2)
    with ProcessSlavePool(bundle.app, 1, max_chunk_bytes=chunk_bytes) as pool:
        with pytest.raises(RuntimeProtocolError, match="DataFormatError"):
            pool.slaves[0].reduce(chunks[0][:-3])


def test_default_start_method_is_valid():
    from multiprocessing import get_all_start_methods

    assert default_start_method() in get_all_start_methods()
