"""The unified ``repro.run`` facade must match every legacy entrypoint.

Each mode of the facade is a thin wrapper over an engine that predates
it (``run_serial``, ``simulate``, ``CloudBurstingRuntime``). These tests
pin the equivalence: same app, same dataset, same seed — identical
output through either door.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import RunConfig, RunResult, run
from repro.apps import make_bundle
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    ExperimentConfig,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.core.api import run_serial
from repro.data.dataset import DatasetReader, build_dataset
from repro.errors import ConfigurationError
from repro.resilience import FaultSpec, RetryPolicy
from repro.runtime.driver import CloudBurstingRuntime
from repro.sim.simulation import simulate
from repro.storage.objectstore import ObjectStore

SEED = 2011


def small_dataset(record_bytes: int, units: int = 2048) -> DatasetSpec:
    return DatasetSpec(
        total_bytes=units * record_bytes,
        num_files=4,
        chunk_bytes=(units // 16) * record_bytes,
        record_bytes=record_bytes,
    )


def legacy_materialize(app_key: str, dataset: DatasetSpec, **params):
    """The pre-facade setup ritual, verbatim."""
    bundle = make_bundle(app_key, dataset.total_units, seed=SEED, **params)
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        dataset, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    return bundle, index, stores


def assert_values_equal(a, b):
    if isinstance(a, np.ndarray):
        np.testing.assert_array_equal(a, b)
    else:
        assert a == b


@pytest.mark.parametrize("app_key", ["histogram", "wordcount", "knn"])
def test_facade_runtime_matches_legacy_driver(app_key):
    record_bytes = make_bundle(app_key, 2048, seed=SEED).schema.record_bytes
    dataset = small_dataset(record_bytes)
    bundle, index, stores = legacy_materialize(app_key, dataset)
    legacy = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2)
    ).run()

    result = run(app_key, dataset, RunConfig(mode="runtime"))
    assert isinstance(result, RunResult) and result.mode == "runtime"
    assert_values_equal(result.value, legacy.value)
    assert result.telemetry.total_jobs == legacy.telemetry.total_jobs


def test_facade_serial_matches_run_serial():
    dataset = small_dataset(8)
    bundle, index, stores = legacy_materialize("histogram", dataset)
    oracle = run_serial(
        bundle.app, DatasetReader(index, stores).read_all_chunks()
    )
    result = run("histogram", dataset, RunConfig(mode="serial"))
    assert result.mode == "serial"
    assert_values_equal(result.value, oracle)
    assert result.telemetry is not None and result.telemetry.retries == 0


def test_facade_simulate_matches_simulate():
    dataset = DatasetSpec.paper(record_bytes=8).scaled(1e-5)
    legacy = simulate(
        ExperimentConfig(
            name="env-test", app="kmeans", dataset=dataset,
            placement=PlacementSpec(0.5),
            compute=ComputeSpec(local_cores=8, cloud_cores=8),
            seed=SEED,
        )
    )
    result = run(
        "kmeans", dataset,
        RunConfig(
            mode="simulate", name="env-test",
            compute=ComputeSpec(local_cores=8, cloud_cores=8),
        ),
    )
    assert result.mode == "simulate"
    assert result.value is None
    assert result.sim_report.to_dict() == legacy.to_dict()
    assert result.wall_seconds == legacy.makespan


def test_facade_accepts_prebuilt_bundle():
    dataset = small_dataset(8)
    bundle = make_bundle("histogram", dataset.total_units, seed=SEED)
    via_key = run("histogram", dataset, RunConfig(mode="serial"))
    via_bundle = run(bundle, dataset, RunConfig(mode="serial"))
    assert_values_equal(via_key.value, via_bundle.value)


def test_facade_forwards_app_params():
    dataset = small_dataset(8)
    coarse = run(
        "histogram", dataset,
        RunConfig(mode="serial", app_params={"bins": 8}),
    )
    fine = run(
        "histogram", dataset,
        RunConfig(mode="serial", app_params={"bins": 64}),
    )
    assert len(coarse.value) == 8 and len(fine.value) == 64


def test_facade_faulted_run_is_bit_identical_to_clean_run():
    dataset = small_dataset(8)
    clean = run("histogram", dataset, RunConfig(mode="runtime"))
    faulted = run(
        "histogram", dataset,
        RunConfig(mode="runtime", faults="transient=0.15,seed=5"),
    )
    assert_values_equal(faulted.value, clean.value)
    assert faulted.telemetry.faults_injected > 0
    assert faulted.telemetry.retries > 0
    assert faulted.telemetry.slaves_failed == 0


def test_run_config_validation_and_parsing():
    with pytest.raises(ConfigurationError):
        RunConfig(mode="warp")
    with pytest.raises(ConfigurationError):
        RunConfig(join_timeout=0.0)
    config = RunConfig(faults="transient=0.2,seed=9")
    assert isinstance(config.faults, FaultSpec)
    assert config.fault_spec is config.faults
    # Faults imply a default retry policy; explicit policies win.
    assert config.effective_retry == RetryPolicy()
    custom = RetryPolicy(max_attempts=9)
    assert RunConfig(retry=custom).effective_retry is custom
    assert RunConfig().effective_retry is None
    # An all-zero spec is treated as no faults at all.
    inert = RunConfig(faults=FaultSpec())
    assert inert.fault_spec is None and inert.effective_retry is None


def test_facade_exported_at_package_top_level():
    assert repro.run is run
    assert repro.RunConfig is RunConfig
    for name in ("RetryPolicy", "FaultSpec", "FaultInjector", "CircuitBreaker"):
        assert name in repro.__all__
