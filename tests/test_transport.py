"""Tests for the queue transport."""

from __future__ import annotations

import threading

import pytest

from repro.errors import RuntimeProtocolError
from repro.runtime.transport import Mailbox


def test_post_take_fifo():
    box = Mailbox("t")
    box.post(1)
    box.post(2)
    assert box.take() == 1
    assert box.take() == 2
    assert box.sent == 2 and box.received == 2


def test_take_timeout():
    box = Mailbox("t")
    with pytest.raises(RuntimeProtocolError, match="no message"):
        box.take(timeout=0.01)


def test_negative_delay_rejected():
    with pytest.raises(RuntimeProtocolError):
        Mailbox("t", delay=-1)


def test_cross_thread_delivery():
    box = Mailbox("t")
    results = []

    def consumer():
        results.append(box.take(timeout=2.0))

    thread = threading.Thread(target=consumer)
    thread.start()
    box.post("hello")
    thread.join(timeout=2.0)
    assert results == ["hello"]


def test_len_reflects_backlog():
    box = Mailbox("t")
    assert len(box) == 0
    box.post("x")
    assert len(box) == 1
